//! The serving subsystem end to end: one compiled Python grammar, pooled
//! sessions, and a batch of generated source files fanned across workers.
//!
//! Walks the full `pwd-serve` lifecycle — fingerprint → cache shard →
//! session checkout → epoch reset — and prints the service metrics that
//! trace it: one cache miss ever, session forks bounded by the worker
//! count, and everything else epoch-reset reuse.
//!
//! Run with: `cargo run --release --example parse_service -- [files] [tokens]`

use derp::grammar::{gen, grammars};
use pwd_serve::{Input, ParseService, ServiceConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let files: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let tokens: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    let cfg = grammars::python::cfg();
    println!("grammar: python subset, fingerprint {:#018x}", cfg.fingerprint());

    let inputs: Vec<Input> = (0..files)
        .map(|i| {
            let src = gen::python_source(tokens, 0xBEEF + i as u64);
            Ok(Input::from_lexemes(derp::lex::tokenize_python(&src)?))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let total_tokens: usize = inputs.iter().map(Input::len).sum();
    println!("corpus:  {files} files, {total_tokens} tokens total\n");

    let workers = std::thread::available_parallelism().map_or(4, usize::from);
    let service =
        ParseService::new(ServiceConfig { workers, observability: true, ..Default::default() });

    for round in 1..=3 {
        let t0 = Instant::now();
        let report = service.submit_batch(&cfg, &inputs)?;
        let dt = t0.elapsed();
        let m = &report.metrics;
        println!(
            "round {round}: {} accepted / {} inputs in {:>8.2} ms  \
             ({:>9.0} tokens/s, {} workers, cache {})",
            m.accepted,
            m.inputs,
            dt.as_secs_f64() * 1e3,
            total_tokens as f64 / dt.as_secs_f64(),
            m.workers_used,
            if m.cache_hit { "hit" } else { "miss" },
        );
        for out in &report.outcomes {
            let out = out.as_ref().map_err(|e| e.clone())?;
            assert!(out.accepted, "generated corpus must parse");
        }
        if round == 3 {
            let stats = report.outcomes[0].as_ref().map_err(|e| e.clone())?.stats;
            if let Some(s) = stats {
                println!(
                    "  per-input stats (first input): {} tokens, peak {} live nodes, \
                     peak {} arena bytes",
                    s.tokens_fed, s.peak_live_nodes, s.peak_arena_bytes,
                );
            }
        }
    }

    let m = service.metrics();
    println!("\nservice lifetime: {} inputs served", m.inputs);
    println!(
        "  grammar cache:  {} hit(s), {} miss(es) — one compile, ever",
        { m.cache.hits },
        m.cache.misses
    );
    println!(
        "  session pools:  {} forked (≤ workers), {} reused via O(1) epoch reset",
        m.sessions.forked, m.sessions.reused
    );
    println!(
        "  derive memo:    {:.1}% hit ({} hits / {} misses), templates: {} shared, {} instantiated",
        m.memo.hit_ratio().unwrap_or(0.0) * 100.0,
        m.memo.memo_hits,
        m.memo.memo_misses,
        m.memo.template_shares,
        m.memo.template_instantiations
    );

    // The same lifetime totals — plus the request/queue/execute latency
    // histograms and per-phase engine timings the observability layer
    // collected — in Prometheus exposition format, ready to scrape.
    println!("\nmetrics exposition (ParseService::metrics_text()):");
    print!("{}", service.metrics_text());
    Ok(())
}
