//! Incremental parsing with `ParseSession`: feed tokens one at a time and
//! watch the derivative evolve — viability, sentence-hood, graph size.
//!
//! Run with: `cargo run --example incremental -- "1+(2*3)+4"`

use derp::core::{FeedOutcome, ParseSession, ParserConfig};
use derp::grammar::{grammars, Compiled};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args().nth(1).unwrap_or_else(|| "1+(2*3)+4*".to_string());
    let lexer = grammars::arith::lexer();
    let lexemes = lexer.tokenize(&input)?;

    let mut parser = Compiled::compile(&grammars::arith::cfg(), ParserConfig::improved());
    let tokens = parser.tokens_from_lexemes(&lexemes)?;
    let start = parser.start;

    println!("feeding {:?} token by token:\n", input);
    println!("{:<8} {:<10} {:<10} {:<12} note", "token", "viable?", "sentence?", "live nodes");
    let mut session = ParseSession::start(&mut parser.lang, start)?;
    for tok in &tokens {
        let outcome = session.feed(tok)?;
        let (viable, sentence, note) = match outcome {
            FeedOutcome::Viable { prefix_is_sentence } => {
                ("yes", if prefix_is_sentence { "yes" } else { "no" }, "")
            }
            FeedOutcome::Dead => ("no", "no", "← no continuation can succeed"),
        };
        let current = session.current();
        println!(
            "{:<8} {:<10} {:<10} {:<12} {}",
            tok.lexeme(),
            viable,
            sentence,
            // The live derivative stays small thanks to compaction+pruning.
            format!("{}", session_live(&session, current)),
            note,
        );
        if outcome == FeedOutcome::Dead {
            break;
        }
    }
    if session.prefix_is_sentence() {
        let forest = session.forest()?;
        let d = session.finish();
        let _ = d;
        let trees =
            parser.lang.trees_of(forest, derp::core::EnumLimits { max_trees: 1, max_depth: 4096 });
        println!("\ncomplete expression, parse tree:\n  {}", trees[0]);
    } else {
        println!("\nprefix is not (yet) a complete expression");
    }
    Ok(())
}

fn session_live(session: &ParseSession<'_>, _current: derp::core::NodeId) -> usize {
    // Live node count of the current derivative (read-only peek).
    session.live_nodes()
}
