//! Feed-as-you-type over the session API: tokens arrive one keystroke at a
//! time, a checkpoint is taken before each, and a backspace rolls back to
//! the previous checkpoint instead of re-parsing the line.
//!
//! This is the editor/REPL shape the streaming pipeline exists for: the
//! parser state after `k` tokens is the derivative `D_{t1…tk}(L)` — a
//! first-class value — so "undo the last token" is a pointer restore, not a
//! re-parse, and "is the line complete?" is a nullability query on the
//! current state.
//!
//! When a keystroke kills the line, the REPL does what an editor would:
//! it runs a recovery-enabled side parse over the current line and renders
//! the resulting [`derp::Diagnostic`]s live, carets and all, while the main
//! session stays checkpointed at the last good state.
//!
//! Mid-line edits use the incremental splice path instead of retyping:
//! `<splice:AT:REMOVE:TEXT>` replaces `REMOVE` tokens at position `AT` with
//! the tokens of `TEXT` (lexed without spaces), and the session re-derives
//! only from the nearest checkpoint-ladder rung below the damage.
//!
//! Run with:
//! `cargo run --example repl -- "1 + ( 2 * 3 <del> <del> + 4 ) * 5 <splice:3:3:6*7>"`
//! (tokens separated by spaces; `<del>` is a backspace)

use derp::api::{Checkpoint, Parser, PwdBackend, Session};
use derp::grammar::grammars;
use derp::RecoveryBudget;

/// Live diagnosis of a malformed line: a fresh recovery session repairs the
/// line within the default budget and the repairs are rendered as
/// rustc-style diagnostics against the line's source text.
fn diagnose_line(lexer: &derp::lex::Lexer, src: &str) {
    let mut backend = PwdBackend::improved(&grammars::arith::cfg());
    let mut session = match Session::open(&mut backend as &mut dyn Parser) {
        Ok(s) => s,
        Err(e) => {
            println!("  (diagnosis unavailable: {e})");
            return;
        }
    };
    session.enable_recovery(RecoveryBudget::default());
    let mut source = lexer.source(src);
    let diags = session
        .feed_source(&mut source)
        .and_then(|_| session.finish_with_diagnostics())
        .map(|(_, diags)| diags);
    match diags {
        Ok(diags) => {
            for d in &diags {
                for line in d.render(src).lines() {
                    println!("    {line}");
                }
            }
        }
        Err(e) => println!("  (diagnosis failed: {e})"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let script = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1 + ( 2 * 3 <del> <del> + 4 ) * 5 <splice:3:3:6*7>".to_string());
    let lexer = grammars::arith::lexer();

    let mut backend = PwdBackend::improved(&grammars::arith::cfg());
    let mut session = Session::open(&mut backend as &mut dyn Parser)?;
    // Arm the edit-splicing machinery (checkpoint ladder + refeed
    // bookkeeping) so `<splice:...>` commands re-derive only the damage.
    session.enable_incremental()?;
    // Collect per-phase latency histograms for the end-of-run snapshot
    // (compiled out entirely under `--no-default-features`).
    session.set_obs(true);
    // One checkpoint per committed token: undo_stack[k] restores the state
    // *before* token k+1 was fed.
    let mut undo_stack: Vec<Checkpoint> = Vec::new();
    let mut line: Vec<String> = Vec::new();

    println!("{:<10} {:<22} {:<10} {:<10}", "keystroke", "line", "viable?", "complete?");
    for key in script.split_whitespace() {
        if key == "<del>" {
            let Some(cp) = undo_stack.pop() else {
                println!("{key:<10} (nothing to delete)");
                continue;
            };
            session.rollback(&cp)?;
            line.pop();
        } else if let Some(spec) = key.strip_prefix("<splice:").and_then(|s| s.strip_suffix('>')) {
            let mut parts = spec.splitn(3, ':');
            let parsed = match (parts.next(), parts.next(), parts.next()) {
                (Some(at), Some(remove), Some(text)) => at
                    .parse::<usize>()
                    .ok()
                    .zip(remove.parse::<usize>().ok())
                    .map(|(at, remove)| (at, remove, text)),
                _ => None,
            };
            let Some((at, remove, text)) = parsed else {
                println!("{key:<10} (malformed splice; want <splice:AT:REMOVE:TEXT>)");
                continue;
            };
            let lexemes = lexer.tokenize(text)?;
            let pairs: Vec<(&str, &str)> =
                lexemes.iter().map(|l| (l.kind.as_str(), l.text.as_str())).collect();
            match session.splice_tokens(at, remove, &pairs) {
                Ok(out) => {
                    // Same timeline rule as rollback: undo checkpoints above
                    // the restored rung no longer exist.
                    while undo_stack.last().is_some_and(|cp| cp.tokens_fed() > out.rung) {
                        undo_stack.pop();
                    }
                    line.splice(at..at + remove, lexemes.iter().map(|l| l.text.clone()));
                    let converged =
                        out.converged_at.map_or(String::new(), |k| format!(", converged at {k}"));
                    println!(
                        "{key:<10} spliced: rung {}, refed {}, reused {}{converged}",
                        out.rung, out.refed, out.reused,
                    );
                }
                Err(e) => {
                    println!("{key:<10} (splice failed: {e})");
                    continue;
                }
            }
        } else {
            // Each keystroke is lexed in isolation (single-token REPL
            // grammar) and fed through the session.
            let lexemes = lexer.tokenize(key)?;
            for l in &lexemes {
                undo_stack.push(session.checkpoint()?);
                session.feed(&l.kind, &l.text)?;
                line.push(l.text.clone());
            }
        }
        let viable = session.is_viable();
        let complete = session.prefix_is_sentence()?;
        println!(
            "{key:<10} {:<22} {:<10} {:<10}",
            line.join(""),
            if viable { "yes" } else { "no" },
            if complete { "yes" } else { "no" },
        );
        // Live diagnostics: the moment a keystroke makes the line
        // unviable, show what recovery would repair — exactly the red
        // squiggle an editor draws while you keep typing.
        if !viable {
            diagnose_line(&lexer, &line.join(""));
        }
    }

    let tokens = session.tokens_fed();
    // Snapshot the phase histograms while the session is still open — the
    // snapshot covers exactly the keystrokes fed above.
    let phases = session.metrics().phases;
    let accepted = session.finish()?;
    println!(
        "\nfinal line {:?} ({tokens} tokens after undos): {}",
        line.join(""),
        if accepted { "a complete expression" } else { "not a complete expression" }
    );
    if let Some(phases) = &phases {
        println!("\nend-of-run phase timings:");
        println!("  {:<10} {:>6} {:>12} {:>10}", "phase", "spans", "total_ns", "mean_ns");
        for (phase, h) in phases.recorded() {
            println!(
                "  {:<10} {:>6} {:>12} {:>10.0}",
                phase.as_str(),
                h.count(),
                h.sum(),
                h.mean().unwrap_or(0.0),
            );
        }
    }
    if accepted {
        match backend.parse_count(
            &lexer.tokenize(&line.join(""))?.iter().map(|l| l.kind.as_str()).collect::<Vec<_>>(),
        )? {
            derp::api::ParseCount::Finite(n) => println!("parse trees: {n}"),
            other => println!("parse trees: {other:?}"),
        }
    }
    Ok(())
}
