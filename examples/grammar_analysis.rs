//! Grammar tooling tour: metrics, analyses, hygiene, SLR conflicts, and a
//! Graphviz dump of a derivative.
//!
//! Run with: `cargo run --example grammar_analysis`

use derp::core::ParserConfig;
use derp::glr::GlrParser;
use derp::grammar::{analysis, grammars, metrics, remove_useless, Compiled};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, cfg) in [
        ("arith", grammars::arith::cfg()),
        ("json", grammars::json::cfg()),
        ("python-subset", grammars::python::cfg()),
    ] {
        let m = metrics(&cfg);
        println!("=== {name} ===");
        println!(
            "  {} productions, {} nonterminals, {} terminals, {} total RHS symbols",
            m.productions, m.nonterminals, m.terminals, m.total_symbols
        );
        println!(
            "  ε-productions: {}, unit: {}, directly left-recursive: {}, max RHS: {}",
            m.epsilon_productions, m.unit_productions, m.left_recursive_productions, m.max_rhs_len
        );
        let nullable = analysis::nullable_nonterminals(&cfg);
        let nullable_names: Vec<&str> = (0..cfg.nonterminal_count())
            .filter(|&n| nullable[n])
            .map(|n| cfg.nonterminal_name(n as u32))
            .collect();
        println!("  nullable nonterminals: {nullable_names:?}");
        let cleaned = remove_useless(&cfg)?;
        println!(
            "  useless-symbol elimination: {} → {} productions",
            cfg.production_count(),
            cleaned.production_count()
        );
        let glr = GlrParser::new(&cfg);
        let (sr, rr) = glr.conflicts();
        println!(
            "  SLR table: {} states, {} shift/reduce + {} reduce/reduce conflicts",
            glr.state_count(),
            sr,
            rr
        );
        println!("  (paper's 722-production Python grammar: 92 shift/reduce, 4 reduce/reduce)");
    }

    // Render the paper's Figure 4: L = (L ◦ c) ∪ c and its derivative.
    println!("\n=== Figure 4: grammar graph and derivative (DOT) ===");
    let mut lang = derp::core::Language::new(ParserConfig::improved());
    let c = lang.terminal("c");
    let tc = lang.term_node(c);
    let l = lang.forward();
    lang.set_label(l, "L");
    let lc = lang.cat(l, tc);
    let body = lang.alt(lc, tc);
    lang.define(l, body);
    println!("--- L = (L ◦ c) ∪ c ---\n{}", lang.to_dot(l));
    let tok = lang.token(c, "c");
    let d = lang.derivative(l, &[tok])?;
    println!("--- D_c(L) ---\n{}", lang.to_dot(d));

    // And a parse forest for an ambiguous sentence.
    let mut amb = Compiled::compile(&grammars::ambiguous::expr(), ParserConfig::improved());
    let toks = [
        amb.token("n", "1").unwrap(),
        amb.token("+", "+").unwrap(),
        amb.token("n", "2").unwrap(),
        amb.token("*", "*").unwrap(),
        amb.token("n", "3").unwrap(),
    ];
    let start = amb.start;
    let forest = amb.lang.parse_forest(start, &toks)?;
    println!("--- forest of 1+2*3 under E→E+E|E*E|n ---\n{}", amb.lang.forest_to_dot(forest));
    Ok(())
}
