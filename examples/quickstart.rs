//! Quickstart: build a small cyclic grammar by hand, parse, print the tree.
//!
//! Run with: `cargo run --example quickstart`

use derp::core::{EnumLimits, Language, Reduce, Tree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: L = (L ◦ c) ∪ c — left-recursive,
    // something classic parser generators reject outright.
    let mut lang = Language::default();
    let c = lang.terminal("c");
    let tc = lang.term_node(c);
    let l = lang.forward();
    lang.set_label(l, "L");
    let lc = lang.cat(l, tc);
    let body = lang.alt(lc, tc);
    lang.define(l, body);

    let tok = lang.token(c, "c");
    let input = vec![tok; 5];
    println!("recognize c^5 with L = (L ◦ c) ∪ c: {}", lang.recognize(l, &input)?);

    lang.reset();
    let tree = lang.parse_unique(l, &input)?.expect("unambiguous");
    println!("parse tree: {tree}");

    // Reductions build real ASTs: wrap each step in a labeled node.
    let mut lang = Language::default();
    let num = lang.terminal("NUM");
    let plus = lang.terminal("+");
    let tn = lang.term_node(num);
    let tp = lang.term_node(plus);
    // E = NUM | (E + NUM) ↪ mk-add
    let e = lang.forward();
    lang.set_label(e, "E");
    let e_plus = lang.cat(e, tp);
    let e_plus_num = lang.cat(e_plus, tn);
    let add = lang.reduce(
        e_plus_num,
        Reduce::func("mk-add", |t| match &t {
            Tree::Pair(lhs_op, rhs) => match &**lhs_op {
                Tree::Pair(lhs, _) => Tree::node("add", vec![(**lhs).clone(), (**rhs).clone()]),
                _ => t.clone(),
            },
            _ => t,
        }),
    );
    let body = lang.alt(add, tn);
    lang.define(e, body);

    let toks = vec![
        lang.token(num, "1"),
        lang.token(plus, "+"),
        lang.token(num, "2"),
        lang.token(plus, "+"),
        lang.token(num, "3"),
    ];
    let tree = lang.parse_unique(e, &toks)?.expect("unambiguous");
    println!("1+2+3 with semantic actions: {tree}");

    // Ambiguity is first-class: parse forests with ambiguity nodes.
    let mut lang = Language::default();
    let a = lang.terminal("a");
    let ta = lang.term_node(a);
    let s = lang.forward();
    lang.set_label(s, "S");
    let ss = lang.cat(s, s);
    let body = lang.alt(ss, ta);
    lang.define(s, body);
    let toks = vec![lang.token(a, "a"); 4];
    let forest = lang.parse_forest(s, &toks)?;
    println!("S = (S ◦ S) ∪ a on a^4: {} parse trees (Catalan number C₃)", lang.count_of(forest));
    for t in lang.trees_of(forest, EnumLimits { max_trees: 5, max_depth: 64 }) {
        println!("  {t}");
    }
    Ok(())
}
