//! The paper's evaluation pipeline end to end: generate a Python-like
//! module, tokenize it (NEWLINE/INDENT/DEDENT and all), parse it with the
//! improved PWD engine, and report the engine metrics that drive the
//! paper's Figures 7–12.
//!
//! Run with: `cargo run --release --example python_pipeline -- [tokens] [seed]`

use derp::core::ParserConfig;
use derp::grammar::{gen, grammars, Compiled};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let src = gen::python_source(target, seed);
    let lexemes = derp::lex::tokenize_python(&src)?;
    println!("generated {} bytes of Python-like source, {} tokens", src.len(), lexemes.len());
    println!("--- first lines ---");
    for line in src.lines().take(8) {
        println!("| {line}");
    }
    println!("-------------------");

    let cfg = grammars::python::cfg();
    println!(
        "grammar: {} productions, {} nonterminals, {} terminals",
        cfg.production_count(),
        cfg.nonterminal_count(),
        cfg.terminal_count()
    );

    let mut parser = Compiled::compile(&cfg, ParserConfig::improved());
    let tokens = parser.tokens_from_lexemes(&lexemes)?;
    let start_node = parser.start;
    parser.lang.reset_metrics();

    let t0 = Instant::now();
    let accepted = parser.lang.recognize(start_node, &tokens)?;
    let dt = t0.elapsed();

    println!("accepted: {accepted}");
    println!(
        "parse time: {:?} total, {:.2} µs/token",
        dt,
        dt.as_secs_f64() * 1e6 / tokens.len() as f64
    );
    let m = parser.lang.metrics();
    println!("engine metrics:");
    println!("  derive calls        {:>12}", m.derive_calls);
    println!(
        "  derive uncached     {:>12} ({:.1}%)",
        m.derive_uncached,
        100.0 * m.uncached_ratio().unwrap_or(0.0)
    );
    println!("  nullable? calls     {:>12}", m.nullable_calls);
    println!("  fixed-point runs    {:>12}", m.nullable_runs);
    println!("  nodes created       {:>12}", m.nodes_created);
    println!("  memo evictions      {:>12}", m.memo_evictions);
    println!("  compactions applied {:>12}", m.compactions_applied);
    Ok(())
}
