//! Exploring ambiguity: parse forests, ambiguity nodes, and why the paper's
//! complexity result needs them (§3.1).
//!
//! Run with: `cargo run --example ambiguity`

use derp::core::{EnumLimits, ParserConfig};
use derp::grammar::{grammars, Compiled};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S → S S | a: the number of parses of aⁿ is the Catalan number Cₙ₋₁,
    // which grows exponentially — but the *forest* stays polynomial because
    // ambiguity nodes share subtrees.
    println!("S → S S | a   (parse counts = Catalan numbers)");
    let mut parser = Compiled::compile(&grammars::ambiguous::catalan(), ParserConfig::improved());
    for n in 1..=12usize {
        let toks: Vec<_> = (0..n).map(|_| parser.token("a", "a").unwrap()).collect();
        let start = parser.start;
        let forest = parser.lang.parse_forest(start, &toks)?;
        let count = parser.lang.count_of(forest);
        let forest_nodes = parser.lang.forest_count();
        println!("  n={n:>2}: {count:>8} parses, forest arena {forest_nodes:>6} nodes");
        parser.lang.reset();
    }

    // E → E + E | E * E | n: enumerate the distinct readings of n+n*n.
    println!("\nE → E + E | E * E | n   on n + n * n:");
    let mut parser = Compiled::compile(&grammars::ambiguous::expr(), ParserConfig::improved());
    let toks = vec![
        parser.token("n", "1").unwrap(),
        parser.token("+", "+").unwrap(),
        parser.token("n", "2").unwrap(),
        parser.token("*", "*").unwrap(),
        parser.token("n", "3").unwrap(),
    ];
    let start = parser.start;
    let trees = parser.lang.parse_trees(start, &toks, EnumLimits::default())?;
    for t in &trees {
        println!("  {t}");
    }
    println!("  ({} readings)", trees.len());

    // An infinitely ambiguous grammar: S → ε | S S. The forest is cyclic;
    // counting reports "infinite" and enumeration is fuel-bounded.
    println!("\nS → ε | S S   on the empty input:");
    let mut g = derp::grammar::CfgBuilder::new("S");
    g.terminal("a");
    g.rule("S", &[]);
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    let mut parser = Compiled::compile(&g.build()?, ParserConfig::improved());
    let start = parser.start;
    let forest = parser.lang.parse_forest(start, &[])?;
    match parser.lang.count_of(forest) {
        derp::core::TreeCount::Infinite => {
            println!("  infinitely many parses (cyclic forest), as expected")
        }
        other => println!("  unexpectedly finite: {other}"),
    }
    let sample = parser.lang.trees_of(forest, EnumLimits { max_trees: 3, max_depth: 8 });
    for t in sample {
        println!("  sample: {t}");
    }
    Ok(())
}
