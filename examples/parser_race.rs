//! A miniature Figure 6: race improved PWD, original-2011 PWD, Earley, and
//! GLR on the same Python-like corpus and print seconds-per-token.
//!
//! Run with: `cargo run --release --example parser_race -- [tokens]`

use derp::core::ParserConfig;
use derp::earley::EarleyParser;
use derp::glr::GlrParser;
use derp::grammar::{gen, grammars, Compiled};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let cfg = grammars::python::cfg();
    let src = gen::python_source(target, 7);
    let lexemes = derp::lex::tokenize_python(&src)?;
    let n = lexemes.len();
    println!("corpus: {n} tokens of Python-like source\n");

    let time = |label: &str, mut f: Box<dyn FnMut() -> bool>| {
        let t0 = Instant::now();
        let ok = f();
        let dt = t0.elapsed();
        println!(
            "{label:<18} {:>10.3} ms total  {:>9.3} µs/token  accepted={ok}",
            dt.as_secs_f64() * 1e3,
            dt.as_secs_f64() * 1e6 / n as f64
        );
        dt
    };

    let mut improved = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = improved.tokens_from_lexemes(&lexemes)?;
    let start = improved.start;
    let t_improved = time(
        "improved PWD",
        Box::new(move || improved.lang.recognize(start, &toks).unwrap()),
    );

    let mut original = Compiled::compile(&cfg, ParserConfig::original_2011());
    let toks = original.tokens_from_lexemes(&lexemes)?;
    let start = original.start;
    let t_original = time(
        "original PWD",
        Box::new(move || original.lang.recognize(start, &toks).unwrap()),
    );

    let earley = EarleyParser::new(&cfg);
    let lx = lexemes.clone();
    let t_earley = time("Earley", Box::new(move || earley.recognize_lexemes(&lx).unwrap()));

    let glr = GlrParser::new(&cfg);
    let lx = lexemes.clone();
    let t_glr = time("GLR (SLR tables)", Box::new(move || glr.recognize_lexemes(&lx).unwrap()));

    println!("\nspeedups (the paper reports 951× over original, 64.6× over Earley,");
    println!("0.04× vs Bison — our GLR is Rust, not C, so expect a smaller gap):");
    let r = |a: std::time::Duration, b: std::time::Duration| a.as_secs_f64() / b.as_secs_f64();
    println!("  improved vs original PWD : {:>8.1}×", r(t_original, t_improved));
    println!("  improved vs Earley       : {:>8.1}×", r(t_earley, t_improved));
    println!("  improved vs GLR          : {:>8.2}×", r(t_glr, t_improved));
    Ok(())
}
