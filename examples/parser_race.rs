//! A miniature Figure 6: race every backend behind the shared
//! [`derp::api::Parser`] trait on the same Python-like corpus and print
//! seconds-per-token — no per-backend driver code.
//!
//! The timed window includes lexeme→token conversion for every arm
//! uniformly (a few interner lookups per token, noise next to parse cost),
//! so the printed ratios compare parsers, not drivers.
//!
//! Run with: `cargo run --release --example parser_race -- [tokens]`

use derp::api::backends;
use derp::grammar::{gen, grammars};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let cfg = grammars::python::cfg();
    let src = gen::python_source(target, 7);
    let lexemes = derp::lex::tokenize_python(&src)?;
    let n = lexemes.len();
    println!("corpus: {n} tokens of Python-like source\n");

    let mut times: Vec<(&'static str, Duration)> = Vec::new();
    for backend in &mut backends(&cfg) {
        let t0 = Instant::now();
        let ok = backend.recognize_lexemes(&lexemes)?;
        let dt = t0.elapsed();
        let m = backend.metrics();
        println!(
            "{:<14} {:>10.3} ms total  {:>9.3} µs/token  accepted={ok}  work={}",
            backend.name(),
            dt.as_secs_f64() * 1e3,
            dt.as_secs_f64() * 1e6 / n as f64,
            m.work,
        );
        times.push((backend.name(), dt));
    }

    let t = |name: &str| {
        times.iter().find(|(n, _)| *n == name).map(|(_, d)| *d).expect("backend raced")
    };
    println!("\nspeedups (the paper reports 951× over original, 64.6× over Earley,");
    println!("0.04× vs Bison — our GLR is Rust, not C, so expect a smaller gap):");
    let improved = t("pwd-improved");
    let r = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64();
    println!("  improved vs original PWD : {:>8.1}×", r(t("pwd-original"), improved));
    println!("  improved vs Earley       : {:>8.1}×", r(t("earley"), improved));
    println!("  improved vs GLR          : {:>8.2}×", r(t("glr"), improved));
    Ok(())
}
