//! A miniature Figure 6, served: race every backend on the same Python-like
//! corpus by hosting each one behind the `pwd-serve` batch API — the service
//! compiles each grammar once per backend, pools sessions per worker, and
//! fans the corpus across threads; this example carries no per-backend
//! driver code at all.
//!
//! The timed window includes the service's own overhead (cache lookup,
//! session checkout, result collection) uniformly for every arm, so the
//! printed ratios compare parsers, not drivers.
//!
//! Run with: `cargo run --release --example parser_race -- [tokens] [files]`

use derp::api::BACKEND_NAMES;
use derp::grammar::{gen, grammars};
use pwd_serve::{Input, ParseService, ServiceConfig};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let target: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let files: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let cfg = grammars::python::cfg();
    let inputs: Vec<Input> = (0..files)
        .map(|i| {
            let src = gen::python_source(target, 7 + i as u64);
            Ok(Input::from_lexemes(derp::lex::tokenize_python(&src)?))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let n: usize = inputs.iter().map(Input::len).sum();
    let workers = std::thread::available_parallelism().map_or(2, usize::from);
    println!("corpus: {files} files, {n} tokens of Python-like source, {workers} workers\n");

    // A tiny warm-up batch per backend compiles the grammar into the cache
    // *outside* the timed window, so the printed ratios compare parsing,
    // not one-time compilation (session forks are memcpys, noise next to
    // parse cost).
    let warmup_src = gen::python_source(20, 99);
    let warmup: Vec<Input> =
        vec![Input::from_lexemes(derp::lex::tokenize_python(&warmup_src)?); workers];

    let mut times: Vec<(&'static str, Duration)> = Vec::new();
    for &name in BACKEND_NAMES {
        let service = ParseService::new(ServiceConfig {
            workers,
            backend: name.to_string(),
            ..Default::default()
        });
        service.submit_batch(&cfg, &warmup)?;
        let t0 = Instant::now();
        let report = service.submit_batch(&cfg, &inputs)?;
        let dt = t0.elapsed();
        for out in &report.outcomes {
            let out = out.as_ref().map_err(|e| e.clone())?;
            assert!(out.accepted, "{name}: generated corpus must parse");
        }
        let m = service.metrics();
        println!(
            "{:<14} {:>10.3} ms total  {:>9.3} µs/token  sessions forked={} reused={}",
            name,
            dt.as_secs_f64() * 1e3,
            dt.as_secs_f64() * 1e6 / n as f64,
            m.sessions.forked,
            m.sessions.reused,
        );
        times.push((name, dt));
    }

    let t = |name: &str| {
        times.iter().find(|(n, _)| *n == name).map(|(_, d)| *d).expect("backend raced")
    };
    println!("\nspeedups (the paper reports 951× over original, 64.6× over Earley,");
    println!("0.04× vs Bison — our GLR is Rust, not C, so expect a smaller gap):");
    let improved = t("pwd-improved");
    let r = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64();
    println!("  improved vs original PWD : {:>8.1}×", r(t("pwd-original"), improved));
    println!("  improved vs Earley       : {:>8.1}×", r(t("earley"), improved));
    println!("  improved vs GLR          : {:>8.2}×", r(t("glr"), improved));
    Ok(())
}
