//! A calculator: lex with derivative DFAs, parse with PWD, evaluate the AST.
//!
//! Run with: `cargo run --example calculator -- "1 + 2 * (3 - 4) / 2"`

use derp::core::{ParserConfig, Tree};
use derp::grammar::{grammars, Compiled};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expr = std::env::args().nth(1).unwrap_or_else(|| "(1 + 2) * 3 - 10 / 2".to_string());

    let lexer = grammars::arith::lexer();
    let lexemes = lexer.tokenize(&expr)?;
    println!("tokens: {:?}", lexemes.iter().map(|l| l.text.as_str()).collect::<Vec<_>>());

    let mut parser = Compiled::compile(&grammars::arith::cfg(), ParserConfig::improved());
    let tokens = parser.tokens_from_lexemes(&lexemes)?;
    let start = parser.start;
    let tree =
        parser.lang.parse_unique(start, &tokens)?.expect("the arithmetic grammar is unambiguous");
    println!("tree:   {tree}");
    println!("value:  {}", eval(&tree));
    Ok(())
}

/// Evaluates the labeled AST produced by the CFG compiler: nodes look like
/// `(E lhs op rhs)`, `(T lhs op rhs)`, `(F "(" e ")")`, `(F num)`, `(F - f)`.
fn eval(t: &Tree) -> f64 {
    match t {
        Tree::Leaf(tok) => tok.text.parse().unwrap_or(0.0),
        Tree::Node(label, kids) => match (label.as_ref(), kids.len()) {
            (_, 1) => eval(&kids[0]),
            ("E" | "T", 3) => {
                let (l, op, r) = (&kids[0], &kids[1], &kids[2]);
                let (l, r) = (eval(l), eval(r));
                match op_text(op) {
                    "+" => l + r,
                    "-" => l - r,
                    "*" => l * r,
                    "/" => l / r,
                    other => panic!("unexpected operator {other}"),
                }
            }
            ("F", 3) => eval(&kids[1]),  // ( E )
            ("F", 2) => -eval(&kids[1]), // - F
            _ => panic!("unexpected node {t}"),
        },
        Tree::Pair(a, b) => eval(a) + eval(b),
        Tree::Empty => 0.0,
    }
}

fn op_text(t: &Tree) -> &str {
    match t {
        Tree::Leaf(tok) => &tok.text,
        _ => "?",
    }
}
