//! A GLR parser: the baseline standing in for Bison's `%glr-parser` in the
//! paper's Figure-6 comparison.
//!
//! Builds an SLR(1) automaton (LR(0) item sets + FOLLOW-gated reductions)
//! and drives it with a graph-structured stack (Tomita 1985, with Farshi's
//! fix for reductions through edges created by ε-rules). Conflicts are kept,
//! not resolved — like Bison in GLR mode, all actions are explored and
//! stacks merge on equal states. The paper's Python grammar had 92
//! shift/reduce and 4 reduce/reduce conflicts; [`GlrParser::conflicts`]
//! reports ours.
//!
//! # Quick start
//!
//! ```
//! use pwd_glr::GlrParser;
//! use pwd_grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = CfgBuilder::new("E");
//! g.terminals(&["+", "n"]);
//! g.rule("E", &["E", "+", "E"]); // ambiguous: GLR explores both
//! g.rule("E", &["n"]);
//! let parser = GlrParser::new(&g.build()?);
//! assert!(parser.recognize_kinds(&["n", "+", "n", "+", "n"])?);
//! assert!(!parser.recognize_kinds(&["n", "+"])?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pwd_forest::ParseForest;
use pwd_grammar::{analysis, build_sppf, Cfg, Production, ProductionSpans, Symbol};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Error for token kinds outside the grammar's terminal alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKind {
    /// The offending kind name.
    pub kind: String,
    /// Its position in the input.
    pub position: usize,
}

impl fmt::Display for UnknownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token {} has kind {:?} outside the grammar", self.position, self.kind)
    }
}

impl std::error::Error for UnknownKind {}

/// An LR(0) item over the augmented grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Item {
    prod: u32,
    dot: u32,
}

/// A parse action in a table cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Shift(u32),
    Reduce(u32),
    Accept,
}

/// A GLR parser with SLR(1) tables over a graph-structured stack.
#[derive(Debug, Clone)]
pub struct GlrParser {
    /// The source grammar (kept for SPPF construction).
    cfg: Cfg,
    /// Productions of the augmented grammar; the last one is `S' → S`.
    prods: Vec<Production>,
    /// ACTION[state][lookahead]; `None` lookahead = end of input.
    action: Vec<HashMap<Option<u32>, Vec<Action>>>,
    /// GOTO[state][nonterminal].
    goto_nt: Vec<HashMap<u32, u32>>,
    term_names: Vec<String>,
}

/// Statistics from a GLR run.
#[derive(Debug, Clone, Default)]
pub struct GlrStats {
    /// Total GSS nodes created.
    pub gss_nodes: usize,
    /// Total GSS edges created.
    pub gss_edges: usize,
}

impl GlrParser {
    /// Builds the SLR(1) tables for a grammar.
    pub fn new(cfg: &Cfg) -> GlrParser {
        // Augment: S' → S. The fresh nonterminal gets index nt_count.
        let aug_nt = cfg.nonterminal_count() as u32;
        let mut prods: Vec<Production> = cfg.productions().to_vec();
        let start_prod = prods.len() as u32;
        prods.push(Production { lhs: aug_nt, rhs: vec![Symbol::N(cfg.start())] });

        let by_lhs: Vec<Vec<usize>> = {
            let mut v = vec![Vec::new(); aug_nt as usize + 1];
            for (i, p) in prods.iter().enumerate() {
                v[p.lhs as usize].push(i);
            }
            v
        };

        let closure = |kernel: &BTreeSet<Item>| -> BTreeSet<Item> {
            let mut set = kernel.clone();
            let mut work: Vec<Item> = set.iter().copied().collect();
            while let Some(item) = work.pop() {
                let p = &prods[item.prod as usize];
                if let Some(Symbol::N(nt)) = p.rhs.get(item.dot as usize) {
                    for &pi in &by_lhs[*nt as usize] {
                        let new = Item { prod: pi as u32, dot: 0 };
                        if set.insert(new) {
                            work.push(new);
                        }
                    }
                }
            }
            set
        };

        // Canonical LR(0) collection.
        let mut states: Vec<BTreeSet<Item>> = Vec::new();
        let mut index: HashMap<BTreeSet<Item>, u32> = HashMap::new();
        let mut kernel0 = BTreeSet::new();
        kernel0.insert(Item { prod: start_prod, dot: 0 });
        let s0 = closure(&kernel0);
        index.insert(s0.clone(), 0);
        states.push(s0);
        let mut trans: Vec<HashMap<Symbol, u32>> = vec![HashMap::new()];
        let mut work = vec![0u32];
        while let Some(si) = work.pop() {
            // Group items by the symbol after the dot.
            let mut by_sym: HashMap<Symbol, BTreeSet<Item>> = HashMap::new();
            for item in &states[si as usize] {
                let p = &prods[item.prod as usize];
                if let Some(sym) = p.rhs.get(item.dot as usize) {
                    by_sym
                        .entry(*sym)
                        .or_default()
                        .insert(Item { prod: item.prod, dot: item.dot + 1 });
                }
            }
            let mut entries: Vec<(Symbol, BTreeSet<Item>)> = by_sym.into_iter().collect();
            entries.sort_by_key(|(s, _)| *s);
            for (sym, kernel) in entries {
                let target = closure(&kernel);
                let ti = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = states.len() as u32;
                        index.insert(target.clone(), t);
                        states.push(target);
                        trans.push(HashMap::new());
                        work.push(t);
                        t
                    }
                };
                trans[si as usize].insert(sym, ti);
            }
        }

        // SLR: FOLLOW sets of the base grammar gate reductions.
        let follow = analysis::follow_sets(cfg);
        let mut action: Vec<HashMap<Option<u32>, Vec<Action>>> = vec![HashMap::new(); states.len()];
        let mut goto_nt: Vec<HashMap<u32, u32>> = vec![HashMap::new(); states.len()];
        for (si, state) in states.iter().enumerate() {
            for (sym, &ti) in &trans[si] {
                match sym {
                    Symbol::T(t) => {
                        action[si].entry(Some(*t)).or_default().push(Action::Shift(ti));
                    }
                    Symbol::N(n) => {
                        goto_nt[si].insert(*n, ti);
                    }
                }
            }
            for item in state {
                let p = &prods[item.prod as usize];
                if item.dot as usize == p.rhs.len() {
                    if item.prod == start_prod {
                        action[si].entry(None).or_default().push(Action::Accept);
                    } else {
                        for la in &follow[p.lhs as usize] {
                            action[si].entry(*la).or_default().push(Action::Reduce(item.prod));
                        }
                    }
                }
            }
        }

        GlrParser {
            cfg: cfg.clone(),
            prods,
            action,
            goto_nt,
            term_names: (0..cfg.terminal_count())
                .map(|t| cfg.terminal_name(t as u32).to_string())
                .collect(),
        }
    }

    /// The source grammar.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Number of LR(0) states.
    pub fn state_count(&self) -> usize {
        self.action.len()
    }

    /// `(shift_reduce, reduce_reduce)` conflict counts in the SLR table —
    /// the quantities Bison reported as 92 and 4 for the paper's grammar.
    pub fn conflicts(&self) -> (usize, usize) {
        let mut sr = 0;
        let mut rr = 0;
        for state in &self.action {
            for acts in state.values() {
                let shifts = acts.iter().filter(|a| matches!(a, Action::Shift(_))).count();
                let reduces = acts.iter().filter(|a| matches!(a, Action::Reduce(_))).count();
                if shifts > 0 && reduces > 0 {
                    sr += 1;
                }
                if reduces > 1 {
                    rr += reduces - 1;
                }
            }
        }
        (sr, rr)
    }

    /// Recognizes a sequence of terminal indices.
    pub fn recognize(&self, tokens: &[u32]) -> bool {
        self.run(tokens).0
    }

    /// Recognizes terminal kinds by name.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for kinds outside the grammar.
    pub fn recognize_kinds(&self, kinds: &[&str]) -> Result<bool, UnknownKind> {
        let toks = self.kinds_to_tokens(kinds)?;
        Ok(self.recognize(&toks))
    }

    /// Recognizes a lexeme stream.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for lexeme kinds outside the grammar.
    pub fn recognize_lexemes(&self, lexemes: &[pwd_lex::Lexeme]) -> Result<bool, UnknownKind> {
        let toks: Result<Vec<u32>, UnknownKind> = lexemes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                self.terminal_index(&l.kind)
                    .ok_or_else(|| UnknownKind { kind: l.kind.clone(), position: i })
            })
            .collect();
        Ok(self.recognize(&toks?))
    }

    /// Recognition plus GSS statistics.
    pub fn recognize_with_stats(&self, tokens: &[u32]) -> (bool, GlrStats) {
        self.run(tokens)
    }

    /// Converts kind names to terminal indices.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for kinds outside the grammar.
    pub fn kinds_to_tokens(&self, kinds: &[&str]) -> Result<Vec<u32>, UnknownKind> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                self.terminal_index(k)
                    .ok_or_else(|| UnknownKind { kind: (*k).to_string(), position: i })
            })
            .collect()
    }

    /// The terminal index of a kind name, or `None` if the kind is not in
    /// the grammar. The single-token lookup streaming feeds use (no
    /// per-token vector).
    pub fn terminal_index(&self, name: &str) -> Option<u32> {
        self.term_names.iter().position(|t| t == name).map(|i| i as u32)
    }

    fn run(&self, tokens: &[u32]) -> (bool, GlrStats) {
        let mut session = self.begin();
        for &t in tokens {
            self.feed(&mut session, t);
        }
        let accepted = self.accepted(&mut session);
        (accepted, session.stats())
    }

    // ------------------------------------------------------------------
    // Incremental (streaming) recognition
    // ------------------------------------------------------------------

    /// Opens an incremental GLR session: a one-node graph-structured stack
    /// in the initial LR state.
    ///
    /// GLR shifts strictly left to right, so the GSS doubles as a streaming
    /// session: [`feed`](GlrParser::feed) one token at a time, query
    /// [`accepted`](GlrParser::accepted) between tokens, and snapshot the
    /// frontier with [`GlrSession::checkpoint`].
    pub fn begin(&self) -> GlrSession {
        GlrSession {
            states: vec![0],
            edges: vec![Vec::new()],
            pos: vec![0],
            frontier: HashMap::from([(0, 0)]),
            edge_count: 0,
            fed: 0,
            dead: false,
            facts: Vec::new(),
        }
    }

    /// Feeds one token: runs the reduce phase to a fixed point under `tok`
    /// as lookahead, then shifts. Returns `false` when no stack survives —
    /// the session is dead (sticky until a rollback past the killing token).
    pub fn feed(&self, s: &mut GlrSession, tok: u32) -> bool {
        s.fed += 1;
        if s.dead {
            return false;
        }
        self.reduce_phase(s, Some(tok), s.fed - 1);

        // ---- shift phase ----
        let mut next: HashMap<u32, usize> = HashMap::new();
        for (&st, &node) in &s.frontier {
            if let Some(acts) = self.action[st as usize].get(&Some(tok)) {
                for a in acts {
                    if let Action::Shift(target) = a {
                        let w = *next.entry(*target).or_insert_with(|| {
                            s.states.push(*target);
                            s.edges.push(Vec::new());
                            s.pos.push(s.fed);
                            s.states.len() - 1
                        });
                        if !s.edges[w].contains(&node) {
                            s.edges[w].push(node);
                            s.edge_count += 1;
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            // Keep the pre-shift frontier intact: a checkpoint taken before
            // the killing token must be able to restore it.
            s.dead = true;
            return false;
        }
        s.frontier = next;
        true
    }

    /// The terminals for which the session's frontier has *any* table
    /// action (shift or reduce) — a cheap superset of the tokens a
    /// [`feed`](GlrParser::feed) would survive, since a reduction admitted
    /// by the lookahead may still leave no stack that can shift it. Sorted
    /// and deduplicated. This is the candidate set for GSS frontier repair:
    /// the recovery driver trial-feeds each candidate (checkpoint, feed,
    /// rollback) and keeps the ones that actually shift.
    pub fn expected_terminals(&self, s: &GlrSession) -> Vec<u32> {
        let mut out: Vec<u32> = s
            .frontier
            .keys()
            .flat_map(|&st| self.action[st as usize].keys())
            .filter_map(|la| *la)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Does the session accept the prefix fed so far?
    ///
    /// Runs the end-of-input reduce phase on a frontier snapshot and rolls
    /// the GSS back afterwards, so the probe leaves no trace — reductions
    /// gated on the EOF lookahead must not leak into later feeds.
    pub fn accepted(&self, s: &mut GlrSession) -> bool {
        if s.dead {
            return false;
        }
        let cp = s.checkpoint();
        self.reduce_phase(s, None, s.fed);
        let accepted = s.frontier.keys().any(|&st| {
            self.action[st as usize].get(&None).is_some_and(|acts| acts.contains(&Action::Accept))
        });
        s.rollback(&cp);
        accepted
    }

    /// The reduce phase at one input position: apply every reduction the
    /// lookahead admits, to a fixed point, growing the GSS frontier in
    /// place (Tomita with Farshi's fix).
    fn reduce_phase(&self, s: &mut GlrSession, lookahead: Option<u32>, pos: usize) {
        let mut queue: Vec<(usize, u32)> = Vec::new();
        let mut done: HashSet<(usize, u32, usize)> = HashSet::new();
        let enqueue_all = |frontier: &HashMap<u32, usize>,
                           queue: &mut Vec<(usize, u32)>,
                           action: &[HashMap<Option<u32>, Vec<Action>>]| {
            for (&st, &node) in frontier {
                if let Some(acts) = action[st as usize].get(&lookahead) {
                    for a in acts {
                        if let Action::Reduce(p) = a {
                            queue.push((node, *p));
                        }
                    }
                }
            }
        };
        enqueue_all(&s.frontier, &mut queue, &self.action);
        while let Some((node, prod)) = queue.pop() {
            let k = self.prods[prod as usize].rhs.len();
            // All endpoints of length-k paths from `node`.
            let mut layer = vec![node];
            for _ in 0..k {
                let mut next = Vec::new();
                for v in layer {
                    next.extend_from_slice(&s.edges[v]);
                }
                next.sort_unstable();
                next.dedup();
                layer = next;
            }
            for u in layer {
                if !done.insert((node, prod, u)) {
                    continue;
                }
                // The length-k path from `node` back to `u` *is* the
                // statement "prod derives tokens[pos(u)..pos)": record it
                // as a derivation fact for SPPF construction (the
                // augmented start production carries no forest content).
                if (prod as usize) < self.cfg.productions().len() {
                    s.facts.push((prod, s.pos[u] as u32, pos as u32));
                }
                let lhs = self.prods[prod as usize].lhs;
                let Some(&target) = self.goto_nt[s.states[u] as usize].get(&lhs) else {
                    continue;
                };
                match s.frontier.get(&target) {
                    Some(&w) => {
                        if !s.edges[w].contains(&u) {
                            s.edges[w].push(u);
                            s.edge_count += 1;
                            // New path through an existing node: re-run
                            // frontier reductions (Farshi's fix — needed
                            // for ε-rules and hidden left recursion).
                            enqueue_all(&s.frontier, &mut queue, &self.action);
                        }
                    }
                    None => {
                        s.states.push(target);
                        s.edges.push(vec![u]);
                        s.pos.push(pos);
                        let w = s.states.len() - 1;
                        s.edge_count += 1;
                        s.frontier.insert(target, w);
                        if let Some(acts) = self.action[target as usize].get(&lookahead) {
                            for a in acts {
                                if let Action::Reduce(p) = a {
                                    queue.push((w, *p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared parse forests (SPPF) from GSS reduction packing
// ---------------------------------------------------------------------

impl GlrParser {
    /// The derivation facts the session's reductions have proven so far,
    /// **including** the end-of-input reductions: the EOF reduce phase runs
    /// on a frontier snapshot and is rolled back, so the session is
    /// observably unchanged, but the final completions (which only fire
    /// under the EOF lookahead) are captured.
    pub fn session_spans(&self, s: &mut GlrSession) -> ProductionSpans {
        let mut spans = ProductionSpans::new();
        if s.dead {
            // Post-death facts describe a prefix the input diverged from
            // only after the killing token; the pre-shift GSS (and its
            // facts) are still sound, so keep them — the builder's
            // top-down walk from the (unreachable) root ignores them.
            for &(p, i, j) in &s.facts {
                spans.insert(p as usize, i as usize, j as usize);
            }
            return spans;
        }
        let cp = s.checkpoint();
        self.reduce_phase(s, None, s.fed);
        for &(p, i, j) in &s.facts {
            spans.insert(p as usize, i as usize, j as usize);
        }
        s.rollback(&cp);
        spans
    }

    /// Builds the shared forest of **all** derivations of the tokens fed to
    /// `s` (packed per `(nonterminal, span)`), with `texts[i]` the lexeme
    /// text of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `texts.len() != tokens.len()` or if `tokens` is not the
    /// same length as what the session was fed (the recorded reduction
    /// facts index positions of the *fed* stream).
    pub fn forest_from_session(
        &self,
        s: &mut GlrSession,
        tokens: &[u32],
        texts: &[&str],
    ) -> ParseForest {
        assert_eq!(
            tokens.len(),
            s.tokens_fed(),
            "token slice must match the {} tokens fed to the session",
            s.tokens_fed()
        );
        let spans = self.session_spans(s);
        build_sppf(&self.cfg, tokens, texts, &spans)
    }

    /// Parses `tokens` and returns the shared forest of all derivations
    /// (the canonical empty forest for a rejected input). Lexeme texts
    /// default to the terminal kind names.
    pub fn parse_forest(&self, tokens: &[u32]) -> ParseForest {
        let mut s = self.begin();
        for &t in tokens {
            self.feed(&mut s, t);
        }
        let texts: Vec<&str> = tokens.iter().map(|&t| self.cfg.terminal_name(t)).collect();
        self.forest_from_session(&mut s, tokens, &texts)
    }
}

/// The owned state of an incremental GLR recognition: the graph-structured
/// stack and its current frontier. Opaque; drive it through
/// [`GlrParser::begin`], [`GlrParser::feed`], and [`GlrParser::accepted`].
#[derive(Debug, Clone)]
pub struct GlrSession {
    /// LR state of each GSS node.
    states: Vec<u32>,
    /// Predecessor edges of each GSS node.
    edges: Vec<Vec<usize>>,
    /// Token position at which each GSS node became a stack top.
    pos: Vec<usize>,
    /// Live stack tops: LR state → GSS node.
    frontier: HashMap<u32, usize>,
    edge_count: usize,
    fed: usize,
    dead: bool,
    /// Derivation facts `(prod, from, to)` recorded by performed
    /// reductions — the GSS packing, replayed as SPPF input. Append-only;
    /// rollback truncates.
    facts: Vec<(u32, u32, u32)>,
}

/// A saved GSS position: the frontier plus enough bookkeeping to truncate
/// the stack back to it.
///
/// The GSS is append-only except at the frontier — later feeds add nodes at
/// the end and edges only to (then-)frontier nodes — so a checkpoint stores
/// the node count, the frontier map, and the edge-list length of each
/// frontier node; rollback truncates all three. `O(frontier)` to take,
/// `O(frontier + nodes rolled back)` to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlrCheckpoint {
    nodes: usize,
    /// `(LR state, GSS node, edge-list length)` per frontier entry.
    frontier: Vec<(u32, usize, usize)>,
    edge_count: usize,
    fed: usize,
    dead: bool,
    facts: usize,
}

impl GlrCheckpoint {
    /// Number of tokens fed when this checkpoint was taken.
    pub fn tokens_fed(&self) -> usize {
        self.fed
    }
}

impl GlrSession {
    /// Number of tokens fed so far.
    pub fn tokens_fed(&self) -> usize {
        self.fed
    }

    /// Has the session died (a token no stack could shift)?
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// GSS statistics for the prefix fed so far.
    pub fn stats(&self) -> GlrStats {
        GlrStats { gss_nodes: self.states.len(), gss_edges: self.edge_count }
    }

    /// Saves the current position: node count, frontier, and the frontier
    /// nodes' edge-list lengths.
    pub fn checkpoint(&self) -> GlrCheckpoint {
        GlrCheckpoint {
            nodes: self.states.len(),
            frontier: self
                .frontier
                .iter()
                .map(|(&st, &node)| (st, node, self.edges[node].len()))
                .collect(),
            edge_count: self.edge_count,
            fed: self.fed,
            dead: self.dead,
            facts: self.facts.len(),
        }
    }

    /// Restores a checkpoint: truncates the GSS to the saved node count,
    /// trims the saved frontier nodes' edge lists (the only pre-checkpoint
    /// nodes later phases may have extended), and reinstates the frontier.
    ///
    /// The restore is exact **only** for a checkpoint taken on this
    /// session's current timeline (no rollback past its position since it
    /// was taken). This layer cannot tell a stale or foreign checkpoint
    /// with a plausible node count from a valid one — it would silently
    /// install a frontier over a divergent stack; callers that need that
    /// validation use the `derp::api` session layer, whose timeline guard
    /// rejects invalidated checkpoints exactly.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint records more GSS nodes than the session
    /// currently holds.
    pub fn rollback(&mut self, cp: &GlrCheckpoint) {
        assert!(
            cp.nodes <= self.states.len(),
            "checkpoint for {} GSS nodes cannot restore a stack of {}",
            cp.nodes,
            self.states.len()
        );
        self.states.truncate(cp.nodes);
        self.edges.truncate(cp.nodes);
        self.pos.truncate(cp.nodes);
        self.facts.truncate(cp.facts);
        self.frontier.clear();
        for &(st, node, edge_len) in &cp.frontier {
            self.edges[node].truncate(edge_len);
            self.frontier.insert(st, node);
        }
        self.edge_count = cp.edge_count;
        self.fed = cp.fed;
        self.dead = cp.dead;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwd_forest::{EnumLimits, TreeCount};
    use pwd_grammar::CfgBuilder;

    #[test]
    fn catalan_forest_counts_are_exact() {
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::catalan());
        let catalan: [u128; 8] = [1, 1, 2, 5, 14, 42, 132, 429];
        for n in 1..=8usize {
            let forest = p.parse_forest(&vec![0u32; n]);
            assert_eq!(forest.count(), TreeCount::Finite(catalan[n - 1]), "n={n}");
        }
    }

    #[test]
    fn arithmetic_forest_tree_respects_precedence() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM", "*", "NUM"]).unwrap();
        let forest = p.parse_forest(&toks);
        assert_eq!(forest.count(), TreeCount::Finite(1));
        let tree = forest.trees(EnumLimits::default()).pop().unwrap();
        assert_eq!(tree.to_string(), "(E (E (T (F NUM))) + (T (T (F NUM)) * (F NUM)))");
    }

    #[test]
    fn rejected_and_epsilon_forests() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+"]).unwrap();
        assert!(!p.parse_forest(&toks).has_tree());
        // ε-containing grammar over the empty input.
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &[]);
        g.rule("S", &["a"]);
        let p = GlrParser::new(&g.build().unwrap());
        let forest = p.parse_forest(&[]);
        assert_eq!(forest.count(), TreeCount::Finite(1));
        assert_eq!(forest.trees(EnumLimits::default())[0].to_string(), "(S)");
    }

    #[test]
    fn probe_then_forest_still_exact() {
        // Interleaved acceptance probes must not distort the fact set.
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::catalan());
        let mut s = p.begin();
        for _ in 0..5 {
            p.feed(&mut s, 0);
            let _ = p.accepted(&mut s);
        }
        let texts = ["a"; 5];
        let forest = p.forest_from_session(&mut s, &[0; 5], &texts[..]);
        assert_eq!(forest.count(), TreeCount::Finite(14));
    }

    fn arith() -> GlrParser {
        GlrParser::new(&pwd_grammar::grammars::arith::cfg())
    }

    #[test]
    fn slr_arithmetic() {
        let p = arith();
        assert!(p.recognize_kinds(&["NUM", "+", "NUM", "*", "NUM"]).unwrap());
        assert!(p.recognize_kinds(&["(", "NUM", "+", "NUM", ")", "*", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&["NUM", "+"]).unwrap());
        assert!(!p.recognize_kinds(&["(", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&[]).unwrap());
        // The arith grammar is SLR(1): no conflicts.
        assert_eq!(p.conflicts(), (0, 0));
    }

    #[test]
    fn ambiguous_expression_grammar() {
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::expr());
        let (sr, _) = p.conflicts();
        assert!(sr > 0, "E → E+E | E*E must have shift/reduce conflicts");
        assert!(p.recognize_kinds(&["n", "+", "n", "*", "n"]).unwrap());
        assert!(!p.recognize_kinds(&["n", "+", "*"]).unwrap());
    }

    #[test]
    fn catalan_grammar() {
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::catalan());
        for n in 1..8 {
            let kinds: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn epsilon_rules() {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "B"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        g.rule("B", &["b"]);
        let p = GlrParser::new(&g.build().unwrap());
        assert!(p.recognize_kinds(&["b"]).unwrap());
        assert!(p.recognize_kinds(&["a", "b"]).unwrap());
        assert!(!p.recognize_kinds(&["a"]).unwrap());
    }

    #[test]
    fn hidden_left_recursion() {
        let mut g = CfgBuilder::new("S");
        g.terminal("b");
        g.rule("S", &["A", "S", "b"]);
        g.rule("S", &["b"]);
        g.rule("A", &[]);
        let p = GlrParser::new(&g.build().unwrap());
        for n in 1..=6 {
            let kinds: Vec<&str> = std::iter::repeat_n("b", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn python_module() {
        let p = GlrParser::new(&pwd_grammar::grammars::python::cfg());
        let src = "def f(x):\n    return x + 1\n\ny = f(41)\n";
        let lexemes = pwd_lex::tokenize_python(src).unwrap();
        assert!(p.recognize_lexemes(&lexemes).unwrap());
        let bad = pwd_lex::tokenize_python("def f(:\n    pass\n").unwrap();
        assert!(!p.recognize_lexemes(&bad).unwrap());
    }

    #[test]
    fn unknown_kind_error() {
        let p = arith();
        let err = p.recognize_kinds(&["NUM", "WAT"]).unwrap_err();
        assert_eq!(err.kind, "WAT");
    }

    #[test]
    fn stats_populated() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM"]).unwrap();
        let (ok, stats) = p.recognize_with_stats(&toks);
        assert!(ok);
        assert!(stats.gss_nodes > 0);
        assert!(stats.gss_edges > 0);
    }

    #[test]
    fn incremental_feed_matches_batch() {
        let p = arith();
        for kinds in [
            vec!["NUM", "+", "NUM", "*", "NUM"],
            vec!["NUM", "+"],
            vec!["(", "NUM", ")"],
            vec![],
            vec!["+", "NUM"],
        ] {
            let toks = p.kinds_to_tokens(&kinds).unwrap();
            let batch = p.recognize(&toks);
            let mut s = p.begin();
            for &t in &toks {
                p.feed(&mut s, t);
            }
            assert_eq!(p.accepted(&mut s), batch, "{kinds:?}");
            assert_eq!(s.tokens_fed(), toks.len());
        }
    }

    #[test]
    fn acceptance_probe_leaves_no_trace() {
        // Query acceptance after every token, then finish: the interleaved
        // probes (EOF-lookahead reduce phases) must not change the verdict.
        let p = arith();
        let toks = p.kinds_to_tokens(&["(", "NUM", "+", "NUM", ")", "*", "NUM"]).unwrap();
        let mut probed = p.begin();
        let mut plain = p.begin();
        for (i, &t) in toks.iter().enumerate() {
            assert_eq!(p.accepted(&mut probed), p.recognize(&toks[..i]), "prefix {i}");
            p.feed(&mut probed, t);
            p.feed(&mut plain, t);
        }
        assert!(p.accepted(&mut probed));
        assert_eq!(probed.stats().gss_nodes, plain.stats().gss_nodes);
        assert_eq!(probed.stats().gss_edges, plain.stats().gss_edges);
    }

    #[test]
    fn expected_terminals_cover_every_viable_feed() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+"]).unwrap();
        let mut s = p.begin();
        for &t in &toks {
            p.feed(&mut s, t);
        }
        let expected = p.expected_terminals(&s);
        assert!(!expected.is_empty());
        // Soundness of the superset: every terminal a feed survives is
        // listed (trial feeds restore the session via checkpoint/rollback).
        for t in 0..p.cfg().terminal_count() as u32 {
            let cp = s.checkpoint();
            let viable = p.feed(&mut s, t);
            s.rollback(&cp);
            if viable {
                assert!(expected.contains(&t), "viable terminal {t} missing");
            }
        }
    }

    #[test]
    fn checkpoint_rollback_restores_frontier_and_stack() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM", "*", "NUM"]).unwrap();
        let mut s = p.begin();
        p.feed(&mut s, toks[0]);
        let cp = s.checkpoint();
        assert_eq!(cp.tokens_fed(), 1);
        let baseline = s.stats();
        // Speculate into a dead end: NUM + * …
        p.feed(&mut s, toks[1]);
        p.feed(&mut s, toks[3]);
        assert!(s.is_dead());
        s.rollback(&cp);
        assert!(!s.is_dead());
        assert_eq!(s.stats().gss_nodes, baseline.gss_nodes);
        assert_eq!(s.stats().gss_edges, baseline.gss_edges);
        assert!(p.accepted(&mut s), "NUM alone is a sentence");
        // Resume down the real input.
        for &t in &toks[1..] {
            assert!(p.feed(&mut s, t));
        }
        assert!(p.accepted(&mut s));
    }

    #[test]
    fn rollback_with_epsilon_rules_and_hidden_left_recursion() {
        // The Farshi-fix stress shape: S → A S b | b, A → ε. Checkpoints in
        // the middle of ε-driven frontier growth must restore exactly.
        let mut g = CfgBuilder::new("S");
        g.terminal("b");
        g.rule("S", &["A", "S", "b"]);
        g.rule("S", &["b"]);
        g.rule("A", &[]);
        let p = GlrParser::new(&g.build().unwrap());
        let b = p.kinds_to_tokens(&["b"]).unwrap()[0];
        let mut s = p.begin();
        p.feed(&mut s, b);
        p.feed(&mut s, b);
        let cp = s.checkpoint();
        for _ in 0..3 {
            p.feed(&mut s, b);
        }
        assert!(p.accepted(&mut s), "bbbbb ∈ L");
        s.rollback(&cp);
        assert_eq!(s.tokens_fed(), 2);
        assert!(p.accepted(&mut s), "bb ∈ L after rollback");
        p.feed(&mut s, b);
        p.feed(&mut s, b);
        assert!(p.accepted(&mut s), "bbbb ∈ L after resume");
    }
}
