//! A GLR parser: the baseline standing in for Bison's `%glr-parser` in the
//! paper's Figure-6 comparison.
//!
//! Builds an SLR(1) automaton (LR(0) item sets + FOLLOW-gated reductions)
//! and drives it with a graph-structured stack (Tomita 1985, with Farshi's
//! fix for reductions through edges created by ε-rules). Conflicts are kept,
//! not resolved — like Bison in GLR mode, all actions are explored and
//! stacks merge on equal states. The paper's Python grammar had 92
//! shift/reduce and 4 reduce/reduce conflicts; [`GlrParser::conflicts`]
//! reports ours.
//!
//! # Quick start
//!
//! ```
//! use pwd_glr::GlrParser;
//! use pwd_grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = CfgBuilder::new("E");
//! g.terminals(&["+", "n"]);
//! g.rule("E", &["E", "+", "E"]); // ambiguous: GLR explores both
//! g.rule("E", &["n"]);
//! let parser = GlrParser::new(&g.build()?);
//! assert!(parser.recognize_kinds(&["n", "+", "n", "+", "n"])?);
//! assert!(!parser.recognize_kinds(&["n", "+"])?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pwd_grammar::{analysis, Cfg, Production, Symbol};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Error for token kinds outside the grammar's terminal alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKind {
    /// The offending kind name.
    pub kind: String,
    /// Its position in the input.
    pub position: usize,
}

impl fmt::Display for UnknownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token {} has kind {:?} outside the grammar", self.position, self.kind)
    }
}

impl std::error::Error for UnknownKind {}

/// An LR(0) item over the augmented grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Item {
    prod: u32,
    dot: u32,
}

/// A parse action in a table cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Shift(u32),
    Reduce(u32),
    Accept,
}

/// A GLR parser with SLR(1) tables over a graph-structured stack.
#[derive(Debug, Clone)]
pub struct GlrParser {
    /// Productions of the augmented grammar; the last one is `S' → S`.
    prods: Vec<Production>,
    /// ACTION[state][lookahead]; `None` lookahead = end of input.
    action: Vec<HashMap<Option<u32>, Vec<Action>>>,
    /// GOTO[state][nonterminal].
    goto_nt: Vec<HashMap<u32, u32>>,
    term_names: Vec<String>,
}

/// Statistics from a GLR run.
#[derive(Debug, Clone, Default)]
pub struct GlrStats {
    /// Total GSS nodes created.
    pub gss_nodes: usize,
    /// Total GSS edges created.
    pub gss_edges: usize,
}

impl GlrParser {
    /// Builds the SLR(1) tables for a grammar.
    pub fn new(cfg: &Cfg) -> GlrParser {
        // Augment: S' → S. The fresh nonterminal gets index nt_count.
        let aug_nt = cfg.nonterminal_count() as u32;
        let mut prods: Vec<Production> = cfg.productions().to_vec();
        let start_prod = prods.len() as u32;
        prods.push(Production { lhs: aug_nt, rhs: vec![Symbol::N(cfg.start())] });

        let by_lhs: Vec<Vec<usize>> = {
            let mut v = vec![Vec::new(); aug_nt as usize + 1];
            for (i, p) in prods.iter().enumerate() {
                v[p.lhs as usize].push(i);
            }
            v
        };

        let closure = |kernel: &BTreeSet<Item>| -> BTreeSet<Item> {
            let mut set = kernel.clone();
            let mut work: Vec<Item> = set.iter().copied().collect();
            while let Some(item) = work.pop() {
                let p = &prods[item.prod as usize];
                if let Some(Symbol::N(nt)) = p.rhs.get(item.dot as usize) {
                    for &pi in &by_lhs[*nt as usize] {
                        let new = Item { prod: pi as u32, dot: 0 };
                        if set.insert(new) {
                            work.push(new);
                        }
                    }
                }
            }
            set
        };

        // Canonical LR(0) collection.
        let mut states: Vec<BTreeSet<Item>> = Vec::new();
        let mut index: HashMap<BTreeSet<Item>, u32> = HashMap::new();
        let mut kernel0 = BTreeSet::new();
        kernel0.insert(Item { prod: start_prod, dot: 0 });
        let s0 = closure(&kernel0);
        index.insert(s0.clone(), 0);
        states.push(s0);
        let mut trans: Vec<HashMap<Symbol, u32>> = vec![HashMap::new()];
        let mut work = vec![0u32];
        while let Some(si) = work.pop() {
            // Group items by the symbol after the dot.
            let mut by_sym: HashMap<Symbol, BTreeSet<Item>> = HashMap::new();
            for item in &states[si as usize] {
                let p = &prods[item.prod as usize];
                if let Some(sym) = p.rhs.get(item.dot as usize) {
                    by_sym
                        .entry(*sym)
                        .or_default()
                        .insert(Item { prod: item.prod, dot: item.dot + 1 });
                }
            }
            let mut entries: Vec<(Symbol, BTreeSet<Item>)> = by_sym.into_iter().collect();
            entries.sort_by_key(|(s, _)| *s);
            for (sym, kernel) in entries {
                let target = closure(&kernel);
                let ti = match index.get(&target) {
                    Some(&t) => t,
                    None => {
                        let t = states.len() as u32;
                        index.insert(target.clone(), t);
                        states.push(target);
                        trans.push(HashMap::new());
                        work.push(t);
                        t
                    }
                };
                trans[si as usize].insert(sym, ti);
            }
        }

        // SLR: FOLLOW sets of the base grammar gate reductions.
        let follow = analysis::follow_sets(cfg);
        let mut action: Vec<HashMap<Option<u32>, Vec<Action>>> = vec![HashMap::new(); states.len()];
        let mut goto_nt: Vec<HashMap<u32, u32>> = vec![HashMap::new(); states.len()];
        for (si, state) in states.iter().enumerate() {
            for (sym, &ti) in &trans[si] {
                match sym {
                    Symbol::T(t) => {
                        action[si].entry(Some(*t)).or_default().push(Action::Shift(ti));
                    }
                    Symbol::N(n) => {
                        goto_nt[si].insert(*n, ti);
                    }
                }
            }
            for item in state {
                let p = &prods[item.prod as usize];
                if item.dot as usize == p.rhs.len() {
                    if item.prod == start_prod {
                        action[si].entry(None).or_default().push(Action::Accept);
                    } else {
                        for la in &follow[p.lhs as usize] {
                            action[si].entry(*la).or_default().push(Action::Reduce(item.prod));
                        }
                    }
                }
            }
        }

        GlrParser {
            prods,
            action,
            goto_nt,
            term_names: (0..cfg.terminal_count())
                .map(|t| cfg.terminal_name(t as u32).to_string())
                .collect(),
        }
    }

    /// Number of LR(0) states.
    pub fn state_count(&self) -> usize {
        self.action.len()
    }

    /// `(shift_reduce, reduce_reduce)` conflict counts in the SLR table —
    /// the quantities Bison reported as 92 and 4 for the paper's grammar.
    pub fn conflicts(&self) -> (usize, usize) {
        let mut sr = 0;
        let mut rr = 0;
        for state in &self.action {
            for acts in state.values() {
                let shifts = acts.iter().filter(|a| matches!(a, Action::Shift(_))).count();
                let reduces = acts.iter().filter(|a| matches!(a, Action::Reduce(_))).count();
                if shifts > 0 && reduces > 0 {
                    sr += 1;
                }
                if reduces > 1 {
                    rr += reduces - 1;
                }
            }
        }
        (sr, rr)
    }

    /// Recognizes a sequence of terminal indices.
    pub fn recognize(&self, tokens: &[u32]) -> bool {
        self.run(tokens).0
    }

    /// Recognizes terminal kinds by name.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for kinds outside the grammar.
    pub fn recognize_kinds(&self, kinds: &[&str]) -> Result<bool, UnknownKind> {
        let toks = self.kinds_to_tokens(kinds)?;
        Ok(self.recognize(&toks))
    }

    /// Recognizes a lexeme stream.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for lexeme kinds outside the grammar.
    pub fn recognize_lexemes(&self, lexemes: &[pwd_lex::Lexeme]) -> Result<bool, UnknownKind> {
        let toks: Result<Vec<u32>, UnknownKind> = lexemes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                self.terminal_index(&l.kind)
                    .ok_or_else(|| UnknownKind { kind: l.kind.clone(), position: i })
            })
            .collect();
        Ok(self.recognize(&toks?))
    }

    /// Recognition plus GSS statistics.
    pub fn recognize_with_stats(&self, tokens: &[u32]) -> (bool, GlrStats) {
        self.run(tokens)
    }

    /// Converts kind names to terminal indices.
    ///
    /// # Errors
    ///
    /// [`UnknownKind`] for kinds outside the grammar.
    pub fn kinds_to_tokens(&self, kinds: &[&str]) -> Result<Vec<u32>, UnknownKind> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                self.terminal_index(k)
                    .ok_or_else(|| UnknownKind { kind: (*k).to_string(), position: i })
            })
            .collect()
    }

    fn terminal_index(&self, name: &str) -> Option<u32> {
        self.term_names.iter().position(|t| t == name).map(|i| i as u32)
    }

    fn run(&self, tokens: &[u32]) -> (bool, GlrStats) {
        // Graph-structured stack.
        struct Gss {
            states: Vec<u32>,
            edges: Vec<Vec<usize>>,
        }
        impl Gss {
            fn push(&mut self, state: u32) -> usize {
                self.states.push(state);
                self.edges.push(Vec::new());
                self.states.len() - 1
            }
        }
        let mut gss = Gss { states: vec![0], edges: vec![Vec::new()] };
        let mut frontier: HashMap<u32, usize> = HashMap::new();
        frontier.insert(0, 0);
        let mut edge_count = 0usize;

        for i in 0..=tokens.len() {
            let lookahead = tokens.get(i).copied();

            // ---- reduce phase (to fixed point) ----
            let mut queue: Vec<(usize, u32)> = Vec::new();
            let mut done: HashSet<(usize, u32, usize)> = HashSet::new();
            let enqueue_all = |frontier: &HashMap<u32, usize>,
                               queue: &mut Vec<(usize, u32)>,
                               action: &[HashMap<Option<u32>, Vec<Action>>],
                               la: Option<u32>| {
                for (&st, &node) in frontier {
                    if let Some(acts) = action[st as usize].get(&la) {
                        for a in acts {
                            if let Action::Reduce(p) = a {
                                queue.push((node, *p));
                            }
                        }
                    }
                }
            };
            enqueue_all(&frontier, &mut queue, &self.action, lookahead);
            while let Some((node, prod)) = queue.pop() {
                let k = self.prods[prod as usize].rhs.len();
                // All endpoints of length-k paths from `node`.
                let mut endpoints: Vec<usize> = Vec::new();
                let mut layer = vec![node];
                for _ in 0..k {
                    let mut next = Vec::new();
                    for v in layer {
                        next.extend_from_slice(&gss.edges[v]);
                    }
                    next.sort_unstable();
                    next.dedup();
                    layer = next;
                }
                endpoints.extend(layer);
                for u in endpoints {
                    if !done.insert((node, prod, u)) {
                        continue;
                    }
                    let lhs = self.prods[prod as usize].lhs;
                    let Some(&target) = self.goto_nt[gss.states[u] as usize].get(&lhs) else {
                        continue;
                    };
                    let w = match frontier.get(&target) {
                        Some(&w) => {
                            if !gss.edges[w].contains(&u) {
                                gss.edges[w].push(u);
                                edge_count += 1;
                                // New path through an existing node: re-run
                                // frontier reductions (Farshi's fix — needed
                                // for ε-rules and hidden left recursion).
                                enqueue_all(&frontier, &mut queue, &self.action, lookahead);
                            }
                            w
                        }
                        None => {
                            let w = gss.push(target);
                            gss.edges[w].push(u);
                            edge_count += 1;
                            frontier.insert(target, w);
                            if let Some(acts) = self.action[target as usize].get(&lookahead) {
                                for a in acts {
                                    if let Action::Reduce(p) = a {
                                        queue.push((w, *p));
                                    }
                                }
                            }
                            w
                        }
                    };
                    let _ = w;
                }
            }

            // ---- accept / shift phase ----
            match lookahead {
                None => {
                    let accepted = frontier.keys().any(|&st| {
                        self.action[st as usize]
                            .get(&None)
                            .is_some_and(|acts| acts.contains(&Action::Accept))
                    });
                    let stats = GlrStats { gss_nodes: gss.states.len(), gss_edges: edge_count };
                    return (accepted, stats);
                }
                Some(t) => {
                    let mut next: HashMap<u32, usize> = HashMap::new();
                    for (&st, &node) in &frontier {
                        if let Some(acts) = self.action[st as usize].get(&Some(t)) {
                            for a in acts {
                                if let Action::Shift(s) = a {
                                    let w = *next.entry(*s).or_insert_with(|| gss.push(*s));
                                    if !gss.edges[w].contains(&node) {
                                        gss.edges[w].push(node);
                                        edge_count += 1;
                                    }
                                }
                            }
                        }
                    }
                    if next.is_empty() {
                        let stats = GlrStats { gss_nodes: gss.states.len(), gss_edges: edge_count };
                        return (false, stats);
                    }
                    frontier = next;
                }
            }
        }
        unreachable!("loop returns at EOF");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwd_grammar::CfgBuilder;

    fn arith() -> GlrParser {
        GlrParser::new(&pwd_grammar::grammars::arith::cfg())
    }

    #[test]
    fn slr_arithmetic() {
        let p = arith();
        assert!(p.recognize_kinds(&["NUM", "+", "NUM", "*", "NUM"]).unwrap());
        assert!(p.recognize_kinds(&["(", "NUM", "+", "NUM", ")", "*", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&["NUM", "+"]).unwrap());
        assert!(!p.recognize_kinds(&["(", "NUM"]).unwrap());
        assert!(!p.recognize_kinds(&[]).unwrap());
        // The arith grammar is SLR(1): no conflicts.
        assert_eq!(p.conflicts(), (0, 0));
    }

    #[test]
    fn ambiguous_expression_grammar() {
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::expr());
        let (sr, _) = p.conflicts();
        assert!(sr > 0, "E → E+E | E*E must have shift/reduce conflicts");
        assert!(p.recognize_kinds(&["n", "+", "n", "*", "n"]).unwrap());
        assert!(!p.recognize_kinds(&["n", "+", "*"]).unwrap());
    }

    #[test]
    fn catalan_grammar() {
        let p = GlrParser::new(&pwd_grammar::grammars::ambiguous::catalan());
        for n in 1..8 {
            let kinds: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn epsilon_rules() {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["A", "B"]);
        g.rule("A", &[]);
        g.rule("A", &["a"]);
        g.rule("B", &["b"]);
        let p = GlrParser::new(&g.build().unwrap());
        assert!(p.recognize_kinds(&["b"]).unwrap());
        assert!(p.recognize_kinds(&["a", "b"]).unwrap());
        assert!(!p.recognize_kinds(&["a"]).unwrap());
    }

    #[test]
    fn hidden_left_recursion() {
        let mut g = CfgBuilder::new("S");
        g.terminal("b");
        g.rule("S", &["A", "S", "b"]);
        g.rule("S", &["b"]);
        g.rule("A", &[]);
        let p = GlrParser::new(&g.build().unwrap());
        for n in 1..=6 {
            let kinds: Vec<&str> = std::iter::repeat_n("b", n).collect();
            assert!(p.recognize_kinds(&kinds).unwrap(), "n={n}");
        }
        assert!(!p.recognize_kinds(&[]).unwrap());
    }

    #[test]
    fn python_module() {
        let p = GlrParser::new(&pwd_grammar::grammars::python::cfg());
        let src = "def f(x):\n    return x + 1\n\ny = f(41)\n";
        let lexemes = pwd_lex::tokenize_python(src).unwrap();
        assert!(p.recognize_lexemes(&lexemes).unwrap());
        let bad = pwd_lex::tokenize_python("def f(:\n    pass\n").unwrap();
        assert!(!p.recognize_lexemes(&bad).unwrap());
    }

    #[test]
    fn unknown_kind_error() {
        let p = arith();
        let err = p.recognize_kinds(&["NUM", "WAT"]).unwrap_err();
        assert_eq!(err.kind, "WAT");
    }

    #[test]
    fn stats_populated() {
        let p = arith();
        let toks = p.kinds_to_tokens(&["NUM", "+", "NUM"]).unwrap();
        let (ok, stats) = p.recognize_with_stats(&toks);
        assert!(ok);
        assert!(stats.gss_nodes > 0);
        assert!(stats.gss_edges > 0);
    }
}
