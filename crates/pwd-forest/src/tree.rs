//! Concrete parse trees, shared by every backend.

use std::fmt;
use std::sync::Arc;

/// A token leaf: a terminal kind plus the matched lexeme text.
///
/// Leaf identity is *textual* — two leaves with the same kind and text are
/// equal regardless of which backend (or which interner) produced them —
/// which is what lets forests from different parser families compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Leaf {
    /// The terminal kind name (e.g. `"NUM"`).
    pub kind: Arc<str>,
    /// The lexeme text (e.g. `"42"`).
    pub text: Arc<str>,
}

impl Leaf {
    /// Builds a leaf from kind and text.
    pub fn new(kind: &str, text: &str) -> Leaf {
        Leaf { kind: Arc::from(kind), text: Arc::from(text) }
    }
}

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A concrete parse tree.
///
/// `◦` produces [`Tree::Pair`], tokens produce [`Tree::Leaf`], `ε` produces
/// [`Tree::Empty`], and reductions (user functions or the structured
/// production labels of compiled grammars) build labeled [`Tree::Node`]s.
///
/// # Examples
///
/// ```
/// use pwd_forest::Tree;
/// let t = Tree::node("expr", vec![Tree::Empty]);
/// assert_eq!(t.to_string(), "(expr ε)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Tree {
    /// The empty (`ε`) tree.
    Empty,
    /// A token leaf.
    Leaf(Leaf),
    /// A pair produced by concatenation.
    Pair(Arc<Tree>, Arc<Tree>),
    /// A labeled node produced by a reduction.
    Node(Arc<str>, Arc<[Tree]>),
}

impl Tree {
    /// Builds a pair tree.
    pub fn pair(a: Tree, b: Tree) -> Tree {
        Tree::Pair(Arc::new(a), Arc::new(b))
    }

    /// Builds a labeled node.
    pub fn node(label: &str, children: Vec<Tree>) -> Tree {
        Tree::Node(Arc::from(label), Arc::from(children))
    }

    /// Builds a token leaf from kind and text.
    pub fn leaf(kind: &str, text: &str) -> Tree {
        Tree::Leaf(Leaf::new(kind, text))
    }

    /// Number of token leaves in the tree.
    ///
    /// Iterative (explicit worklist), so arbitrarily deep right-spine trees
    /// — a linear parse of an `n`-token input nests `n` deep — cannot
    /// overflow the call stack.
    pub fn leaves(&self) -> usize {
        let mut count = 0;
        let mut stack: Vec<&Tree> = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Tree::Empty => {}
                Tree::Leaf(_) => count += 1,
                Tree::Pair(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Tree::Node(_, kids) => stack.extend(kids.iter()),
            }
        }
        count
    }

    /// The left-to-right sequence of leaf lexemes (the *yield*).
    ///
    /// Iterative, like [`leaves`](Tree::leaves): the worklist is pushed in
    /// reverse so lexemes come out in input order.
    pub fn fringe(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack: Vec<&Tree> = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Tree::Empty => {}
                Tree::Leaf(l) => out.push(l.text.to_string()),
                Tree::Pair(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                Tree::Node(_, kids) => stack.extend(kids.iter().rev()),
            }
        }
        out
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tree::Empty => write!(f, "ε"),
            Tree::Leaf(l) => write!(f, "{}", l.text),
            Tree::Pair(a, b) => write!(f, "({a} . {b})"),
            Tree::Node(label, kids) => {
                write!(f, "({label}")?;
                for k in kids.iter() {
                    write!(f, " {k}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fringe_and_leaves_in_order() {
        let t = Tree::node(
            "top",
            vec![Tree::pair(Tree::leaf("a", "a"), Tree::Empty), Tree::leaf("b", "b")],
        );
        assert_eq!(t.fringe(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(t.leaves(), 2);
    }

    #[test]
    fn deep_right_spine_does_not_overflow() {
        // A million-deep right spine: the recursive version would blow the
        // stack; the worklist version must not.
        let mut t = Tree::Empty;
        for _ in 0..1_000_000 {
            t = Tree::Pair(Arc::new(Tree::leaf("a", "a")), Arc::new(t));
        }
        assert_eq!(t.leaves(), 1_000_000);
        let fringe = t.fringe();
        assert_eq!(fringe.len(), 1_000_000);
        assert!(fringe.iter().all(|s| s == "a"));
        // Drop iteratively too: unwind the spine without recursive Drop.
        while let Tree::Pair(_, rest) = t {
            t = Arc::try_unwrap(rest).unwrap_or(Tree::Empty);
        }
    }

    #[test]
    fn display_shapes() {
        let t = Tree::pair(Tree::leaf("n", "1"), Tree::leaf("n", "2"));
        assert_eq!(t.to_string(), "(1 . 2)");
        assert_eq!(Tree::Empty.to_string(), "ε");
    }
}
