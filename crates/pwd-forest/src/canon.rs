//! Canonicalization: one normal form for forests from every backend.
//!
//! Different parser families build structurally different forests for the
//! same (grammar, input): the PWD engine's forests carry compaction-inserted
//! reductions (`pair-left`, `reassoc`, `map-first`, production labels) over
//! binary pair spines, while chart- and stack-based parsers build packed
//! `(symbol, span)` nodes directly. This module normalizes both shapes into
//! one **canonical packed form** — production-labeled nodes over hash-consed
//! right-nested spines, with ambiguity nodes flattened, deduplicated, and
//! hash-ordered — by *symbolically evaluating* the structured reductions at
//! the forest level (no tree is ever enumerated, so the normalization stays
//! polynomial in the packed graph even when the tree count is astronomical).
//!
//! Two canonical forests denote the same tree set iff they are structurally
//! equal, so [`ParseForest::fingerprint`] equality replaces exponential
//! tree-set comparison in the differential-testing harness. (For *cyclic* —
//! infinitely ambiguous — forests the fingerprint is deterministic but only
//! knot-placement-faithful; the harness compares counts there instead.)

use crate::count::TreeCount;
use crate::forest::{EnumLimits, Forest, ForestId, ForestNode};
use crate::knot::{Knot, KnotTable};
use crate::reduce::{Reduce, ReduceKind};
use crate::tree::Tree;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Bound on enumerating through an opaque [`Reduce::func`] during
/// canonicalization. Compiled grammars use structured labels and never hit
/// this path.
const FUNC_LIMIT: u128 = 512;

/// Canonicalization failure: the forest maps an opaque user function over a
/// subforest too ambiguous to enumerate through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// The named [`Reduce::func`] could not be evaluated symbolically.
    Opaque(String),
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::Opaque(name) => write!(
                f,
                "cannot canonicalize: opaque reduction {name:?} over an \
                 unboundedly ambiguous subforest"
            ),
        }
    }
}

impl std::error::Error for CanonError {}

/// A self-contained parse result: an owned (canonical) forest plus its
/// root. This is what [`Parser::parse_forest`] returns on every backend —
/// count it, fingerprint it, enumerate top-k trees, or export DOT, without
/// holding a borrow of the engine.
///
/// [`Parser::parse_forest`]: https://docs.rs/derp (the unified backend API)
#[derive(Debug, Clone)]
pub struct ParseForest {
    forest: Forest,
    root: ForestId,
}

/// The compact wire summary of a forest: what a parse service returns when
/// the client wants ambiguity information but not the graph itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForestSummary {
    /// Exact tree count (`Finite`/`Overflow`/`Infinite`).
    pub count: TreeCount,
    /// Longest acyclic path in the forest graph.
    pub depth: usize,
    /// Nodes reachable from the root (the packed size, not the tree count).
    pub node_count: usize,
    /// Canonical structural fingerprint (equal forests ⇒ equal fingerprints).
    pub fingerprint: u64,
}

impl ParseForest {
    /// Wraps a forest and its root.
    pub fn new(forest: Forest, root: ForestId) -> ParseForest {
        ParseForest { forest, root }
    }

    /// The canonical empty result: a rejected input's "forest of no trees".
    pub fn rejected() -> ParseForest {
        let mut forest = Forest::hash_consed();
        let root = forest.empty();
        ParseForest { forest, root }
    }

    /// The underlying arena.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// The root node.
    pub fn root(&self) -> ForestId {
        self.root
    }

    /// Does the forest contain at least one tree (i.e. was the input
    /// accepted)?
    pub fn has_tree(&self) -> bool {
        self.forest.has_tree(self.root)
    }

    /// Exact tree count — see [`Forest::count`].
    pub fn count(&self) -> TreeCount {
        self.forest.count(self.root)
    }

    /// Bounded enumeration — see [`Forest::trees`].
    pub fn trees(&self, limits: EnumLimits) -> Vec<Tree> {
        self.forest.trees(self.root, limits)
    }

    /// The canonical structural fingerprint of the root.
    pub fn fingerprint(&self) -> u64 {
        self.forest.node_hash(self.root)
    }

    /// Nodes reachable from the root.
    pub fn node_count(&self) -> usize {
        self.forest.reachable_count(self.root)
    }

    /// Longest acyclic path from the root.
    pub fn depth(&self) -> usize {
        self.forest.depth(self.root)
    }

    /// The wire summary: count, depth, node count, fingerprint.
    pub fn summary(&self) -> ForestSummary {
        ForestSummary {
            count: self.count(),
            depth: self.depth(),
            node_count: self.node_count(),
            fingerprint: self.fingerprint(),
        }
    }

    /// Graphviz DOT export of the forest graph — see [`Forest::to_dot`].
    pub fn to_dot(&self) -> String {
        self.forest.to_dot(self.root)
    }

    /// Exact structural equality with another parse forest, without
    /// enumerating any tree. On cyclic forests this is a bisimulation-style
    /// comparison (cycles are assumed equal when re-encountered).
    pub fn structural_eq(&self, other: &ParseForest) -> bool {
        let mut assumed: HashSet<(u32, u32)> = HashSet::new();
        eq_nodes(&self.forest, self.root, &other.forest, other.root, &mut assumed)
    }
}

fn eq_nodes(
    fa: &Forest,
    a: ForestId,
    fb: &Forest,
    b: ForestId,
    assumed: &mut HashSet<(u32, u32)>,
) -> bool {
    if !assumed.insert((a.0, b.0)) {
        return true; // already being compared (cycle) or already matched
    }
    match (fa.get(a), fb.get(b)) {
        (ForestNode::Empty, ForestNode::Empty)
        | (ForestNode::Eps, ForestNode::Eps)
        | (ForestNode::Cycle, ForestNode::Cycle) => true,
        (ForestNode::Leaf(x), ForestNode::Leaf(y)) => x == y,
        (ForestNode::Const(x), ForestNode::Const(y)) => x == y,
        (ForestNode::Pair(a1, a2), ForestNode::Pair(b1, b2)) => {
            eq_nodes(fa, *a1, fb, *b1, assumed) && eq_nodes(fa, *a2, fb, *b2, assumed)
        }
        (ForestNode::Amb(xs), ForestNode::Amb(ys)) => {
            xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| eq_nodes(fa, *x, fb, *y, assumed))
        }
        (ForestNode::Map(rx, x), ForestNode::Map(ry, y)) => {
            eq_reduce(fa, rx, fb, ry, assumed) && eq_nodes(fa, *x, fb, *y, assumed)
        }
        _ => false,
    }
}

fn eq_reduce(
    fa: &Forest,
    x: &Reduce,
    fb: &Forest,
    y: &Reduce,
    assumed: &mut HashSet<(u32, u32)>,
) -> bool {
    match (&*x.0, &*y.0) {
        (ReduceKind::Reassoc, ReduceKind::Reassoc) => true,
        (ReduceKind::Label(n1, a1), ReduceKind::Label(n2, a2)) => n1 == n2 && a1 == a2,
        (ReduceKind::Compose(g1, h1), ReduceKind::Compose(g2, h2)) => {
            eq_reduce(fa, g1, fb, g2, assumed) && eq_reduce(fa, h1, fb, h2, assumed)
        }
        (ReduceKind::PairLeft(s1), ReduceKind::PairLeft(s2))
        | (ReduceKind::PairRight(s1), ReduceKind::PairRight(s2)) => {
            eq_nodes(fa, *s1, fb, *s2, assumed)
        }
        (ReduceKind::MapFirst(g1), ReduceKind::MapFirst(g2))
        | (ReduceKind::MapSecond(g1), ReduceKind::MapSecond(g2)) => {
            eq_reduce(fa, g1, fb, g2, assumed)
        }
        // Opaque functions have no structural identity across arenas.
        (ReduceKind::Func(_, f1), ReduceKind::Func(_, f2)) => std::sync::Arc::ptr_eq(f1, f2),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// The canonicalizer
// ---------------------------------------------------------------------

struct Canon<'a> {
    src: &'a Forest,
    /// `has_tree` over the source forest: unproductive subforests prune to
    /// the canonical empty node.
    has: Vec<bool>,
    out: Forest,
    memo: KnotTable<u32>,
    spine_memo: HashMap<(u32, usize), Vec<Vec<ForestId>>>,
}

impl Forest {
    /// Normalizes the forest rooted at `root` into an owned canonical
    /// [`ParseForest`]: structured reductions evaluated symbolically,
    /// production labels over exact spines, ambiguity flattened/deduped/
    /// hash-ordered, everything hash-consed.
    ///
    /// # Errors
    ///
    /// [`CanonError::Opaque`] if the forest maps an opaque
    /// [`Reduce::func`] over a subforest with more than a few hundred trees
    /// (compiled grammars use structured labels and cannot hit this).
    pub fn extract_canonical(&self, root: ForestId) -> Result<ParseForest, CanonError> {
        let mut canon = Canon {
            src: self,
            has: self.has_vector(root),
            out: Forest::hash_consed(),
            memo: KnotTable::new(),
            spine_memo: HashMap::new(),
        };
        let out_root = canon.norm(root)?;
        Ok(ParseForest::new(canon.out, out_root))
    }

    /// The `has_tree` bit for every node, computed once for the
    /// canonicalizer's productivity pruning.
    fn has_vector(&self, root: ForestId) -> Vec<bool> {
        // `analyze` is private to count.rs; recompute via the public
        // fixpoint per reachable node would be quadratic, so expose the
        // vector through a crate-internal hook.
        self.has_tree_vector(root)
    }
}

impl<'a> Canon<'a> {
    fn norm(&mut self, f: ForestId) -> Result<ForestId, CanonError> {
        match self.memo.enter(f.0, &mut self.out) {
            Knot::Done(id) => return Ok(id),
            // A cycle: the placeholder is patched when the region is done.
            Knot::Cycle(ph) => return Ok(ph),
            Knot::Fresh => {}
        }
        if !self.has[f.index()] {
            let e = self.out.empty();
            return Ok(self.memo.finish(f.0, &mut self.out, e));
        }
        let result = match self.src.get(f).clone() {
            ForestNode::Empty | ForestNode::Cycle => Ok(self.out.empty()),
            ForestNode::Eps => Ok(self.out.eps()),
            ForestNode::Leaf(l) => Ok(self.out.leaf(&l.kind, &l.text)),
            ForestNode::Const(t) => Ok(self.embed(&t)),
            ForestNode::Pair(a, b) => {
                let na = self.norm(a)?;
                let nb = self.norm(b)?;
                Ok(self.out.pair(na, nb))
            }
            ForestNode::Amb(alts) => {
                let normed: Result<Vec<ForestId>, CanonError> =
                    alts.iter().map(|a| self.norm(*a)).collect();
                Ok(self.out.amb(normed?))
            }
            ForestNode::Map(red, x) => {
                let nx = self.norm(x)?;
                self.sym_apply(&red, nx)
            }
        };
        let r = match result {
            Ok(r) => r,
            Err(e) => {
                self.memo.abort(&f.0);
                return Err(e);
            }
        };
        // Tie any knot opened while this node was in progress.
        Ok(self.memo.finish(f.0, &mut self.out, r))
    }

    /// Embeds a concrete tree as canonical nodes (labels become label
    /// nodes over exact spines, so a constant tree and a structurally
    /// built forest of the same tree cons to the same node).
    fn embed(&mut self, t: &Tree) -> ForestId {
        match t {
            Tree::Empty => self.out.eps(),
            Tree::Leaf(l) => self.out.leaf(&l.kind, &l.text),
            Tree::Pair(a, b) => {
                let na = self.embed(a);
                let nb = self.embed(b);
                self.out.pair(na, nb)
            }
            Tree::Node(label, kids) => {
                let ids: Vec<ForestId> = kids.iter().map(|k| self.embed(k)).collect();
                let spine = self.out.right_spine(&ids);
                self.out.label(label, kids.len(), spine)
            }
        }
    }

    /// The shallow alternative list of a canonical node.
    fn alts_of(&self, f: ForestId) -> Vec<ForestId> {
        match self.out.get(f) {
            ForestNode::Amb(alts) => alts.clone(),
            _ => vec![f],
        }
    }

    /// Applies a reduction *symbolically* to a canonical forest.
    fn sym_apply(&mut self, red: &Reduce, cf: ForestId) -> Result<ForestId, CanonError> {
        match &*red.0 {
            ReduceKind::Compose(g, h) => {
                let mid = self.sym_apply(h, cf)?;
                self.sym_apply(g, mid)
            }
            ReduceKind::PairLeft(s) => {
                let ns = self.norm(*s)?;
                Ok(self.out.pair(ns, cf))
            }
            ReduceKind::PairRight(s) => {
                let ns = self.norm(*s)?;
                Ok(self.out.pair(cf, ns))
            }
            ReduceKind::Reassoc => {
                let mut res = Vec::new();
                for alt in self.alts_of(cf) {
                    match self.out.get(alt).clone() {
                        ForestNode::Pair(a, r) => {
                            for inner in self.alts_of(r) {
                                match self.out.get(inner).clone() {
                                    ForestNode::Pair(b, c) => {
                                        let ab = self.out.pair(a, b);
                                        res.push(self.out.pair(ab, c));
                                    }
                                    _ => res.push(self.out.pair(a, inner)),
                                }
                            }
                        }
                        _ => res.push(alt),
                    }
                }
                Ok(self.out.amb(res))
            }
            ReduceKind::MapFirst(g) => {
                let mut res = Vec::new();
                for alt in self.alts_of(cf) {
                    match self.out.get(alt).clone() {
                        ForestNode::Pair(a, b) => {
                            let ga = self.sym_apply(g, a)?;
                            res.push(self.out.pair(ga, b));
                        }
                        _ => res.push(alt),
                    }
                }
                Ok(self.out.amb(res))
            }
            ReduceKind::MapSecond(g) => {
                let mut res = Vec::new();
                for alt in self.alts_of(cf) {
                    match self.out.get(alt).clone() {
                        ForestNode::Pair(a, b) => {
                            let gb = self.sym_apply(g, b)?;
                            res.push(self.out.pair(a, gb));
                        }
                        _ => res.push(alt),
                    }
                }
                Ok(self.out.amb(res))
            }
            ReduceKind::Label(name, arity) => {
                if *arity == 0 {
                    let e = self.out.eps();
                    return Ok(self.out.label(name, 0, e));
                }
                let lists = self.spine(cf, *arity);
                let mut alts = Vec::with_capacity(lists.len());
                for ls in lists {
                    let sp = self.out.right_spine(&ls);
                    alts.push(self.out.label(name, *arity, sp));
                }
                Ok(self.out.amb(alts))
            }
            ReduceKind::Func(name, f) => {
                // Last resort: enumerate through the opaque function. Only
                // sound when the subforest is small, finite, and *finished*
                // — an in-progress knot under `cf` would count as empty
                // here and silently truncate the cyclic alternatives.
                if self.out.contains_cycle_node(cf) {
                    return Err(CanonError::Opaque(name.to_string()));
                }
                match self.out.count(cf) {
                    TreeCount::Finite(n) if n <= FUNC_LIMIT => {
                        let limits = EnumLimits {
                            max_trees: FUNC_LIMIT as usize + 1,
                            max_depth: usize::MAX,
                        };
                        let trees = self.out.trees(cf, limits);
                        let alts: Vec<ForestId> = trees
                            .into_iter()
                            .map(|t| {
                                let mapped = f(t);
                                self.embed(&mapped)
                            })
                            .collect();
                        Ok(self.out.amb(alts))
                    }
                    _ => Err(CanonError::Opaque(name.to_string())),
                }
            }
        }
    }

    /// Decomposes a canonical forest into `arity` spine components,
    /// distributing ambiguity: one component list per distinct top-level
    /// shape. Memoized per `(node, arity)`.
    fn spine(&mut self, f: ForestId, arity: usize) -> Vec<Vec<ForestId>> {
        if arity <= 1 {
            return vec![vec![f]];
        }
        if let Some(cached) = self.spine_memo.get(&(f.0, arity)) {
            return cached.clone();
        }
        let mut lists = Vec::new();
        let mut saw_in_progress = false;
        for alt in self.alts_of(f) {
            match self.out.get(alt).clone() {
                ForestNode::Pair(a, r) => {
                    for rest in self.spine(r, arity - 1) {
                        let mut ls = Vec::with_capacity(rest.len() + 1);
                        ls.push(a);
                        ls.extend(rest);
                        lists.push(ls);
                    }
                }
                // An in-progress knot: treat as an opaque component, but do
                // not memoize a decomposition of a node still being built.
                ForestNode::Cycle => {
                    saw_in_progress = true;
                    lists.push(vec![alt]);
                }
                // Early stop: the spine bottomed out (mirrors flatten).
                _ => lists.push(vec![alt]),
            }
        }
        if !saw_in_progress {
            self.spine_memo.insert((f.0, arity), lists.clone());
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_evaluates_labels_over_spines() {
        // Map(Label(S,2), Amb{Pair(a,b), Pair(a,c)}) — the PWD shape —
        // normalizes to Amb{(S a b), (S a c)} in packed form.
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let b = fs.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let c = fs.alloc(ForestNode::Leaf(crate::Leaf::new("c", "c")));
        let ab = fs.alloc(ForestNode::Pair(a, b));
        let ac = fs.alloc(ForestNode::Pair(a, c));
        let amb = fs.alloc(ForestNode::Amb(vec![ab, ac]));
        let m = fs.alloc(ForestNode::Map(Reduce::label("S", 2), amb));
        let canon = fs.extract_canonical(m).unwrap();
        assert_eq!(canon.count(), TreeCount::Finite(2));
        let mut strs: Vec<String> =
            canon.trees(EnumLimits::default()).iter().map(|t| t.to_string()).collect();
        strs.sort();
        assert_eq!(strs, ["(S a b)", "(S a c)"]);
    }

    #[test]
    fn equivalent_shapes_fingerprint_equal() {
        // Shape 1: Map(Label(S,2), Pair(a, b)).
        let mut f1 = Forest::new();
        let a1 = f1.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let b1 = f1.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let p1 = f1.alloc(ForestNode::Pair(a1, b1));
        let m1 = f1.alloc(ForestNode::Map(Reduce::label("S", 2), p1));
        // Shape 2: the same denotation via pair-left over the right leaf
        // (ε_a ◦ b compacted): Map(Label(S,2), Map(PairLeft(a), b)).
        let mut f2 = Forest::new();
        let a2 = f2.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let b2 = f2.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let pl = f2.alloc(ForestNode::Map(Reduce::pair_left(a2), b2));
        let m2 = f2.alloc(ForestNode::Map(Reduce::label("S", 2), pl));
        let c1 = f1.extract_canonical(m1).unwrap();
        let c2 = f2.extract_canonical(m2).unwrap();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        assert!(c1.structural_eq(&c2));
        // And a different denotation does not collide.
        let mut f3 = Forest::new();
        let a3 = f3.alloc(ForestNode::Leaf(crate::Leaf::new("a", "x")));
        let b3 = f3.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let p3 = f3.alloc(ForestNode::Pair(a3, b3));
        let m3 = f3.alloc(ForestNode::Map(Reduce::label("S", 2), p3));
        let c3 = f3.extract_canonical(m3).unwrap();
        assert_ne!(c1.fingerprint(), c3.fingerprint());
        assert!(!c1.structural_eq(&c3));
    }

    #[test]
    fn reassoc_and_map_first_normalize_away() {
        // ((a ◦ (b ◦ c)) ↪ reassoc) ↪ Label(S,2)  ≡  ((a.b).c) labeled.
        let mut f1 = Forest::new();
        let a = f1.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let b = f1.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let c = f1.alloc(ForestNode::Leaf(crate::Leaf::new("c", "c")));
        let bc = f1.alloc(ForestNode::Pair(b, c));
        let abc = f1.alloc(ForestNode::Pair(a, bc));
        let re = f1.alloc(ForestNode::Map(Reduce::reassoc(), abc));
        let m1 = f1.alloc(ForestNode::Map(Reduce::label("S", 2), re));
        let mut f2 = Forest::new();
        let a2 = f2.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let b2 = f2.alloc(ForestNode::Leaf(crate::Leaf::new("b", "b")));
        let c2 = f2.alloc(ForestNode::Leaf(crate::Leaf::new("c", "c")));
        let ab2 = f2.alloc(ForestNode::Pair(a2, b2));
        let abc2 = f2.alloc(ForestNode::Pair(ab2, c2));
        let m2 = f2.alloc(ForestNode::Map(Reduce::label("S", 2), abc2));
        let c1 = f1.extract_canonical(m1).unwrap();
        let cc2 = f2.extract_canonical(m2).unwrap();
        assert_eq!(c1.fingerprint(), cc2.fingerprint());
        assert_eq!(c1.trees(EnumLimits::default()), cc2.trees(EnumLimits::default()));
    }

    #[test]
    fn unproductive_branches_prune() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let dead = fs.alloc(ForestNode::Empty);
        let dead_pair = fs.alloc(ForestNode::Pair(a, dead));
        let amb = fs.alloc(ForestNode::Amb(vec![a, dead_pair]));
        let canon = fs.extract_canonical(amb).unwrap();
        assert_eq!(canon.count(), TreeCount::Finite(1));
        // The canonical forest is just the leaf: one node.
        assert_eq!(canon.node_count(), 1);
    }

    #[test]
    fn cyclic_forests_canonicalize_without_diverging() {
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, leaf));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        let canon = fs.extract_canonical(amb).unwrap();
        assert_eq!(canon.count(), TreeCount::Infinite);
        assert!(canon.has_tree());
        assert!(!canon.trees(EnumLimits { max_trees: 3, max_depth: 32 }).is_empty());
    }

    #[test]
    fn opaque_func_small_forest_canonicalizes_large_errors() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let m = fs.alloc(ForestNode::Map(Reduce::func("wrap", |t| Tree::node("w", vec![t])), a));
        let canon = fs.extract_canonical(m).unwrap();
        assert_eq!(canon.trees(EnumLimits::default())[0].to_string(), "(w a)");

        // An infinite subforest under an opaque func cannot canonicalize.
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, leaf));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        let m = fs.alloc(ForestNode::Map(Reduce::func("f", |t| t), amb));
        assert!(matches!(fs.extract_canonical(m), Err(CanonError::Opaque(_))));
    }

    #[test]
    fn opaque_func_on_a_cycle_errors_instead_of_truncating() {
        // The func node sits *inside* the cycle: when it is normalized, its
        // input is still an unpatched placeholder, so counting through it
        // would silently report the cyclic alternatives as absent. This
        // must error, not return a truncated forest.
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(crate::Leaf::new("a", "a")));
        let amb = fs.reserve();
        let m = fs.alloc(ForestNode::Map(Reduce::func("wrap", |t| Tree::node("w", vec![t])), amb));
        fs.set(amb, ForestNode::Amb(vec![leaf, m]));
        // The source forest really is infinite: a, (w a), (w (w a)), …
        assert_eq!(fs.count(amb), TreeCount::Infinite);
        assert!(matches!(fs.extract_canonical(amb), Err(CanonError::Opaque(_))));
    }

    #[test]
    fn rejected_parse_forest_summary() {
        let pf = ParseForest::rejected();
        assert!(!pf.has_tree());
        assert_eq!(pf.count(), TreeCount::Finite(0));
        assert!(pf.trees(EnumLimits::default()).is_empty());
        let s = pf.summary();
        assert_eq!(s.count, TreeCount::Finite(0));
        assert_eq!(s.node_count, 1);
        // All rejected forests fingerprint identically.
        assert_eq!(s.fingerprint, ParseForest::rejected().fingerprint());
    }
}
