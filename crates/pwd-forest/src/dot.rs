//! Graphviz export of forest graphs.

use crate::forest::{Forest, ForestId, ForestNode};
use std::fmt::Write as _;

impl Forest {
    /// Renders the forest reachable from `root` in Graphviz DOT format
    /// (`dot -Tsvg` ready). Ambiguity nodes draw as double circles, leaves
    /// as boxes, reductions as diamonds — the visual grammar of the paper's
    /// forest figures, and the quickest way to *see* where an input's
    /// ambiguity lives.
    pub fn to_dot(&self, root: ForestId) -> String {
        let mut out = String::from("digraph forest {\n  rankdir=TB;\n");
        let mut seen = vec![false; self.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            let (label, shape, children): (String, &str, Vec<ForestId>) = match self.get(id) {
                ForestNode::Empty => ("·".into(), "plaintext", vec![]),
                ForestNode::Cycle => ("…".into(), "plaintext", vec![]),
                ForestNode::Eps => ("ε".into(), "plaintext", vec![]),
                ForestNode::Leaf(l) => (format!("{:?}", l.text.as_ref()), "box", vec![]),
                ForestNode::Const(t) => (format!("{t}"), "box", vec![]),
                ForestNode::Pair(a, b) => ("•".into(), "circle", vec![*a, *b]),
                ForestNode::Amb(alts) => ("amb".into(), "doublecircle", alts.clone()),
                ForestNode::Map(f, x) => (format!("↪ {f:?}"), "diamond", vec![*x]),
            };
            let _ = writeln!(
                out,
                "  f{} [shape={shape} label=\"{}\"];",
                id.index(),
                label.replace('\\', "\\\\").replace('"', "\\\"")
            );
            for c in children {
                let _ = writeln!(out, "  f{} -> f{};", id.index(), c.index());
                stack.push(c);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_is_wellformed_and_marks_ambiguity() {
        let mut fs = Forest::hash_consed();
        let a = fs.leaf("a", "a");
        let b = fs.leaf("b", "b");
        let p = fs.pair(a, b);
        let amb = fs.amb(vec![p, a]);
        let dot = fs.to_dot(amb);
        assert!(dot.starts_with("digraph forest {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("doublecircle"), "{dot}");
        assert!(dot.contains("\\\"a\\\""), "escaped leaf text present: {dot}");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
