//! The shared forest arena: nodes, hash-consed packing, and bounded
//! enumeration.

use crate::reduce::{Reduce, ReduceKind};
use crate::tree::{Leaf, Tree};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Index of a node in a [`Forest`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ForestId(pub(crate) u32);

impl ForestId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of a shared parse forest.
///
/// The denotation of a node is a *set of trees*: `Pair` is the cross
/// product, `Amb` the union, `Map` a reduction mapped over the set. Cycles
/// are permitted (grammars with infinitely many parses of a word produce
/// cyclic forests); a [`Cycle`](ForestNode::Cycle) node is the placeholder
/// a cyclic region holds while mid-construction — one that survives
/// construction denotes the empty set.
#[derive(Debug, Clone)]
pub enum ForestNode {
    /// No parses.
    Empty,
    /// Exactly one parse: the empty tree `ε`.
    Eps,
    /// Exactly one parse: a token leaf.
    Leaf(Leaf),
    /// Exactly one parse: a constant tree (the `s` of `ε_s`).
    Const(Tree),
    /// The cross product of two forests (from `◦`).
    Pair(ForestId, ForestId),
    /// An ambiguity node: the union of the alternatives.
    Amb(Vec<ForestId>),
    /// A reduction mapped over a forest (from `↪`).
    Map(Reduce, ForestId),
    /// Placeholder while a cyclic region is mid-construction (see
    /// [`Forest::reserve`]); inert (no parses) if left undefined.
    Cycle,
}

/// Limits for enumerating trees out of a (possibly cyclic, possibly
/// exponentially ambiguous) forest.
///
/// Enumeration is *bounded*: it returns at most `max_trees` trees and
/// explores the forest graph to at most `max_depth` unrollings, so it always
/// terminates even on cyclic forests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumLimits {
    /// Maximum number of trees to produce.
    pub max_trees: usize,
    /// Maximum graph depth to unroll (guards against cyclic forests).
    pub max_depth: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_trees: 64, max_depth: 256 }
    }
}

/// Key under which a canonical constructor hash-conses a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConsKey {
    Empty,
    Eps,
    Leaf(Leaf),
    Const(Tree),
    Pair(u32, u32),
    Amb(Vec<u32>),
    Label(Arc<str>, usize, u32),
}

/// An arena of shared-forest nodes.
///
/// Two construction disciplines coexist:
///
/// * **Raw** ([`Forest::new`]): [`alloc`](Forest::alloc) /
///   [`set`](Forest::set) build nodes in place, placeholders and all — the
///   shape an engine needs while tying cyclic knots token by token (the PWD
///   core's arena works this way, and [`truncate`](Forest::truncate)
///   supports its O(1)-ish epoch reset).
/// * **Hash-consed** ([`Forest::hash_consed`]): the canonical constructors
///   ([`leaf`](Forest::leaf), [`pair`](Forest::pair), [`amb`](Forest::amb),
///   [`label`](Forest::label)) dedup structurally identical subforests to
///   one node, which is what makes packed forests canonical and
///   fingerprint-comparable across backends.
///
/// Every node carries a structural hash (computed bottom-up at
/// construction), so [`node_hash`](Forest::node_hash) of a root is a
/// fingerprint of the whole subgraph.
#[derive(Debug, Default, Clone)]
pub struct Forest {
    nodes: Vec<ForestNode>,
    hashes: Vec<u64>,
    cons: Option<HashMap<ConsKey, ForestId>>,
}

/// Domain-separation tags for structural hashing.
const H_EMPTY: u64 = 0x9e37_79b9_7f4a_7c15;
const H_EPS: u64 = 0xc2b2_ae3d_27d4_eb4f;
const H_CYCLE: u64 = 0x1656_67b1_9e37_79f9;

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64-style avalanche over the running combination.
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_of(value: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl Forest {
    /// An empty raw arena (no hash-consing; supports `set`/`truncate`).
    pub fn new() -> Forest {
        Forest::default()
    }

    /// An empty hash-consed arena: the canonical constructors dedup
    /// structurally identical nodes.
    pub fn hash_consed() -> Forest {
        Forest { nodes: Vec::new(), hashes: Vec::new(), cons: Some(HashMap::new()) }
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored at `id`.
    pub fn get(&self, id: ForestId) -> &ForestNode {
        &self.nodes[id.0 as usize]
    }

    /// The structural hash of the subgraph rooted at `id`.
    ///
    /// Maintained only for **hash-consed** arenas (raw arenas — the engine
    /// hot path — skip hashing entirely and report 0). Equal canonical
    /// subgraphs have equal hashes; for acyclic forests the hash is
    /// collision-resistant enough to serve as a fingerprint. Nodes involved
    /// in cycles hash their back-edges as an opaque marker, so the hash is
    /// deterministic but two *bisimilar* cyclic forests built with
    /// different knot placements may hash differently.
    pub fn node_hash(&self, id: ForestId) -> u64 {
        self.hashes[id.0 as usize]
    }

    /// Allocates a node verbatim (no consing).
    pub fn alloc(&mut self, node: ForestNode) -> ForestId {
        // Raw arenas never read hashes; skipping the computation keeps the
        // per-token engine path free of hashing (the PR 1 property).
        let h = if self.cons.is_some() { self.compute_hash(&node) } else { 0 };
        let id = ForestId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.hashes.push(h);
        id
    }

    /// Allocates a [`Cycle`](ForestNode::Cycle) placeholder to be filled in
    /// with [`set`](Forest::set) once the cyclic region is built.
    pub fn reserve(&mut self) -> ForestId {
        self.alloc(ForestNode::Cycle)
    }

    /// Overwrites a node in place (placeholder patching). The structural
    /// hash is recomputed from the new children (hash-consed arenas only).
    pub fn set(&mut self, id: ForestId, node: ForestNode) {
        let h = if self.cons.is_some() { self.compute_hash(&node) } else { 0 };
        self.nodes[id.0 as usize] = node;
        self.hashes[id.0 as usize] = h;
    }

    /// Truncates the arena to `len` nodes — the engine-reset path. Only
    /// meaningful for raw arenas; a hash-consed arena drops its stale cons
    /// entries too (O(consed nodes)).
    pub fn truncate(&mut self, len: usize) {
        self.nodes.truncate(len);
        self.hashes.truncate(len);
        if let Some(cons) = &mut self.cons {
            cons.retain(|_, id| (id.0 as usize) < len);
        }
    }

    // ------------------------------------------------------------------
    // Canonical (hash-consing) constructors
    // ------------------------------------------------------------------

    fn consed(&mut self, key: ConsKey, node: ForestNode) -> ForestId {
        if let Some(cons) = &self.cons {
            if let Some(&id) = cons.get(&key) {
                return id;
            }
        }
        let id = self.alloc(node);
        if let Some(cons) = &mut self.cons {
            cons.insert(key, id);
        }
        id
    }

    /// The canonical no-parses node.
    pub fn empty(&mut self) -> ForestId {
        self.consed(ConsKey::Empty, ForestNode::Empty)
    }

    /// The canonical `ε`-tree node.
    pub fn eps(&mut self) -> ForestId {
        self.consed(ConsKey::Eps, ForestNode::Eps)
    }

    /// A token leaf node (consed by kind + text).
    pub fn leaf(&mut self, kind: &str, text: &str) -> ForestId {
        let leaf = Leaf::new(kind, text);
        self.consed(ConsKey::Leaf(leaf.clone()), ForestNode::Leaf(leaf))
    }

    /// A constant-tree node.
    pub fn constant(&mut self, tree: Tree) -> ForestId {
        self.consed(ConsKey::Const(tree.clone()), ForestNode::Const(tree))
    }

    /// The cross product of two forests. Annihilates on an empty side.
    pub fn pair(&mut self, a: ForestId, b: ForestId) -> ForestId {
        if matches!(self.get(a), ForestNode::Empty) || matches!(self.get(b), ForestNode::Empty) {
            return self.empty();
        }
        self.consed(ConsKey::Pair(a.0, b.0), ForestNode::Pair(a, b))
    }

    /// An ambiguity node over `alts`, canonicalized: nested `Amb`s are
    /// spliced flat, empty alternatives dropped, duplicates removed, and the
    /// survivors ordered by structural hash — so the same *set* of
    /// alternatives always conses to the same node. Zero alternatives
    /// collapse to [`empty`](Forest::empty), one to the alternative itself.
    pub fn amb(&mut self, alts: Vec<ForestId>) -> ForestId {
        let mut flat: Vec<ForestId> = Vec::with_capacity(alts.len());
        for a in alts {
            match self.get(a) {
                ForestNode::Empty => {}
                ForestNode::Amb(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(a),
            }
        }
        flat.sort_by_key(|&a| (self.node_hash(a), a.0));
        flat.dedup();
        match flat.len() {
            0 => self.empty(),
            1 => flat[0],
            _ => {
                self.consed(ConsKey::Amb(flat.iter().map(|a| a.0).collect()), ForestNode::Amb(flat))
            }
        }
    }

    /// A production-label node: `Map(Label(name, arity), spine)`, consed by
    /// `(name, arity, spine)`. Annihilates on an empty spine forest.
    pub fn label(&mut self, name: &str, arity: usize, spine: ForestId) -> ForestId {
        if matches!(self.get(spine), ForestNode::Empty) {
            return self.empty();
        }
        let key = ConsKey::Label(Arc::from(name), arity, spine.0);
        self.consed(key, ForestNode::Map(Reduce::label(name, arity), spine))
    }

    /// A generic reduction node (not consed — arbitrary reductions have no
    /// structural identity).
    pub fn map(&mut self, red: Reduce, inner: ForestId) -> ForestId {
        self.alloc(ForestNode::Map(red, inner))
    }

    /// The right-nested pair spine of `parts` (`ε` for zero components) —
    /// the canonical body shape a production label flattens.
    pub fn right_spine(&mut self, parts: &[ForestId]) -> ForestId {
        let mut iter = parts.iter().rev();
        let Some(&last) = iter.next() else { return self.eps() };
        let mut acc = last;
        for &x in iter {
            acc = self.pair(x, acc);
        }
        acc
    }

    /// Does the subgraph under `root` contain a [`ForestNode::Cycle`]
    /// node (an unfinished knot, or the empty remnant of one)?
    pub(crate) fn contains_cycle_node(&self, root: ForestId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut succ = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            if matches!(self.get(id), ForestNode::Cycle) {
                return true;
            }
            succ.clear();
            self.successors(id, &mut succ);
            stack.extend(succ.iter().copied());
        }
        false
    }

    // ------------------------------------------------------------------
    // Structural hashing
    // ------------------------------------------------------------------

    fn compute_hash(&self, node: &ForestNode) -> u64 {
        match node {
            ForestNode::Empty => H_EMPTY,
            ForestNode::Eps => H_EPS,
            ForestNode::Cycle => H_CYCLE,
            ForestNode::Leaf(l) => mix(1, hash_of(l)),
            ForestNode::Const(t) => mix(2, hash_of(t)),
            ForestNode::Pair(a, b) => {
                mix(3, mix(self.hashes[a.0 as usize], self.hashes[b.0 as usize]))
            }
            ForestNode::Amb(alts) => {
                let mut h = 4u64;
                for a in alts {
                    h = mix(h, self.hashes[a.0 as usize]);
                }
                mix(5, h)
            }
            ForestNode::Map(red, x) => mix(6, mix(self.red_hash(red), self.hashes[x.0 as usize])),
        }
    }

    fn red_hash(&self, red: &Reduce) -> u64 {
        match &*red.0 {
            ReduceKind::Compose(g, h) => mix(10, mix(self.red_hash(g), self.red_hash(h))),
            ReduceKind::PairLeft(s) => mix(11, self.hashes[s.0 as usize]),
            ReduceKind::PairRight(s) => mix(12, self.hashes[s.0 as usize]),
            ReduceKind::Reassoc => 13,
            ReduceKind::MapFirst(g) => mix(14, self.red_hash(g)),
            ReduceKind::MapSecond(g) => mix(15, self.red_hash(g)),
            ReduceKind::Label(name, arity) => mix(16, mix(hash_of(name), *arity as u64)),
            ReduceKind::Func(name, _) => mix(17, hash_of(name)),
        }
    }

    // ------------------------------------------------------------------
    // Reachability / shape statistics
    // ------------------------------------------------------------------

    /// Every node id referenced by `node` (children plus forests embedded
    /// in reductions).
    pub(crate) fn successors(&self, id: ForestId, out: &mut Vec<ForestId>) {
        match self.get(id) {
            ForestNode::Empty
            | ForestNode::Eps
            | ForestNode::Leaf(_)
            | ForestNode::Const(_)
            | ForestNode::Cycle => {}
            ForestNode::Pair(a, b) => out.extend([*a, *b]),
            ForestNode::Amb(alts) => out.extend(alts.iter().copied()),
            ForestNode::Map(red, x) => {
                out.push(*x);
                red_refs(red, out);
            }
        }
    }

    /// Number of nodes reachable from `root` (reduction-embedded forests
    /// included).
    pub fn reachable_count(&self, root: ForestId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut succ = Vec::new();
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            count += 1;
            succ.clear();
            self.successors(id, &mut succ);
            stack.extend(succ.iter().copied());
        }
        count
    }

    /// Longest acyclic path from `root` (in edges); back-edges of cyclic
    /// forests contribute zero. Iterative.
    pub fn depth(&self, root: ForestId) -> usize {
        // memo: None = unvisited; Some(None) = on stack; Some(Some(d)) = done.
        let mut memo: Vec<Option<Option<usize>>> = vec![None; self.nodes.len()];
        let mut stack: Vec<(ForestId, bool)> = vec![(root, false)];
        let mut succ = Vec::new();
        while let Some((id, post)) = stack.pop() {
            let i = id.0 as usize;
            if post {
                succ.clear();
                self.successors(id, &mut succ);
                let d = succ
                    .iter()
                    .map(|s| match memo[s.0 as usize] {
                        Some(Some(d)) => d + 1,
                        _ => 0, // back-edge (still on stack) or unvisited via cycle
                    })
                    .max()
                    .unwrap_or(0);
                memo[i] = Some(Some(d));
            } else {
                match memo[i] {
                    Some(Some(_)) => continue,
                    Some(None) => continue, // already on stack (cycle)
                    None => {}
                }
                memo[i] = Some(None);
                stack.push((id, true));
                succ.clear();
                self.successors(id, &mut succ);
                for s in &succ {
                    if memo[s.0 as usize].is_none() {
                        stack.push((*s, false));
                    }
                }
            }
        }
        memo[root.0 as usize].flatten().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Enumeration
    // ------------------------------------------------------------------

    /// Enumerates up to `limits.max_trees` trees from `f`, exploring at
    /// most `limits.max_depth` graph unrollings (so cyclic forests
    /// terminate).
    pub fn trees(&self, f: ForestId, limits: EnumLimits) -> Vec<Tree> {
        self.enumerate(f, limits.max_depth, limits.max_trees)
    }

    fn enumerate(&self, f: ForestId, depth: usize, cap: usize) -> Vec<Tree> {
        if depth == 0 || cap == 0 {
            return Vec::new();
        }
        match self.get(f) {
            ForestNode::Empty | ForestNode::Cycle => Vec::new(),
            ForestNode::Eps => vec![Tree::Empty],
            ForestNode::Leaf(l) => vec![Tree::Leaf(l.clone())],
            ForestNode::Const(t) => vec![t.clone()],
            ForestNode::Pair(a, b) => {
                let left = self.enumerate(*a, depth - 1, cap);
                if left.is_empty() {
                    return Vec::new();
                }
                let right = self.enumerate(*b, depth - 1, cap);
                let mut out = Vec::new();
                'outer: for l in &left {
                    for r in &right {
                        out.push(Tree::pair(l.clone(), r.clone()));
                        if out.len() >= cap {
                            break 'outer;
                        }
                    }
                }
                out
            }
            ForestNode::Amb(alts) => {
                let mut out = Vec::new();
                for a in alts {
                    let remaining = cap - out.len();
                    if remaining == 0 {
                        break;
                    }
                    out.extend(self.enumerate(*a, depth - 1, remaining));
                }
                out
            }
            ForestNode::Map(red, inner) => {
                let mut out = Vec::new();
                for t in self.enumerate(*inner, depth - 1, cap) {
                    self.apply(red, t, depth - 1, &mut out);
                    if out.len() >= cap {
                        out.truncate(cap);
                        break;
                    }
                }
                out
            }
        }
    }

    /// Applies a reduction to a tree, producing zero or more trees
    /// (reductions that pair with a null-parse *forest* are one-to-many).
    fn apply(&self, red: &Reduce, t: Tree, depth: usize, out: &mut Vec<Tree>) {
        match &*red.0 {
            ReduceKind::Compose(g, h) => {
                let mut mid = Vec::new();
                self.apply(h, t, depth, &mut mid);
                for m in mid {
                    self.apply(g, m, depth, out);
                }
            }
            ReduceKind::PairLeft(s) => {
                for l in self.enumerate(*s, depth, usize::MAX) {
                    out.push(Tree::pair(l, t.clone()));
                }
            }
            ReduceKind::PairRight(s) => {
                for r in self.enumerate(*s, depth, usize::MAX) {
                    out.push(Tree::pair(t.clone(), r));
                }
            }
            ReduceKind::Reassoc => match t {
                Tree::Pair(t1, rest) => match &*rest {
                    Tree::Pair(t2, t3) => {
                        out.push(Tree::Pair(Arc::new(Tree::Pair(t1, t2.clone())), t3.clone()))
                    }
                    _ => out.push(Tree::Pair(t1, rest)),
                },
                other => out.push(other),
            },
            ReduceKind::MapFirst(g) => match t {
                Tree::Pair(a, b) => {
                    let mut firsts = Vec::new();
                    self.apply(g, (*a).clone(), depth, &mut firsts);
                    for a2 in firsts {
                        out.push(Tree::Pair(Arc::new(a2), b.clone()));
                    }
                }
                other => out.push(other),
            },
            ReduceKind::MapSecond(g) => match t {
                Tree::Pair(a, b) => {
                    let mut seconds = Vec::new();
                    self.apply(g, (*b).clone(), depth, &mut seconds);
                    for b2 in seconds {
                        out.push(Tree::Pair(a.clone(), Arc::new(b2)));
                    }
                }
                other => out.push(other),
            },
            ReduceKind::Label(name, arity) => out.push(Reduce::flatten(t, *arity, name)),
            ReduceKind::Func(_, f) => out.push(f(t)),
        }
    }
}

/// Forest ids referenced from inside a reduction.
pub(crate) fn red_refs(red: &Reduce, out: &mut Vec<ForestId>) {
    match &*red.0 {
        ReduceKind::Compose(g, h) => {
            red_refs(g, out);
            red_refs(h, out);
        }
        ReduceKind::PairLeft(s) | ReduceKind::PairRight(s) => out.push(*s),
        ReduceKind::MapFirst(g) | ReduceKind::MapSecond(g) => red_refs(g, out),
        ReduceKind::Reassoc | ReduceKind::Label(..) | ReduceKind::Func(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_leaf_and_pair() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(Leaf::new("a", "a")));
        let b = fs.alloc(ForestNode::Leaf(Leaf::new("b", "b")));
        let p = fs.alloc(ForestNode::Pair(a, b));
        let ts = fs.trees(p, EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(a . b)");
        assert_eq!(ts[0].leaves(), 2);
    }

    #[test]
    fn ambiguity_node_unions() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(Leaf::new("a", "a")));
        let b = fs.alloc(ForestNode::Leaf(Leaf::new("b", "b")));
        let amb = fs.alloc(ForestNode::Amb(vec![a, b]));
        let ts = fs.trees(amb, EnumLimits::default());
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn map_applies_reduction() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(Leaf::new("a", "a")));
        let red = Reduce::func("wrap", |t| Tree::node("w", vec![t]));
        let m = fs.alloc(ForestNode::Map(red, a));
        let ts = fs.trees(m, EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(w a)");
    }

    #[test]
    fn pair_left_reduction_is_one_to_many() {
        let mut fs = Forest::new();
        let s1 = fs.alloc(ForestNode::Leaf(Leaf::new("x", "x")));
        let s2 = fs.alloc(ForestNode::Leaf(Leaf::new("y", "y")));
        let s = fs.alloc(ForestNode::Amb(vec![s1, s2]));
        let u = fs.alloc(ForestNode::Leaf(Leaf::new("u", "u")));
        let m = fs.alloc(ForestNode::Map(Reduce::pair_left(s), u));
        let mut strs: Vec<String> =
            fs.trees(m, EnumLimits::default()).iter().map(|t| t.to_string()).collect();
        strs.sort();
        assert_eq!(strs, ["(x . u)", "(y . u)"]);
    }

    #[test]
    fn reassoc_rotates_pairs() {
        let mut fs = Forest::new();
        let a = fs.alloc(ForestNode::Leaf(Leaf::new("n", "1")));
        let b = fs.alloc(ForestNode::Leaf(Leaf::new("n", "2")));
        let c = fs.alloc(ForestNode::Leaf(Leaf::new("n", "3")));
        let bc = fs.alloc(ForestNode::Pair(b, c));
        let abc = fs.alloc(ForestNode::Pair(a, bc));
        let m = fs.alloc(ForestNode::Map(Reduce::reassoc(), abc));
        let ts = fs.trees(m, EnumLimits::default());
        assert_eq!(ts[0].to_string(), "((1 . 2) . 3)");
    }

    #[test]
    fn label_flattens_spines() {
        let mut fs = Forest::hash_consed();
        let a = fs.leaf("a", "a");
        let b = fs.leaf("b", "b");
        let spine = fs.pair(a, b);
        let n = fs.label("S", 2, spine);
        let ts = fs.trees(n, EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(S a b)");
    }

    #[test]
    fn cyclic_forest_enumeration_terminates() {
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(Leaf::new("a", "a")));
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, leaf));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        // Infinitely many trees: a, (a . a), ((a . a) . a), …
        let ts = fs.trees(amb, EnumLimits { max_trees: 5, max_depth: 64 });
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn consing_dedups_structurally_identical_nodes() {
        let mut fs = Forest::hash_consed();
        let a1 = fs.leaf("a", "a");
        let a2 = fs.leaf("a", "a");
        assert_eq!(a1, a2);
        let p1 = fs.pair(a1, a2);
        let p2 = fs.pair(a2, a1);
        assert_eq!(p1, p2);
        let m1 = fs.amb(vec![p1, a1]);
        let m2 = fs.amb(vec![a2, p2, p1]);
        assert_eq!(m1, m2, "amb is order- and duplicate-insensitive");
        let l1 = fs.label("S", 2, p1);
        let l2 = fs.label("S", 2, p2);
        assert_eq!(l1, l2);
        assert_ne!(fs.label("S", 1, p1), l1, "arity is part of the identity");
    }

    #[test]
    fn amb_collapses_trivial_cases() {
        let mut fs = Forest::hash_consed();
        let e = fs.empty();
        let a = fs.leaf("a", "a");
        assert_eq!(fs.amb(vec![]), e);
        assert_eq!(fs.amb(vec![e]), e);
        assert_eq!(fs.amb(vec![a, e]), a);
        let b = fs.leaf("b", "b");
        let u1 = fs.amb(vec![a, b]);
        let nested = fs.amb(vec![u1, a]);
        assert_eq!(nested, u1, "splicing + dedup keeps the flat set");
        assert_eq!(fs.pair(a, e), e, "pair annihilates on empty");
    }

    #[test]
    fn hashes_reflect_structure_not_ids() {
        let mut f1 = Forest::hash_consed();
        let mut f2 = Forest::hash_consed();
        // Same structure built in different orders → same root hash.
        let (a1, b1) = (f1.leaf("a", "a"), f1.leaf("b", "b"));
        let (b2, a2) = (f2.leaf("b", "b"), f2.leaf("a", "a"));
        let p1 = f1.pair(a1, b1);
        let p2 = f2.pair(a2, b2);
        assert_eq!(f1.node_hash(p1), f2.node_hash(p2));
        let u1 = f1.amb(vec![p1, a1]);
        let u2 = f2.amb(vec![a2, p2]);
        assert_eq!(f1.node_hash(u1), f2.node_hash(u2), "amb order canonicalized by hash");
        assert_ne!(f1.node_hash(p1), f1.node_hash(a1));
    }

    #[test]
    fn depth_and_reachable_count() {
        let mut fs = Forest::hash_consed();
        let a = fs.leaf("a", "a");
        let p = fs.pair(a, a);
        let q = fs.pair(p, a);
        assert_eq!(fs.depth(a), 0);
        assert_eq!(fs.depth(q), 2);
        assert_eq!(fs.reachable_count(q), 3, "sharing counted once");
        // Cycles terminate.
        let ph = fs.reserve();
        let r = fs.alloc(ForestNode::Pair(ph, a));
        fs.set(ph, ForestNode::Amb(vec![a, r]));
        assert!(fs.depth(ph) <= 2);
        assert_eq!(fs.reachable_count(ph), 3);
    }
}
