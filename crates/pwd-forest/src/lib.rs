//! Backend-agnostic **shared parse forests** (SPPF).
//!
//! The paper's cubic bound (Lemma 3) holds under the assumption that parsers
//! return *ambiguity-node forest graphs* — the same representation under
//! which Earley and GLR are cubic. This crate is that representation, lifted
//! out of any single parser: a [`Forest`] is an arena of nodes
//! (`Leaf`/`Eps`/`Const`/`Pair`/`Amb`/`Map`/`Cycle`) that every backend —
//! the PWD engine, an Earley chart, a GLR graph-structured stack — can
//! build into, so forests from different parser families can be *compared*
//! (by canonical fingerprint), *counted* (exactly, without enumerating), and
//! *enumerated* (bounded) through one API.
//!
//! The key operations:
//!
//! * **Hash-consed packing** — the canonical constructors ([`Forest::pair`],
//!   [`Forest::amb`], [`Forest::label`], …) dedup structurally identical
//!   subforests to one node, so a forest's size tracks the *shared* graph,
//!   not the (possibly exponential) tree set it denotes.
//! * **Exact counting** — [`Forest::count`] returns a [`TreeCount`]: an
//!   exact `u128`, an explicit [`TreeCount::Overflow`], or
//!   [`TreeCount::Infinite`] (detected via SCC analysis of the productive
//!   subgraph, never by diverging).
//! * **Bounded enumeration** — [`Forest::trees`] materializes at most
//!   `max_trees` concrete [`Tree`]s, terminating even on cyclic forests.
//! * **Canonical equality** — [`Forest::extract_canonical`] normalizes any
//!   forest (including PWD's reduction-laden ones) into a canonical packed
//!   form whose [`ParseForest::fingerprint`] two backends can compare
//!   without enumerating a single tree.
//!
//! # Example: Catalan-sized ambiguity, polynomial-size forest
//!
//! The grammar `S → S S | a` assigns the Catalan number `C(n-1)` of parse
//! trees to `aⁿ`. Build its packed forest by spans, the way a chart parser
//! would — `node(i,j)` is a leaf for width 1, else an ambiguity node over
//! the split points — and the forest stays quadratic while the count
//! explodes:
//!
//! ```
//! use pwd_forest::{EnumLimits, Forest, ForestId, TreeCount};
//! use std::collections::HashMap;
//!
//! let n = 6;
//! let mut f = Forest::hash_consed();
//! let leaf = f.leaf("a", "a");
//! let mut span: HashMap<(usize, usize), ForestId> = HashMap::new();
//! for width in 1..=n {
//!     for i in 0..=(n - width) {
//!         let j = i + width;
//!         let id = if width == 1 {
//!             leaf
//!         } else {
//!             let alts: Vec<ForestId> =
//!                 (i + 1..j).map(|k| f.pair(span[&(i, k)], span[&(k, j)])).collect();
//!             f.amb(alts)
//!         };
//!         span.insert((i, j), id);
//!     }
//! }
//! let root = span[&(0, n)];
//! assert_eq!(f.count(root), TreeCount::Finite(42)); // C₅ = 42, never enumerated
//! assert_eq!(f.trees(root, EnumLimits::default()).len(), 42);
//! ```
//!
//! (Real builders are the parser backends — `pwd_grammar::sppf` constructs
//! this shape from Earley charts and GLR reduction facts, and `pwd_core`
//! normalizes its derivative forests into it via
//! [`Forest::extract_canonical`].)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod count;
mod dot;
mod forest;
mod knot;
mod reduce;
mod tree;

pub use canon::{CanonError, ForestSummary, ParseForest};
pub use count::TreeCount;
pub use forest::{EnumLimits, Forest, ForestId, ForestNode};
pub use knot::{Knot, KnotTable};
pub use reduce::Reduce;
pub use tree::{Leaf, Tree};

// The serving layers share forests across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Forest>();
    assert_send_sync::<Tree>();
    assert_send_sync::<Reduce>();
    assert_send_sync::<ParseForest>();
};
