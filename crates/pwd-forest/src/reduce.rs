//! Reduction functions (`L ↪ f`) mapped over forests.
//!
//! The paper's compaction rules insert specific, structured reductions —
//! pairing with a known tree, reassociation, mapping over one component of a
//! pair, and composition (§4.3). Representing those as enum variants instead
//! of opaque closures keeps compaction rewrites inspectable, testable, and —
//! crucially for the shared-forest layer — *symbolically evaluable*: the
//! canonicalizer can push a structured reduction through a forest without
//! enumerating trees. Arbitrary user semantic actions are still supported
//! via [`Reduce::func`] (canonicalized by bounded enumeration).

use crate::forest::ForestId;
use crate::tree::Tree;
use std::fmt;
use std::sync::Arc;

/// A reduction function from trees to trees, applied by `L ↪ f` nodes.
///
/// Reductions are cheap to clone (`Arc` internally) and thread-safe: a
/// compiled grammar holding reductions can be shared across threads.
#[derive(Clone)]
pub struct Reduce(pub(crate) Arc<ReduceKind>);

/// The structural variants of a reduction.
pub(crate) enum ReduceKind {
    /// `g ∘ f`: apply `f` first, then `g`.
    Compose(Reduce, Reduce),
    /// `u ↦ (s, u)` for each `s` in the referenced null-parse forest.
    ///
    /// Introduced by the compaction rule `ε_s ◦ p ⇒ p ↪ λu.(s, u)`.
    PairLeft(ForestId),
    /// `u ↦ (u, s)` for each `s` in the referenced null-parse forest.
    ///
    /// Introduced by the pre-parse rule `p ◦ ε_s ⇒ p ↪ λu.(u, s)` (§4.3.1).
    PairRight(ForestId),
    /// `(t1, (t2, t3)) ↦ ((t1, t2), t3)`.
    ///
    /// Introduced by the associativity canonicalization rule (§4.3.2).
    Reassoc,
    /// `(t1, t2) ↦ (f t1, t2)` — floats a reduction above a sequence (§4.3.2).
    MapFirst(Reduce),
    /// `(t1, t2) ↦ (t1, f t2)` — right-child version, pre-parse only (§4.3.2).
    MapSecond(Reduce),
    /// The structured production label of a compiled CFG: flattens the
    /// right-nested pair spine of an arity-`k` production body into a
    /// labeled AST node `(N t₁ … t_k)`. Unlike [`ReduceKind::Func`] this is
    /// symbolically evaluable, which is what makes forests from different
    /// backends canonically comparable.
    Label(Arc<str>, usize),
    /// An arbitrary user function, tagged with a display name.
    Func(Arc<str>, Arc<dyn Fn(Tree) -> Tree + Send + Sync>),
}

impl Reduce {
    /// Composition `self ∘ other`: applies `other` first, then `self`.
    ///
    /// Used by the compaction rule `(p ↪ f) ↪ g ⇒ p ↪ (g ∘ f)`.
    pub fn compose(self, other: Reduce) -> Reduce {
        Reduce(Arc::new(ReduceKind::Compose(self, other)))
    }

    /// The reassociation reduction `(t1, (t2, t3)) ↦ ((t1, t2), t3)`.
    pub fn reassoc() -> Reduce {
        Reduce(Arc::new(ReduceKind::Reassoc))
    }

    /// Maps `f` over the first component of a pair.
    pub fn map_first(f: Reduce) -> Reduce {
        Reduce(Arc::new(ReduceKind::MapFirst(f)))
    }

    /// Maps `f` over the second component of a pair.
    pub fn map_second(f: Reduce) -> Reduce {
        Reduce(Arc::new(ReduceKind::MapSecond(f)))
    }

    /// `u ↦ (s, u)` for each tree `s` of the referenced forest (which must
    /// live in the same arena the reduction is applied in).
    pub fn pair_left(s: ForestId) -> Reduce {
        Reduce(Arc::new(ReduceKind::PairLeft(s)))
    }

    /// `u ↦ (u, s)` for each tree `s` of the referenced forest.
    pub fn pair_right(s: ForestId) -> Reduce {
        Reduce(Arc::new(ReduceKind::PairRight(s)))
    }

    /// The structured production label `(name, arity)`: flattens an
    /// arity-deep right-nested pair spine into `(name t₁ … t_arity)`.
    ///
    /// A spine that bottoms out early (a non-pair where a pair was
    /// expected) contributes its remainder as the final child, mirroring
    /// how compiled grammars flatten partially collapsed spines.
    pub fn label(name: &str, arity: usize) -> Reduce {
        Reduce(Arc::new(ReduceKind::Label(Arc::from(name), arity)))
    }

    /// An arbitrary user reduction with a display `name`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_forest::{Reduce, Tree};
    /// let wrap = Reduce::func("wrap", |t| Tree::node("w", vec![t]));
    /// assert_eq!(format!("{wrap:?}"), "wrap");
    /// ```
    pub fn func(name: &str, f: impl Fn(Tree) -> Tree + Send + Sync + 'static) -> Reduce {
        Reduce(Arc::new(ReduceKind::Func(Arc::from(name), Arc::new(f))))
    }

    /// Returns `true` if the two reductions are the same object (pointer
    /// equality); used by tests and graph printing, not by compaction.
    pub fn same(&self, other: &Reduce) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Applies the label-flattening semantics to one tree: pops up to
    /// `arity - 1` pairs off the right spine and wraps the components.
    pub(crate) fn flatten(t: Tree, arity: usize, name: &str) -> Tree {
        if arity == 0 {
            return Tree::node(name, vec![]);
        }
        let mut kids = Vec::with_capacity(arity);
        let mut cur = t;
        for _ in 0..arity.saturating_sub(1) {
            match cur {
                Tree::Pair(a, b) => {
                    kids.push((*a).clone());
                    cur = (*b).clone();
                }
                other => {
                    cur = other;
                    break;
                }
            }
        }
        kids.push(cur);
        Tree::node(name, kids)
    }
}

impl fmt::Debug for Reduce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            ReduceKind::Compose(g, h) => write!(f, "({g:?} ∘ {h:?})"),
            ReduceKind::PairLeft(s) => write!(f, "pair-left({s:?})"),
            ReduceKind::PairRight(s) => write!(f, "pair-right({s:?})"),
            ReduceKind::Reassoc => write!(f, "reassoc"),
            ReduceKind::MapFirst(g) => write!(f, "map-first({g:?})"),
            ReduceKind::MapSecond(g) => write!(f, "map-second({g:?})"),
            ReduceKind::Label(name, arity) => write!(f, "{name}#{arity}"),
            ReduceKind::Func(name, _) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        let f = Reduce::func("f", |t| t);
        let g = Reduce::func("g", |t| t);
        let c = g.clone().compose(f.clone());
        assert_eq!(format!("{c:?}"), "(g ∘ f)");
        assert_eq!(format!("{:?}", Reduce::reassoc()), "reassoc");
        assert_eq!(format!("{:?}", Reduce::map_first(f)), "map-first(f)");
        assert_eq!(format!("{:?}", Reduce::label("E", 3)), "E#3");
    }

    #[test]
    fn same_is_pointer_equality() {
        let f = Reduce::func("f", |t| t);
        let f2 = f.clone();
        let g = Reduce::func("f", |t| t);
        assert!(f.same(&f2));
        assert!(!f.same(&g));
    }

    #[test]
    fn flatten_pops_the_spine() {
        let t = Tree::pair(
            Tree::leaf("a", "1"),
            Tree::pair(Tree::leaf("b", "2"), Tree::leaf("c", "3")),
        );
        assert_eq!(Reduce::flatten(t.clone(), 3, "N").to_string(), "(N 1 2 3)");
        assert_eq!(Reduce::flatten(t, 2, "N").to_string(), "(N 1 (2 . 3))");
        assert_eq!(Reduce::flatten(Tree::Empty, 0, "N").to_string(), "(N)");
        assert_eq!(Reduce::flatten(Tree::Empty, 1, "N").to_string(), "(N ε)");
    }
}
