//! Exact tree counting over (possibly cyclic) shared forests.
//!
//! Counting never enumerates: it is a memoized traversal of the forest DAG
//! with `u128` arithmetic, an explicit [`TreeCount::Overflow`] outcome when
//! even 128 bits saturate (exponentially ambiguous grammars reach 2¹²⁸
//! parses within a few hundred tokens), and [`TreeCount::Infinite`] when
//! the forest has a *productive* cycle — detected by SCC analysis of the
//! live-edge subgraph, so a cycle that cannot contribute a tree (e.g. one
//! strangled by an empty sibling) still counts exactly.

use crate::forest::{red_refs, Forest, ForestId, ForestNode};
use crate::reduce::{Reduce, ReduceKind};

/// The number of distinct trees a forest denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeCount {
    /// An exact count (0 = no parses).
    Finite(u128),
    /// More than `u128::MAX` trees (but finitely many).
    Overflow,
    /// Infinitely many trees (the forest has a productive cycle).
    Infinite,
}

impl TreeCount {
    /// Is this exactly zero trees?
    pub fn is_zero(&self) -> bool {
        matches!(self, TreeCount::Finite(0))
    }

    /// The exact count, if finite and representable.
    pub fn as_finite(&self) -> Option<u128> {
        match self {
            TreeCount::Finite(n) => Some(*n),
            _ => None,
        }
    }
}

/// Saturating-aware sum: `Infinite` dominates, then `Overflow`.
impl std::ops::Add for TreeCount {
    type Output = TreeCount;

    fn add(self, other: TreeCount) -> TreeCount {
        use TreeCount::*;
        match (self, other) {
            (Infinite, _) | (_, Infinite) => Infinite,
            (Overflow, _) | (_, Overflow) => Overflow,
            (Finite(a), Finite(b)) => a.checked_add(b).map_or(Overflow, Finite),
        }
    }
}

/// Saturating-aware product. Zero annihilates everything — including
/// `Infinite`: a pair with an empty side denotes no trees however ambiguous
/// the other side is.
impl std::ops::Mul for TreeCount {
    type Output = TreeCount;

    fn mul(self, other: TreeCount) -> TreeCount {
        use TreeCount::*;
        match (self, other) {
            (Finite(0), _) | (_, Finite(0)) => Finite(0),
            (Infinite, _) | (_, Infinite) => Infinite,
            (Overflow, _) | (_, Overflow) => Overflow,
            (Finite(a), Finite(b)) => a.checked_mul(b).map_or(Overflow, Finite),
        }
    }
}

impl std::fmt::Display for TreeCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeCount::Finite(n) => write!(f, "{n}"),
            TreeCount::Overflow => write!(f, ">u128"),
            TreeCount::Infinite => write!(f, "∞"),
        }
    }
}

/// The per-count analysis state, shared by `has_tree` and `count`.
struct Analysis {
    /// Reachable node ids (reduction-embedded forests included).
    reachable: Vec<ForestId>,
    /// `has[v]`: does node `v` denote at least one (finite) tree?
    has: Vec<bool>,
}

impl Forest {
    /// Does the forest rooted at `f` contain at least one (finite) tree?
    ///
    /// Computed as a least fixed point, so a bare cycle with no grounded
    /// alternative has no tree.
    pub fn has_tree(&self, f: ForestId) -> bool {
        self.analyze(f).has[f.index()]
    }

    /// Counts the trees of the forest rooted at `f` — exactly, without
    /// enumerating any.
    pub fn count(&self, f: ForestId) -> TreeCount {
        let analysis = self.analyze(f);
        // Fast path: a single post-order pass that detects back-edges as it
        // goes. Acyclic forests (every finite-ambiguity parse) never pay
        // for SCC analysis; a detected cycle falls back to the full
        // Tarjan-based classification.
        match self.try_count_acyclic(f, &analysis) {
            Some(count) => count,
            None => {
                let infinite = self.productive_cycle_nodes(&analysis);
                self.count_with(f, &analysis, &infinite)
            }
        }
    }

    /// One-pass memoized post-order count, bailing out (`None`) on the
    /// first live back-edge (a cycle, where infinite-ambiguity
    /// classification is needed).
    fn try_count_acyclic(&self, root: ForestId, analysis: &Analysis) -> Option<TreeCount> {
        const UNSEEN: u8 = 0;
        const OPEN: u8 = 1;
        const DONE: u8 = 2;
        let mut state = vec![UNSEEN; self.len()];
        let mut memo: Vec<Option<TreeCount>> = vec![None; self.len()];
        let mut stack: Vec<(ForestId, bool)> = vec![(root, false)];
        let mut succ = Vec::new();
        while let Some((v, post)) = stack.pop() {
            let i = v.index();
            if !post {
                if state[i] == DONE {
                    continue;
                }
                if state[i] == OPEN {
                    return None; // live back-edge: cyclic
                }
                if !analysis.has[i] {
                    memo[i] = Some(TreeCount::Finite(0));
                    state[i] = DONE;
                    continue;
                }
                state[i] = OPEN;
                stack.push((v, true));
                succ.clear();
                self.live_successors(v, &analysis.has, &mut succ);
                for s in &succ {
                    match state[s.index()] {
                        DONE => {}
                        OPEN => return None,
                        _ => stack.push((*s, false)),
                    }
                }
            } else {
                memo[i] = Some(self.count_eval(v, &memo, &analysis.has));
                state[i] = DONE;
            }
        }
        memo[root.index()].or(Some(TreeCount::Finite(0)))
    }

    /// The `has_tree` bit for every node reachable from `root` (crate
    /// hook for the canonicalizer's productivity pruning).
    pub(crate) fn has_tree_vector(&self, root: ForestId) -> Vec<bool> {
        self.analyze(root).has
    }

    /// Reachability + the `has_tree` least fixed point (worklist over
    /// reverse dependencies; each node re-evaluates once per in-edge flip).
    /// The reverse edges live in one flat CSR array — no per-node
    /// allocation on this path.
    fn analyze(&self, root: ForestId) -> Analysis {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut reachable = Vec::new();
        let mut stack = vec![root];
        let mut succ = Vec::new();
        // (child, parent) edge list, compacted into CSR below.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            reachable.push(id);
            succ.clear();
            self.successors(id, &mut succ);
            for s in &succ {
                edges.push((s.0, id.0));
                if !seen[s.index()] {
                    stack.push(*s);
                }
            }
        }
        // CSR: preds of node c are pred_flat[pred_start[c]..pred_start[c+1]].
        let mut pred_start = vec![0u32; n + 1];
        for &(c, _) in &edges {
            pred_start[c as usize + 1] += 1;
        }
        for i in 0..n {
            pred_start[i + 1] += pred_start[i];
        }
        let mut pred_flat = vec![0u32; edges.len()];
        let mut cursor = pred_start.clone();
        for &(c, p) in &edges {
            pred_flat[cursor[c as usize] as usize] = p;
            cursor[c as usize] += 1;
        }
        let mut has = vec![false; n];
        // Seed: ground nodes, then propagate flips through predecessors.
        let mut work: Vec<ForestId> = reachable
            .iter()
            .copied()
            .filter(|v| {
                matches!(self.get(*v), ForestNode::Eps | ForestNode::Leaf(_) | ForestNode::Const(_))
            })
            .collect();
        for v in &work {
            has[v.index()] = true;
        }
        while let Some(v) = work.pop() {
            let (a, b) = (pred_start[v.index()] as usize, pred_start[v.index() + 1] as usize);
            for &pred in &pred_flat[a..b] {
                let p = ForestId(pred);
                if !has[p.index()] && self.has_eval(p, &has) {
                    has[p.index()] = true;
                    work.push(p);
                }
            }
        }
        Analysis { reachable, has }
    }

    fn has_eval(&self, v: ForestId, has: &[bool]) -> bool {
        match self.get(v) {
            ForestNode::Empty | ForestNode::Cycle => false,
            ForestNode::Eps | ForestNode::Leaf(_) | ForestNode::Const(_) => true,
            ForestNode::Pair(a, b) => has[a.index()] && has[b.index()],
            ForestNode::Amb(alts) => alts.iter().any(|a| has[a.index()]),
            ForestNode::Map(red, x) => has[x.index()] && self.mult_positive(red, has),
        }
    }

    /// Does the reduction produce at least one output per input tree?
    fn mult_positive(&self, red: &Reduce, has: &[bool]) -> bool {
        match &*red.0 {
            ReduceKind::Compose(g, h) => self.mult_positive(g, has) && self.mult_positive(h, has),
            ReduceKind::PairLeft(s) | ReduceKind::PairRight(s) => has[s.index()],
            ReduceKind::MapFirst(g) | ReduceKind::MapSecond(g) => self.mult_positive(g, has),
            ReduceKind::Reassoc | ReduceKind::Label(..) | ReduceKind::Func(..) => true,
        }
    }

    /// Edges along which tree *multiplicity* flows: a cycle of live edges
    /// through a productive node pumps unboundedly many distinct trees.
    fn live_successors(&self, v: ForestId, has: &[bool], out: &mut Vec<ForestId>) {
        match self.get(v) {
            ForestNode::Empty
            | ForestNode::Eps
            | ForestNode::Leaf(_)
            | ForestNode::Const(_)
            | ForestNode::Cycle => {}
            ForestNode::Pair(a, b) => {
                if has[a.index()] && has[b.index()] {
                    out.extend([*a, *b]);
                }
            }
            ForestNode::Amb(alts) => out.extend(alts.iter().copied().filter(|a| has[a.index()])),
            ForestNode::Map(red, x) => {
                if has[x.index()] && self.mult_positive(red, has) {
                    out.push(*x);
                    let mut refs = Vec::new();
                    red_refs(red, &mut refs);
                    out.extend(refs.into_iter().filter(|s| has[s.index()]));
                }
            }
        }
    }

    /// Nodes on a productive cycle (SCC of ≥ 2 nodes, or a live self-loop)
    /// — exactly the nodes whose count is infinite.
    fn productive_cycle_nodes(&self, analysis: &Analysis) -> Vec<bool> {
        let n = self.len();
        let mut infinite = vec![false; n];
        // Iterative Tarjan over the live-edge subgraph.
        let mut index: Vec<Option<u32>> = vec![None; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_stack: Vec<ForestId> = Vec::new();
        let mut next_index = 0u32;
        let mut succ_buf = Vec::new();
        for &root in &analysis.reachable {
            if index[root.index()].is_some() {
                continue;
            }
            // Frame: (node, successor list, next child position).
            let mut call: Vec<(ForestId, Vec<ForestId>, usize)> = Vec::new();
            succ_buf.clear();
            self.live_successors(root, &analysis.has, &mut succ_buf);
            index[root.index()] = Some(next_index);
            low[root.index()] = next_index;
            next_index += 1;
            on_stack[root.index()] = true;
            scc_stack.push(root);
            call.push((root, succ_buf.clone(), 0));
            while let Some((v, succs, pos)) = call.last_mut() {
                if let Some(&w) = succs.get(*pos) {
                    *pos += 1;
                    let (v, w) = (*v, w);
                    if index[w.index()].is_none() {
                        index[w.index()] = Some(next_index);
                        low[w.index()] = next_index;
                        next_index += 1;
                        on_stack[w.index()] = true;
                        scc_stack.push(w);
                        let mut ws = Vec::new();
                        self.live_successors(w, &analysis.has, &mut ws);
                        call.push((w, ws, 0));
                    } else if on_stack[w.index()] {
                        low[v.index()] = low[v.index()].min(index[w.index()].unwrap());
                        if v == w {
                            infinite[v.index()] = true; // live self-loop
                        }
                    }
                } else {
                    let (v, _, _) = call.pop().unwrap();
                    if low[v.index()] == index[v.index()].unwrap() {
                        // Pop the SCC; size ≥ 2 means a genuine cycle.
                        let mut members = Vec::new();
                        while let Some(w) = scc_stack.pop() {
                            on_stack[w.index()] = false;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if members.len() >= 2 {
                            for w in members {
                                infinite[w.index()] = true;
                            }
                        }
                    }
                    if let Some((parent, _, _)) = call.last() {
                        let p = parent.index();
                        low[p] = low[p].min(low[v.index()]);
                    }
                }
            }
        }
        infinite
    }

    /// Memoized post-order count over the live subgraph.
    fn count_with(&self, root: ForestId, analysis: &Analysis, infinite: &[bool]) -> TreeCount {
        let mut memo: Vec<Option<TreeCount>> = vec![None; self.len()];
        let mut stack: Vec<(ForestId, bool)> = vec![(root, false)];
        let mut succ = Vec::new();
        while let Some((v, post)) = stack.pop() {
            let i = v.index();
            if !post {
                if memo[i].is_some() {
                    continue;
                }
                if !analysis.has[i] {
                    memo[i] = Some(TreeCount::Finite(0));
                    continue;
                }
                if infinite[i] {
                    memo[i] = Some(TreeCount::Infinite);
                    continue;
                }
                stack.push((v, true));
                succ.clear();
                self.live_successors(v, &analysis.has, &mut succ);
                for s in &succ {
                    if memo[s.index()].is_none() {
                        stack.push((*s, false));
                    }
                }
            } else if memo[i].is_none() {
                memo[i] = Some(self.count_eval(v, &memo, &analysis.has));
            }
        }
        memo[root.index()].unwrap_or(TreeCount::Finite(0))
    }

    fn count_eval(&self, v: ForestId, memo: &[Option<TreeCount>], has: &[bool]) -> TreeCount {
        let of = |id: ForestId| -> TreeCount {
            if !has[id.index()] {
                return TreeCount::Finite(0);
            }
            // A live child without a memo entry can only sit on a cycle,
            // which productive_cycle_nodes marked — defensively infinite.
            memo[id.index()].unwrap_or(TreeCount::Infinite)
        };
        match self.get(v) {
            ForestNode::Empty | ForestNode::Cycle => TreeCount::Finite(0),
            ForestNode::Eps | ForestNode::Leaf(_) | ForestNode::Const(_) => TreeCount::Finite(1),
            ForestNode::Pair(a, b) => of(*a) * of(*b),
            ForestNode::Amb(alts) => alts.iter().fold(TreeCount::Finite(0), |acc, a| acc + of(*a)),
            ForestNode::Map(red, x) => of(*x) * self.multiplier(red, memo, has),
        }
    }

    /// How many output trees a reduction produces per input tree.
    fn multiplier(&self, red: &Reduce, memo: &[Option<TreeCount>], has: &[bool]) -> TreeCount {
        match &*red.0 {
            ReduceKind::Compose(g, h) => {
                self.multiplier(g, memo, has) * self.multiplier(h, memo, has)
            }
            ReduceKind::PairLeft(s) | ReduceKind::PairRight(s) => {
                if !has[s.index()] {
                    TreeCount::Finite(0)
                } else {
                    memo[s.index()].unwrap_or(TreeCount::Infinite)
                }
            }
            ReduceKind::MapFirst(g) | ReduceKind::MapSecond(g) => self.multiplier(g, memo, has),
            // Flattening and user functions are assumed injective per tree.
            ReduceKind::Reassoc | ReduceKind::Label(..) | ReduceKind::Func(..) => {
                TreeCount::Finite(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::EnumLimits;

    #[test]
    fn count_basic_shapes() {
        let mut fs = Forest::hash_consed();
        let a = fs.leaf("a", "a");
        let b = fs.leaf("b", "b");
        let amb = fs.amb(vec![a, b]);
        assert_eq!(fs.count(amb), TreeCount::Finite(2));
        let p = fs.pair(amb, amb);
        assert_eq!(fs.count(p), TreeCount::Finite(4));
        let e = fs.empty();
        assert_eq!(fs.count(e), TreeCount::Finite(0));
        let dead = fs.alloc(ForestNode::Pair(p, e));
        assert_eq!(fs.count(dead), TreeCount::Finite(0));
        assert!(fs.has_tree(p));
        assert!(!fs.has_tree(dead));
    }

    #[test]
    fn productive_cycle_is_infinite() {
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(Leafy::leaf()));
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, leaf));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        assert_eq!(fs.count(amb), TreeCount::Infinite);
        assert!(fs.has_tree(amb));
    }

    /// Test helper: a single leaf payload.
    struct Leafy;
    impl Leafy {
        fn leaf() -> crate::tree::Leaf {
            crate::tree::Leaf::new("a", "a")
        }
    }

    #[test]
    fn unproductive_cycle_counts_zero() {
        let mut fs = Forest::new();
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, amb));
        fs.set(amb, ForestNode::Amb(vec![pair]));
        assert!(!fs.has_tree(amb));
        assert_eq!(fs.count(amb), TreeCount::Finite(0));
        assert!(fs.trees(amb, EnumLimits::default()).is_empty());
    }

    #[test]
    fn strangled_cycle_is_finite() {
        // amb = { leaf } ∪ (amb ◦ ∅): the cycle exists syntactically but
        // cannot pump — the pair side has no tree — so the count is exact.
        let mut fs = Forest::new();
        let leaf = fs.alloc(ForestNode::Leaf(Leafy::leaf()));
        let empty = fs.alloc(ForestNode::Empty);
        let amb = fs.reserve();
        let pair = fs.alloc(ForestNode::Pair(amb, empty));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        assert_eq!(fs.count(amb), TreeCount::Finite(1));
    }

    #[test]
    fn overflow_is_explicit_not_saturating_silence() {
        // 2^130 via a chain of 130 binary ambiguity pairs.
        let mut fs = Forest::hash_consed();
        let a = fs.leaf("a", "a");
        let b = fs.leaf("b", "b");
        let two = fs.amb(vec![a, b]);
        let mut chain = two;
        for _ in 0..129 {
            chain = fs.alloc(ForestNode::Pair(two, chain));
        }
        assert_eq!(fs.count(chain), TreeCount::Overflow);
        // 2^100 still exact.
        let mut chain = two;
        for _ in 0..99 {
            chain = fs.alloc(ForestNode::Pair(two, chain));
        }
        assert_eq!(fs.count(chain), TreeCount::Finite(1u128 << 100));
    }

    #[test]
    fn catalan_counts_by_spans() {
        // The chart-shaped packed forest for S → S S | a over a^n.
        let catalan: [u128; 9] = [1, 1, 2, 5, 14, 42, 132, 429, 1430];
        for n in 1..=9usize {
            let mut fs = Forest::hash_consed();
            let leaf = fs.leaf("a", "a");
            let mut spans = std::collections::HashMap::new();
            for w in 1..=n {
                for i in 0..=(n - w) {
                    let j = i + w;
                    let id = if w == 1 {
                        leaf
                    } else {
                        let alts: Vec<ForestId> =
                            (i + 1..j).map(|k| fs.pair(spans[&(i, k)], spans[&(k, j)])).collect();
                        fs.amb(alts)
                    };
                    spans.insert((i, j), id);
                }
            }
            assert_eq!(fs.count(spans[&(0, n)]), TreeCount::Finite(catalan[n - 1]), "n={n}");
        }
    }

    #[test]
    fn pair_left_multiplier_counts() {
        let mut fs = Forest::hash_consed();
        let x = fs.leaf("x", "x");
        let y = fs.leaf("y", "y");
        let s = fs.amb(vec![x, y]);
        let u = fs.leaf("u", "u");
        let m = fs.map(Reduce::pair_left(s), u);
        assert_eq!(fs.count(m), TreeCount::Finite(2));
    }

    #[test]
    fn tree_count_algebra() {
        use TreeCount::*;
        assert_eq!(Infinite * Finite(0), Finite(0));
        assert_eq!(Infinite * Finite(3), Infinite);
        assert_eq!(Overflow + Infinite, Infinite);
        assert_eq!(Finite(u128::MAX) + Finite(1), Overflow);
        assert_eq!(Overflow * Finite(0), Finite(0));
        assert_eq!(Finite(2) * Finite(3), Finite(6));
        assert!(Finite(0).is_zero());
        assert_eq!(Finite(7).as_finite(), Some(7));
        assert_eq!(Infinite.as_finite(), None);
        assert_eq!(format!("{Overflow}"), ">u128");
    }
}
