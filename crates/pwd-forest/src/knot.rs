//! Memoized knot-tying for cyclic forest construction.
//!
//! Every builder that walks a possibly-cyclic structure into a [`Forest`]
//! (the canonicalizer over derivative forests, the fact-driven SPPF builder
//! over charts and stacks) needs the same protocol: memoize results per
//! key, hand a reserved placeholder to re-entrant (cyclic) lookups, and
//! patch the placeholder once the region's real node exists. [`KnotTable`]
//! is that protocol, shared so its edge cases live in exactly one place.

use crate::forest::{Forest, ForestId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;

/// Result of [`KnotTable::enter`].
pub enum Knot {
    /// The key was built before: use this node.
    Done(ForestId),
    /// The key is mid-construction (a cycle): use this placeholder, which
    /// will be patched when the in-flight construction
    /// [`finish`](KnotTable::finish)es.
    Cycle(ForestId),
    /// Unseen: the caller must build the node and
    /// [`finish`](KnotTable::finish) (or [`abort`](KnotTable::abort)).
    Fresh,
}

enum Slot {
    /// Being built; the placeholder is allocated lazily on first re-entry.
    InProgress(Option<ForestId>),
    Done(ForestId),
}

/// A memo table implementing the reserve/patch discipline for cyclic
/// construction into a [`Forest`].
pub struct KnotTable<K> {
    slots: HashMap<K, Slot>,
}

impl<K: Eq + Hash> Default for KnotTable<K> {
    fn default() -> Self {
        KnotTable { slots: HashMap::new() }
    }
}

impl<K: Eq + Hash> KnotTable<K> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, marking it in-progress when unseen. A re-entrant
    /// lookup (a cycle) allocates — once — and returns a
    /// [`Forest::reserve`] placeholder.
    pub fn enter(&mut self, key: K, forest: &mut Forest) -> Knot {
        match self.slots.entry(key) {
            Entry::Occupied(mut e) => match e.get_mut() {
                Slot::Done(id) => Knot::Done(*id),
                Slot::InProgress(slot) => {
                    let ph = match slot {
                        Some(ph) => *ph,
                        None => {
                            let ph = forest.reserve();
                            *slot = Some(ph);
                            ph
                        }
                    };
                    Knot::Cycle(ph)
                }
            },
            Entry::Vacant(v) => {
                v.insert(Slot::InProgress(None));
                Knot::Fresh
            }
        }
    }

    /// Completes `key` with `result`, patching any placeholder handed out
    /// while it was in progress (the knot), and returns `result`.
    pub fn finish(&mut self, key: K, forest: &mut Forest, result: ForestId) -> ForestId {
        if let Some(Slot::InProgress(Some(ph))) = self.slots.get(&key) {
            let ph = *ph;
            // A placeholder that *is* the result stays a `Cycle` node: the
            // only way that happens is a self-referential region with no
            // grounded content, which correctly denotes no parses.
            if ph != result {
                let node = forest.get(result).clone();
                forest.set(ph, node);
            }
        }
        self.slots.insert(key, Slot::Done(result));
        result
    }

    /// Abandons an in-progress entry (the error-unwind path).
    pub fn abort(&mut self, key: &K) {
        self.slots.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{EnumLimits, ForestNode};
    use crate::TreeCount;

    #[test]
    fn knot_ties_cycles_through_placeholders() {
        // Build amb = { leaf, (amb . leaf) } through the table, the way a
        // recursive builder would.
        let mut f = Forest::hash_consed();
        let leaf = f.leaf("a", "a");
        assert!(matches!(KnotTable::new().enter("k", &mut f), Knot::Fresh));
        let mut table: KnotTable<&str> = KnotTable::new();
        assert!(matches!(table.enter("amb", &mut f), Knot::Fresh));
        // Re-entry hands out one stable placeholder.
        let Knot::Cycle(ph) = table.enter("amb", &mut f) else { panic!("cycle expected") };
        let Knot::Cycle(ph2) = table.enter("amb", &mut f) else { panic!("cycle expected") };
        assert_eq!(ph, ph2);
        let pair = f.alloc(ForestNode::Pair(ph, leaf));
        let result = f.alloc(ForestNode::Amb(vec![leaf, pair]));
        let tied = table.finish("amb", &mut f, result);
        assert_eq!(tied, result);
        assert!(matches!(table.enter("amb", &mut f), Knot::Done(id) if id == result));
        assert_eq!(f.count(tied), TreeCount::Infinite);
        assert_eq!(f.trees(tied, EnumLimits { max_trees: 3, max_depth: 32 }).len(), 3);
    }

    #[test]
    fn finish_without_reentry_patches_nothing() {
        let mut f = Forest::hash_consed();
        let leaf = f.leaf("x", "x");
        let mut table: KnotTable<u32> = KnotTable::new();
        assert!(matches!(table.enter(7, &mut f), Knot::Fresh));
        let before = f.len();
        table.finish(7, &mut f, leaf);
        assert_eq!(f.len(), before, "no placeholder was ever allocated");
        table.abort(&9); // aborting an unknown key is a no-op
    }
}
