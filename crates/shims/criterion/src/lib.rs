//! Offline shim for the subset of the `criterion` API used by the
//! `pwd-bench` benches.
//!
//! The build environment has no crate registry access. This shim keeps the
//! bench sources compiling unchanged and implements a serviceable measuring
//! loop: per benchmark it warms up, then runs up to `sample_size` samples
//! (bounded by `measurement_time`) and reports min/mean per-iteration times
//! on stdout. It produces no HTML reports and does no statistical analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendered with `Display`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }
}

/// The per-iteration timing driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run at least once, up to the configured wall-clock.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if run_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Bounds the wall-clock spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Bounds the wall-clock spent warming up one benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b, input);
        self.report(&id.name, &b.samples);
        self
    }

    /// Runs one benchmark without a distinguished input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        self.report(name, &b.samples);
        self
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{name:<40} (no samples)", self.group_name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("nonempty");
        println!(
            "{}/{name:<40} samples={:<3} min={:>12?} mean={:>12?}",
            self.group_name,
            samples.len(),
            min,
            mean,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("== bench group {group_name} ==");
        BenchmarkGroup {
            _criterion: self,
            group_name,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// Declares a group-running function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1, |b, _| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert!(runs >= 5, "warm-up + samples must actually run ({runs})");
    }
}
