//! A sampler for the regex subset proptest string strategies use here:
//! literals, escapes (`\t` `\n` `\r` `\\`), character classes with ranges
//! (`[a-z0-9+]`), groups with alternation (`(foo|bar)`), and the quantifiers
//! `?`, `*`, `+`, `{n}`, `{m,n}` (`*`/`+` are bounded at 8 repetitions).

use crate::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// A sequence of alternatives, each a concatenation of nodes.
    Alt(Vec<Vec<Node>>),
    Lit(char),
    Class(Vec<(char, char)>),
    Repeat(Box<Node>, u32, u32),
}

/// Samples a string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alt(&chars, &mut pos);
    assert!(pos == chars.len(), "trailing junk in pattern {pattern:?} at {pos}");
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(arms) => {
            let arm = &arms[rng.below(arms.len() as u64) as usize];
            for n in arm {
                emit(n, rng, out);
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
            let mut k = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if k < span {
                    out.push(char::from_u32(*lo as u32 + k as u32).expect("valid class char"));
                    return;
                }
                k -= span;
            }
            unreachable!("class sampling is exhaustive");
        }
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut arms = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                arms.push(Vec::new());
            }
            _ => {
                let atom = parse_atom(chars, pos);
                let atom = parse_quantifier(chars, pos, atom);
                arms.last_mut().expect("nonempty arms").push(atom);
            }
        }
    }
    Node::Alt(arms)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(chars.get(*pos) == Some(&')'), "unclosed group");
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = parse_class_char(chars, pos);
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
                    *pos += 1;
                    let hi = parse_class_char(chars, pos);
                    assert!(lo <= hi, "inverted class range");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(chars.get(*pos) == Some(&']'), "unclosed class");
            *pos += 1;
            assert!(!ranges.is_empty(), "empty character class");
            Node::Class(ranges)
        }
        '\\' => {
            *pos += 1;
            let c = escape(chars[*pos]);
            *pos += 1;
            Node::Lit(c)
        }
        c => {
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn parse_class_char(chars: &[char], pos: &mut usize) -> char {
    if chars[*pos] == '\\' {
        *pos += 1;
        let c = escape(chars[*pos]);
        *pos += 1;
        c
    } else {
        let c = chars[*pos];
        *pos += 1;
        c
    }
}

fn escape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, 8)
        }
        Some('{') => {
            *pos += 1;
            let mut lo = 0u32;
            while chars[*pos].is_ascii_digit() {
                lo = lo * 10 + chars[*pos].to_digit(10).expect("digit");
                *pos += 1;
            }
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                let mut hi = 0u32;
                while chars[*pos].is_ascii_digit() {
                    hi = hi * 10 + chars[*pos].to_digit(10).expect("digit");
                    *pos += 1;
                }
                hi
            } else {
                lo
            };
            assert!(chars[*pos] == '}', "unclosed repetition");
            *pos += 1;
            assert!(lo <= hi, "inverted repetition bounds");
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::sample;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn class_with_counts() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample("[a-z0-9+*() \t\n]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "+*() \t\n".contains(c)));
        }
    }

    #[test]
    fn groups_alternation_and_opt() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample("(    |        )?", &mut rng);
            assert!(s.is_empty() || s == "    " || s == "        ");
        }
    }

    #[test]
    fn nested_optional_group() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample("[a-z]{1,6}( = [0-9]{1,3})?", &mut rng);
            let head: String = s.chars().take_while(|c| c.is_ascii_lowercase()).collect();
            assert!((1..=6).contains(&head.len()), "{s:?}");
            let rest = &s[head.len()..];
            if !rest.is_empty() {
                assert!(rest.starts_with(" = "), "{s:?}");
                assert!(rest[3..].chars().all(|c| c.is_ascii_digit()), "{s:?}");
            }
        }
    }

    #[test]
    fn star_and_plus_are_bounded() {
        let mut rng = rng();
        for _ in 0..100 {
            assert!(sample("a*", &mut rng).len() <= 8);
            let p = sample("b+", &mut rng);
            assert!((1..=8).contains(&p.len()));
        }
    }

    #[test]
    fn escapes_in_and_out_of_classes() {
        let mut rng = rng();
        let s = sample(r"\t\n", &mut rng);
        assert_eq!(s, "\t\n");
    }
}
