//! Offline shim for the subset of the `proptest` API used in this workspace.
//!
//! The build environment has no crate registry access, so this crate
//! reimplements just what the property tests need: the [`Strategy`] trait
//! with `prop_map`/`prop_recursive`, [`Just`], range and tuple strategies,
//! regex-pattern string strategies (`"[a-z]{1,6}"` literals), bounded
//! [`collection::vec`], and the `proptest!`/`prop_oneof!`/`prop_assert*`
//! macros. Generation is deterministic per test; there is **no shrinking** —
//! a failing case panics with the assertion message directly.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

mod pattern;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform sample below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. The shim's strategies are pure samplers: no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper. The
    /// `_desired_size`/`_expected_branch` tuning knobs of upstream proptest
    /// are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = recurse(cur).boxed();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Bias toward recursion so structures actually nest; the
                // leaf arm guarantees termination at every level.
                if rng.below(4) < 3 {
                    deeper.sample(rng)
                } else {
                    leaf.sample(rng)
                }
            }));
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String-literal strategies: the literal is a regex pattern and samples are
/// strings matching it (see [`pattern`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

/// Uniform choice among type-erased arms — the engine behind `prop_oneof!`.
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].sample(rng)
    }))
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::Range;
    use std::rc::Rc;

    /// A `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        assert!(len.start < len.end, "empty length range");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let span = (len.end - len.start) as u64;
            let n = len.start + rng.below(span) as usize;
            (0..n).map(|_| element.sample(rng)).collect()
        }))
    }
}

/// Runner configuration: only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 100 }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics with the message; the shim
/// has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::union(arms)
    }};
}

/// Declares property tests. Each case runs with a deterministic seed derived
/// from the test name and case index, so failures reproduce exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($config) $($rest)* }
    };
    (@with ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Seed from the test path so distinct tests explore
                // distinct streams, deterministically.
                let mut seed = 0xcbf29ce484222325u64;
                for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E3779B97F4A7C15));
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let s = (0u8..5).prop_map(|v| v * 2);
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 10 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate_and_nest() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(()).prop_map(|_| T::Leaf).boxed().prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::seed_from_u64(5);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.sample(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion must actually nest (got {max_depth})");
        assert!(max_depth <= 4, "depth bound respected (got {max_depth})");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u8..3, 2..6);
        let mut rng = crate::TestRng::seed_from_u64(6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u8..10, s in "[ab]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b == b'a' || b == b'b'));
        }
    }
}
