//! Offline shim for the subset of the `rand` 0.9 API used in this workspace.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors this minimal, dependency-free implementation: a seedable
//! [`StdRng`] driven by SplitMix64/xoshiro256** and the
//! [`RngExt::random_range`] / [`RngExt::random_bool`] extension methods the
//! grammar generators and differential tests call. The statistical quality is
//! ample for test-case generation; it is **not** a cryptographic RNG and
//! makes no attempt to match upstream `rand`'s value streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Converts to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the `u64` sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges that can be sampled from: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    /// The inclusive `(low, high)` bounds. Panics if the range is empty.
    fn bounds(&self) -> (u64, u64);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        (lo, hi - 1)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        (lo, hi)
    }
}

/// The `random_*` convenience methods of `rand` 0.9's `Rng` trait, split out
/// so the shim can keep [`Rng`] minimal.
pub trait RngExt: Rng {
    /// A uniform sample from a range. Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        if hi == u64::MAX && lo == 0 {
            return T::from_u64(self.next_u64());
        }
        let span = hi - lo + 1;
        // Debiased multiply-shift rejection sampling (Lemire).
        loop {
            let x = self.next_u64();
            let hi128 = ((x as u128 * span as u128) >> 64) as u64;
            let lo128 = x.wrapping_mul(span);
            if lo128 >= span || lo128 >= span.wrapping_neg() % span {
                return T::from_u64(lo + hi128);
            }
        }
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, as upstream does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Standard generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard RNG: xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.random_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
