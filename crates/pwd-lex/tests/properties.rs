//! Property tests for the lexers: totality over printable input, maximal
//! munch invariants, and Python layout-token balance.

use proptest::prelude::*;
use pwd_lex::{tokenize_python, LexerBuilder};

proptest! {
    /// The generic lexer either tokenizes or errors — never panics — and
    /// matched text concatenates back to the consumed input.
    #[test]
    fn lexer_total_and_faithful(input in "[a-z0-9+*() \t\n]{0,40}") {
        let lexer = LexerBuilder::new()
            .rule("NUM", r"[0-9]+").unwrap()
            .rule("ID", r"[a-z]+").unwrap()
            .rule("OP", r"[+*()]").unwrap()
            .skip("WS", r"[ \t\n]+").unwrap()
            .build();
        if let Ok(toks) = lexer.tokenize(&input) {
            // Offsets strictly increase and each text matches the source.
            let mut last_end = 0;
            for t in &toks {
                prop_assert!(t.offset >= last_end);
                prop_assert_eq!(&input[t.offset..t.offset + t.text.len()], t.text.as_str());
                last_end = t.offset + t.text.len();
            }
        }
    }

    /// Maximal munch: no token's text is extensible to a longer match of
    /// any rule at the same position.
    #[test]
    fn maximal_munch(input in "[ab=]{0,24}") {
        let lexer = LexerBuilder::new()
            .rule("EQ2", "==").unwrap()
            .rule("EQ", "=").unwrap()
            .rule("AB", "(ab)+").unwrap()
            .rule("A", "a").unwrap()
            .rule("B", "b").unwrap()
            .build();
        if let Ok(toks) = lexer.tokenize(&input) {
            for t in &toks {
                if t.kind == "EQ" {
                    // A lone '=' must not be followed by another '='.
                    prop_assert_ne!(input.as_bytes().get(t.offset + 1), Some(&b'='));
                }
                if t.kind == "A" {
                    // A lone 'a' must not start an "ab" pair.
                    prop_assert_ne!(input.as_bytes().get(t.offset + 1), Some(&b'b'));
                }
            }
        }
    }

    /// Python tokenizer: INDENT and DEDENT always balance, ENDMARKER is
    /// always last, and the tokenizer never panics on snippet-shaped input.
    #[test]
    fn python_layout_tokens_balance(
        lines in proptest::collection::vec(
            ("(    |        )?", "[a-z]{1,6}( = [0-9]{1,3})?"),
            0..8,
        )
    ) {
        let src: String =
            lines.iter().map(|(ind, body)| format!("{ind}{body}\n")).collect();
        if let Ok(toks) = tokenize_python(&src) {
            let indents = toks.iter().filter(|t| t.kind == "INDENT").count();
            let dedents = toks.iter().filter(|t| t.kind == "DEDENT").count();
            prop_assert_eq!(indents, dedents, "{}", src);
            prop_assert_eq!(toks.last().map(|t| t.kind.as_str()), Some("ENDMARKER"));
            // Running depth never goes negative.
            let mut depth = 0i64;
            for t in &toks {
                match t.kind.as_str() {
                    "INDENT" => depth += 1,
                    "DEDENT" => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0);
            }
        }
    }

    /// Tokenizing generated Python never fails and roundtrips NAME/NUMBER
    /// lexemes verbatim.
    #[test]
    fn generated_python_tokenizes(seed in 0u64..500) {
        // Light-weight local generator to avoid a dependency cycle with
        // pwd-grammar: nested defs and assignments.
        let src = format!(
            "def f{seed}(a, b={}):\n    x = a + b\n    if x > {}:\n        return x\n    return b\n",
            seed % 97,
            seed % 13,
        );
        let toks = tokenize_python(&src).unwrap();
        prop_assert!(toks.iter().any(|t| t.kind == "def"));
        prop_assert!(toks.iter().filter(|t| t.kind == "INDENT").count() >= 2);
    }
}
