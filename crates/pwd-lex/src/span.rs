//! Source positions: byte spans and offset → line/column mapping.
//!
//! The streaming pipeline talks in [`Span`]s — half-open byte ranges into
//! the input buffer — so a token never needs to copy its text out of the
//! source. Diagnostics want `line:col`; a [`LineMap`] indexes newline
//! positions once and answers lookups in `O(log lines)`, and
//! [`Position::of`] answers a single lookup without the index.

/// A half-open byte range `start..end` into an input buffer.
///
/// This is the zero-copy currency of the streaming lexer: a
/// [`TokenSource`](crate::TokenSource) hands out spans (plus the borrowed
/// slice they denote) instead of owned strings.
///
/// # Examples
///
/// ```
/// use pwd_lex::Span;
/// let s = Span::new(4, 9);
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.slice("abcdHELLOxyz"), "HELLO");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span; `start` must not exceed `end`.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "span {start}..{end} is inverted");
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the span zero-width?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The slice of `src` this span denotes.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or splits a UTF-8 character —
    /// spans are only meaningful against the buffer they were produced from.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column in characters.
    pub column: u32,
}

impl Position {
    /// The line/column of a byte offset, computed by one linear scan of the
    /// prefix (use [`LineMap`] when answering many lookups over one source).
    /// Offsets past the end clamp to the end position.
    pub fn of(src: &str, offset: usize) -> Position {
        let offset = offset.min(src.len());
        let prefix = &src[..offset];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = prefix.rfind('\n').map_or(0, |i| i + 1);
        let column = prefix[line_start..].chars().count() + 1;
        Position { line: line as u32, column: column as u32 }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Precomputed newline index for byte-offset → line/column conversion.
///
/// # Examples
///
/// ```
/// use pwd_lex::{LineMap, Position};
/// let map = LineMap::new("ab\ncdé\nf");
/// assert_eq!(map.position(0), Position { line: 1, column: 1 });
/// assert_eq!(map.position(3), Position { line: 2, column: 1 });
/// // é is multi-byte; column counts characters.
/// assert_eq!(map.position(7), Position { line: 2, column: 4 });
/// ```
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offsets at which each line starts.
    line_starts: Vec<usize>,
    /// The source (owned) for character-accurate column computation.
    src: String,
}

impl LineMap {
    /// Indexes the newlines of `src`.
    pub fn new(src: &str) -> LineMap {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts, src: src.to_string() }
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The 1-based line/column of a byte offset. Offsets past the end map to
    /// the end position.
    pub fn position(&self, offset: usize) -> Position {
        let offset = offset.min(self.src.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line];
        let column = self.src[start..offset].chars().count() + 1;
        Position { line: line as u32 + 1, column: column as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_source() {
        let m = LineMap::new("");
        assert_eq!(m.lines(), 1);
        assert_eq!(m.position(0), Position { line: 1, column: 1 });
        assert_eq!(m.position(99), Position { line: 1, column: 1 });
    }

    #[test]
    fn multi_line() {
        let m = LineMap::new("one\ntwo\nthree\n");
        assert_eq!(m.lines(), 4);
        assert_eq!(m.position(0).line, 1);
        assert_eq!(m.position(4), Position { line: 2, column: 1 });
        assert_eq!(m.position(6), Position { line: 2, column: 3 });
        assert_eq!(m.position(8).line, 3);
    }

    #[test]
    fn newline_boundary_belongs_to_old_line() {
        let m = LineMap::new("ab\ncd");
        assert_eq!(m.position(2), Position { line: 1, column: 3 });
        assert_eq!(m.position(3), Position { line: 2, column: 1 });
    }

    #[test]
    fn integrates_with_lexer_offsets() {
        let src = "x = 1\ny = foo(2)\n";
        let lexemes = crate::tokenize_python(src).unwrap();
        let map = LineMap::new(src);
        let foo = lexemes.iter().find(|l| l.text == "foo").unwrap();
        assert_eq!(map.position(foo.offset), Position { line: 2, column: 5 });
    }

    #[test]
    fn display_format() {
        assert_eq!(Position { line: 3, column: 7 }.to_string(), "3:7");
        assert_eq!(Span::new(2, 9).to_string(), "2..9");
    }

    #[test]
    fn span_slicing() {
        let s = Span::new(3, 5);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Span::new(4, 4).is_empty());
        assert_eq!(s.slice("abcdef"), "de");
    }

    #[test]
    fn position_of_matches_line_map() {
        let src = "ab\ncdé\nf";
        let map = LineMap::new(src);
        for off in [0, 1, 2, 3, 7, 8, 99] {
            assert_eq!(Position::of(src, off), map.position(off), "offset {off}");
        }
    }
}
