//! Source positions: byte spans, offset → line/column mapping, and the
//! shared caret renderer.
//!
//! The streaming pipeline talks in [`Span`]s — half-open byte ranges into
//! the input buffer — so a token never needs to copy its text out of the
//! source. Diagnostics want `line:col`; a [`SourceMap`] indexes newline
//! positions once and answers lookups in `O(log lines)`, and
//! [`Position::of`] answers a single lookup without the index. Both run
//! through one line/column code path ([`SourceMap::position_of`]), so a lex
//! error and a recovery diagnostic can never disagree about where an offset
//! is. [`SourceMap::render_span`] is the one rustc-style caret renderer
//! every consumer (recovery diagnostics, `probe diagnose`, the repl) shares.

/// A half-open byte range `start..end` into an input buffer.
///
/// This is the zero-copy currency of the streaming lexer: a
/// [`TokenSource`](crate::TokenSource) hands out spans (plus the borrowed
/// slice they denote) instead of owned strings.
///
/// # Examples
///
/// ```
/// use pwd_lex::Span;
/// let s = Span::new(4, 9);
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.slice("abcdHELLOxyz"), "HELLO");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span; `start` must not exceed `end`.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "span {start}..{end} is inverted");
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the span zero-width?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The slice of `src` this span denotes.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or splits a UTF-8 character —
    /// spans are only meaningful against the buffer they were produced from.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column in characters.
    pub column: u32,
}

impl Position {
    /// The line/column of a byte offset, computed by one linear scan of the
    /// prefix (use [`SourceMap`] when answering many lookups over one
    /// source). Offsets past the end clamp to the end position.
    ///
    /// This is a shim over [`SourceMap::position_of`] — the single
    /// line/column code path shared with the indexed map.
    pub fn of(src: &str, offset: usize) -> Position {
        SourceMap::position_of(src, offset)
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Precomputed newline index for byte-offset → line/column conversion, plus
/// the shared caret renderer for spanned diagnostics.
///
/// # Examples
///
/// ```
/// use pwd_lex::{Position, SourceMap};
/// let map = SourceMap::new("ab\ncdé\nf");
/// assert_eq!(map.position(0), Position { line: 1, column: 1 });
/// assert_eq!(map.position(3), Position { line: 2, column: 1 });
/// // é is multi-byte; column counts characters.
/// assert_eq!(map.position(7), Position { line: 2, column: 4 });
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets at which each line starts.
    line_starts: Vec<usize>,
    /// The source (owned) for character-accurate column computation.
    src: String,
}

/// The historical name of [`SourceMap`], kept as an alias.
pub type LineMap = SourceMap;

impl SourceMap {
    /// Indexes the newlines of `src`.
    pub fn new(src: &str) -> SourceMap {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap { line_starts, src: src.to_string() }
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The source text this map indexes.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Replaces the byte range `start..end` with `replacement`, repairing
    /// the newline index incrementally: line starts before the edit are
    /// kept, starts inside the damaged range are rebuilt from the
    /// replacement text, and starts after it are shifted by the length
    /// delta. Equivalent to (but cheaper than) re-indexing from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `start..end` is out of bounds, inverted, or splits a UTF-8
    /// character (same contract as `String::replace_range`).
    pub fn splice(&mut self, start: usize, end: usize, replacement: &str) {
        let delta = replacement.len() as isize - (end - start) as isize;
        // Keep line starts at or before the edit: a start exactly at `start`
        // is the position *after* a preceding newline, which survives.
        let lo = self.line_starts.partition_point(|&s| s <= start);
        let hi = self.line_starts.partition_point(|&s| s <= end);
        let mut tail: Vec<usize> =
            self.line_starts[hi..].iter().map(|&s| (s as isize + delta) as usize).collect();
        self.line_starts.truncate(lo);
        for (i, b) in replacement.bytes().enumerate() {
            if b == b'\n' {
                self.line_starts.push(start + i + 1);
            }
        }
        self.line_starts.append(&mut tail);
        self.src.replace_range(start..end, replacement);
    }

    /// The 1-based line/column of a byte offset. Offsets past the end map to
    /// the end position.
    pub fn position(&self, offset: usize) -> Position {
        let offset = offset.min(self.src.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line];
        Position { line: line as u32 + 1, column: Self::column_at(&self.src, start, offset) }
    }

    /// One-shot offset → line/column without building an index: the shared
    /// code path behind [`Position::of`] and every ad-hoc lookup (e.g.
    /// [`LexError`](crate::LexError) construction). Offsets past the end
    /// clamp to the end position.
    pub fn position_of(src: &str, offset: usize) -> Position {
        let offset = offset.min(src.len());
        let prefix = &src[..offset];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = prefix.rfind('\n').map_or(0, |i| i + 1);
        Position { line: line as u32, column: Self::column_at(src, line_start, offset) }
    }

    /// 1-based character column of `offset` within the line starting at
    /// `line_start` — the one column computation both lookups share.
    fn column_at(src: &str, line_start: usize, offset: usize) -> u32 {
        src[line_start..offset].chars().count() as u32 + 1
    }

    /// The text of a 1-based line, without its trailing newline. Lines past
    /// the end return `""`.
    pub fn line_text(&self, line: u32) -> &str {
        let Some(&start) = self.line_starts.get(line.saturating_sub(1) as usize) else {
            return "";
        };
        let end =
            self.line_starts.get(line as usize).map_or(self.src.len(), |&next| next - 1).max(start);
        &self.src[start..end]
    }

    /// Renders a span rustc-style: a `--> line:col` header, the source line,
    /// and a caret underline. Spans reaching past the first line are clamped
    /// to it; zero-width spans render one caret (a cursor, e.g. "expected
    /// here"). This is the single caret renderer shared by recovery
    /// diagnostics, lex-error display, `probe diagnose`, and the repl.
    ///
    /// ```text
    ///  --> 2:5
    ///   |
    /// 2 | var x = 1;
    ///   |     ^
    /// ```
    pub fn render_span(&self, span: Span) -> String {
        let pos = self.position(span.start);
        let text = self.line_text(pos.line);
        let gutter = pos.line.to_string();
        let pad = " ".repeat(gutter.len());
        let lead = " ".repeat(pos.column as usize - 1);
        let line_end = self.line_starts[pos.line as usize - 1] + text.len();
        let width = Span::new(span.start, span.end.min(line_end).max(span.start))
            .slice(&self.src)
            .chars()
            .count()
            .max(1);
        let carets = "^".repeat(width);
        format!(" --> {pos}\n{pad} |\n{gutter} | {text}\n{pad} | {lead}{carets}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_source() {
        let m = SourceMap::new("");
        assert_eq!(m.lines(), 1);
        assert_eq!(m.position(0), Position { line: 1, column: 1 });
        assert_eq!(m.position(99), Position { line: 1, column: 1 });
    }

    #[test]
    fn multi_line() {
        let m = SourceMap::new("one\ntwo\nthree\n");
        assert_eq!(m.lines(), 4);
        assert_eq!(m.position(0).line, 1);
        assert_eq!(m.position(4), Position { line: 2, column: 1 });
        assert_eq!(m.position(6), Position { line: 2, column: 3 });
        assert_eq!(m.position(8).line, 3);
    }

    #[test]
    fn newline_boundary_belongs_to_old_line() {
        let m = SourceMap::new("ab\ncd");
        assert_eq!(m.position(2), Position { line: 1, column: 3 });
        assert_eq!(m.position(3), Position { line: 2, column: 1 });
    }

    #[test]
    fn integrates_with_lexer_offsets() {
        let src = "x = 1\ny = foo(2)\n";
        let lexemes = crate::tokenize_python(src).unwrap();
        let map = SourceMap::new(src);
        let foo = lexemes.iter().find(|l| l.text == "foo").unwrap();
        assert_eq!(map.position(foo.offset), Position { line: 2, column: 5 });
    }

    #[test]
    fn display_format() {
        assert_eq!(Position { line: 3, column: 7 }.to_string(), "3:7");
        assert_eq!(Span::new(2, 9).to_string(), "2..9");
    }

    #[test]
    fn span_slicing() {
        let s = Span::new(3, 5);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Span::new(4, 4).is_empty());
        assert_eq!(s.slice("abcdef"), "de");
    }

    #[test]
    fn position_of_matches_source_map() {
        let src = "ab\ncdé\nf";
        let map = SourceMap::new(src);
        for off in [0, 1, 2, 3, 7, 8, 99] {
            assert_eq!(Position::of(src, off), map.position(off), "offset {off}");
        }
    }

    #[test]
    fn line_text_lookup() {
        let m = SourceMap::new("one\ntwo\nthree");
        assert_eq!(m.line_text(1), "one");
        assert_eq!(m.line_text(2), "two");
        assert_eq!(m.line_text(3), "three");
        assert_eq!(m.line_text(9), "");
    }

    #[test]
    fn render_span_points_at_the_span() {
        let m = SourceMap::new("let x = 1;\nlet y == 2;\n");
        let rendered = m.render_span(Span::new(17, 19));
        assert_eq!(rendered, " --> 2:7\n  |\n2 | let y == 2;\n  |       ^^");
    }

    #[test]
    fn render_span_zero_width_shows_cursor() {
        let m = SourceMap::new("ab\n");
        let rendered = m.render_span(Span::new(2, 2));
        assert_eq!(rendered, " --> 1:3\n  |\n1 | ab\n  |   ^");
    }

    #[test]
    fn render_span_clamps_to_first_line() {
        let m = SourceMap::new("abc\ndef\n");
        let rendered = m.render_span(Span::new(1, 6));
        assert_eq!(rendered, " --> 1:2\n  |\n1 | abc\n  |  ^^");
    }
}
