//! Source positions: byte offsets to line/column mapping.
//!
//! Lexemes carry byte offsets; diagnostics want `line:col`. A [`LineMap`]
//! indexes newline positions once and answers lookups in `O(log lines)`.

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column in characters.
    pub column: u32,
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Precomputed newline index for byte-offset → line/column conversion.
///
/// # Examples
///
/// ```
/// use pwd_lex::{LineMap, Position};
/// let map = LineMap::new("ab\ncdé\nf");
/// assert_eq!(map.position(0), Position { line: 1, column: 1 });
/// assert_eq!(map.position(3), Position { line: 2, column: 1 });
/// // é is multi-byte; column counts characters.
/// assert_eq!(map.position(7), Position { line: 2, column: 4 });
/// ```
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offsets at which each line starts.
    line_starts: Vec<usize>,
    /// The source (owned) for character-accurate column computation.
    src: String,
}

impl LineMap {
    /// Indexes the newlines of `src`.
    pub fn new(src: &str) -> LineMap {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts, src: src.to_string() }
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The 1-based line/column of a byte offset. Offsets past the end map to
    /// the end position.
    pub fn position(&self, offset: usize) -> Position {
        let offset = offset.min(self.src.len());
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.line_starts[line];
        let column = self.src[start..offset].chars().count() + 1;
        Position { line: line as u32 + 1, column: column as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_source() {
        let m = LineMap::new("");
        assert_eq!(m.lines(), 1);
        assert_eq!(m.position(0), Position { line: 1, column: 1 });
        assert_eq!(m.position(99), Position { line: 1, column: 1 });
    }

    #[test]
    fn multi_line() {
        let m = LineMap::new("one\ntwo\nthree\n");
        assert_eq!(m.lines(), 4);
        assert_eq!(m.position(0).line, 1);
        assert_eq!(m.position(4), Position { line: 2, column: 1 });
        assert_eq!(m.position(6), Position { line: 2, column: 3 });
        assert_eq!(m.position(8).line, 3);
    }

    #[test]
    fn newline_boundary_belongs_to_old_line() {
        let m = LineMap::new("ab\ncd");
        assert_eq!(m.position(2), Position { line: 1, column: 3 });
        assert_eq!(m.position(3), Position { line: 2, column: 1 });
    }

    #[test]
    fn integrates_with_lexer_offsets() {
        let src = "x = 1\ny = foo(2)\n";
        let lexemes = crate::tokenize_python(src).unwrap();
        let map = LineMap::new(src);
        let foo = lexemes.iter().find(|l| l.text == "foo").unwrap();
        assert_eq!(map.position(foo.offset), Position { line: 2, column: 5 });
    }

    #[test]
    fn display_format() {
        assert_eq!(Position { line: 3, column: 7 }.to_string(), "3:7");
    }
}
