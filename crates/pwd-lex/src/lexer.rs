//! Generic longest-match (maximal munch) lexing over derivative-built DFAs.
//!
//! A [`Lexer`] is an ordered list of rules, each compiling a regex (from
//! `pwd-regex`) to a DFA. At each input position every rule's automaton runs
//! in lockstep; the longest match wins, ties broken by rule order. This is
//! the classic lex discipline, built entirely on Brzozowski derivatives.

use pwd_regex::{Dfa, Regex};
use std::fmt;

/// A lexical token produced by a [`Lexer`]: rule name, matched text, byte
/// offset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lexeme {
    /// Name of the rule that matched (the token kind).
    pub kind: String,
    /// The matched text.
    pub text: String,
    /// Byte offset of the match start in the input.
    pub offset: usize,
}

/// Error produced when no rule matches at some input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where lexing got stuck.
    pub offset: usize,
    /// A short snippet of the offending input.
    pub snippet: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no token matches at byte {} (near {:?})", self.offset, self.snippet)
    }
}

impl std::error::Error for LexError {}

struct Rule {
    name: String,
    dfa: Dfa,
    skip: bool,
}

/// A table-driven, longest-match lexer.
///
/// # Examples
///
/// ```
/// use pwd_lex::LexerBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lexer = LexerBuilder::new()
///     .rule("NUM", r"[0-9]+")?
///     .rule("ID", r"[a-z]+")?
///     .skip("WS", r"[ \t]+")?
///     .build();
/// let toks = lexer.tokenize("abc 42")?;
/// let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
/// assert_eq!(kinds, ["ID", "NUM"]);
/// # Ok(())
/// # }
/// ```
pub struct Lexer {
    rules: Vec<Rule>,
}

/// Builder for [`Lexer`].
#[derive(Default)]
pub struct LexerBuilder {
    rules: Vec<Rule>,
}

impl LexerBuilder {
    /// Creates an empty builder.
    pub fn new() -> LexerBuilder {
        LexerBuilder::default()
    }

    /// Adds a token rule from a regex pattern.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`pwd_regex::ParseRegexError`] if the pattern
    /// is malformed.
    pub fn rule(mut self, name: &str, pattern: &str) -> Result<Self, pwd_regex::ParseRegexError> {
        let re = pwd_regex::parse(pattern)?;
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(&re), skip: false });
        Ok(self)
    }

    /// Adds a rule whose matches are discarded (whitespace, comments).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`pwd_regex::ParseRegexError`] if the pattern
    /// is malformed.
    pub fn skip(mut self, name: &str, pattern: &str) -> Result<Self, pwd_regex::ParseRegexError> {
        let re = pwd_regex::parse(pattern)?;
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(&re), skip: true });
        Ok(self)
    }

    /// Adds a rule from an already-built regex.
    pub fn rule_regex(mut self, name: &str, re: &Regex) -> Self {
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(re), skip: false });
        self
    }

    /// Finalizes the lexer.
    pub fn build(self) -> Lexer {
        Lexer { rules: self.rules }
    }
}

impl Lexer {
    /// Tokenizes the whole input with maximal munch.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] at the first position where no rule matches a
    /// non-empty prefix.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Lexeme>, LexError> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < input.len() {
            let rest = &input[pos..];
            let mut best: Option<(usize, usize)> = None; // (len, rule index)
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(len) = rule.dfa.longest_match(rest) {
                    if len > 0 && best.map(|(bl, _)| len > bl).unwrap_or(true) {
                        best = Some((len, i));
                    }
                }
            }
            match best {
                None => {
                    return Err(LexError { offset: pos, snippet: rest.chars().take(12).collect() });
                }
                Some((len, i)) => {
                    let rule = &self.rules[i];
                    if !rule.skip {
                        out.push(Lexeme {
                            kind: rule.name.clone(),
                            text: rest[..len].to_string(),
                            offset: pos,
                        });
                    }
                    pos += len;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arith_lexer() -> Lexer {
        LexerBuilder::new()
            .rule("NUM", r"[0-9]+")
            .unwrap()
            .rule("PLUS", r"\+")
            .unwrap()
            .rule("TIMES", r"\*")
            .unwrap()
            .rule("LPAREN", r"\(")
            .unwrap()
            .rule("RPAREN", r"\)")
            .unwrap()
            .skip("WS", r"[ \t\n]+")
            .unwrap()
            .build()
    }

    #[test]
    fn tokenizes_arithmetic() {
        let toks = arith_lexer().tokenize("1 + 23 * (4)").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["NUM", "PLUS", "NUM", "TIMES", "LPAREN", "NUM", "RPAREN"]);
        assert_eq!(toks[2].text, "23");
        assert_eq!(toks[2].offset, 4);
    }

    #[test]
    fn longest_match_wins() {
        let lexer =
            LexerBuilder::new().rule("EQ", r"=").unwrap().rule("EQEQ", r"==").unwrap().build();
        let toks = lexer.tokenize("===").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["EQEQ", "EQ"], "maximal munch");
    }

    #[test]
    fn rule_order_breaks_ties() {
        let lexer = LexerBuilder::new()
            .rule("KW_IF", r"if")
            .unwrap()
            .rule("ID", r"[a-z]+")
            .unwrap()
            .build();
        let toks = lexer.tokenize("if").unwrap();
        assert_eq!(toks[0].kind, "KW_IF");
        let toks = lexer.tokenize("iff").unwrap();
        assert_eq!(toks[0].kind, "ID", "longer ID beats keyword prefix");
    }

    #[test]
    fn error_on_unknown_character() {
        let err = arith_lexer().tokenize("1 + §").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn empty_input() {
        assert!(arith_lexer().tokenize("").unwrap().is_empty());
    }

    #[test]
    fn skip_rules_are_dropped() {
        let toks = arith_lexer().tokenize("   \n\t ").unwrap();
        assert!(toks.is_empty());
    }
}
