//! Generic longest-match (maximal munch) lexing over derivative-built DFAs.
//!
//! A [`Lexer`] is an ordered list of rules, each compiling a regex (from
//! `pwd-regex`) to a DFA. At each input position every rule's automaton runs
//! in lockstep; the longest match wins, ties broken by rule order. This is
//! the classic lex discipline, built entirely on Brzozowski derivatives.
//!
//! The primary interface is streaming: [`Lexer::source`] returns a
//! [`TokenSource`](crate::TokenSource) that scans lazily and hands out
//! zero-copy [`ScannedToken`](crate::ScannedToken)s, so a parser session can
//! consume tokens as they are matched with no intermediate vector. The
//! batch [`Lexer::tokenize`] is a thin shim that drains that stream into
//! owned [`Lexeme`]s for callers that still want a slice.

use crate::source::{ScannedToken, TokenSource};
use crate::span::{Position, Span};
use pwd_regex::{Dfa, Regex};
use std::fmt;

/// A lexical token produced by a [`Lexer`]: rule name, matched text, byte
/// offset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lexeme {
    /// Name of the rule that matched (the token kind).
    pub kind: String,
    /// The matched text.
    pub text: String,
    /// Byte offset of the match start in the input.
    pub offset: usize,
}

/// Error produced when no rule matches at some input position.
///
/// Carries the offending [`Span`] (byte offsets), the 1-based line/column
/// [`Position`] of its start, and an owned copy of the offending slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte range of the offending slice (up to a short window from the
    /// stuck position).
    pub span: Span,
    /// Line/column of `span.start`.
    pub position: Position,
    /// The offending slice of input (the text `span` denotes).
    pub snippet: String,
}

impl LexError {
    /// Builds the error for the stuck position `pos` in `input`.
    pub(crate) fn at(input: &str, pos: usize) -> LexError {
        let snippet: String = input[pos..].chars().take(12).collect();
        LexError {
            span: Span::new(pos, pos + snippet.len()),
            position: Position::of(input, pos),
            snippet,
        }
    }

    /// Byte offset where lexing got stuck.
    pub fn offset(&self) -> usize {
        self.span.start
    }

    /// Renders the error rustc-style against its source buffer, through the
    /// shared [`SourceMap::render_span`](crate::SourceMap::render_span)
    /// caret renderer (one code path with recovery diagnostics).
    pub fn render(&self, src: &str) -> String {
        format!("error: {self}\n{}", crate::SourceMap::new(src).render_span(self.span))
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no token matches at {} (bytes {}): {:?}", self.position, self.span, self.snippet)
    }
}

impl std::error::Error for LexError {}

struct Rule {
    name: String,
    dfa: Dfa,
    skip: bool,
}

/// A table-driven, longest-match lexer.
///
/// # Examples
///
/// ```
/// use pwd_lex::LexerBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lexer = LexerBuilder::new()
///     .rule("NUM", r"[0-9]+")?
///     .rule("ID", r"[a-z]+")?
///     .skip("WS", r"[ \t]+")?
///     .build();
/// let toks = lexer.tokenize("abc 42")?;
/// let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
/// assert_eq!(kinds, ["ID", "NUM"]);
/// # Ok(())
/// # }
/// ```
pub struct Lexer {
    rules: Vec<Rule>,
}

/// Builder for [`Lexer`].
#[derive(Default)]
pub struct LexerBuilder {
    rules: Vec<Rule>,
}

impl LexerBuilder {
    /// Creates an empty builder.
    pub fn new() -> LexerBuilder {
        LexerBuilder::default()
    }

    /// Adds a token rule from a regex pattern.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`pwd_regex::ParseRegexError`] if the pattern
    /// is malformed.
    pub fn rule(mut self, name: &str, pattern: &str) -> Result<Self, pwd_regex::ParseRegexError> {
        let re = pwd_regex::parse(pattern)?;
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(&re), skip: false });
        Ok(self)
    }

    /// Adds a rule whose matches are discarded (whitespace, comments).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`pwd_regex::ParseRegexError`] if the pattern
    /// is malformed.
    pub fn skip(mut self, name: &str, pattern: &str) -> Result<Self, pwd_regex::ParseRegexError> {
        let re = pwd_regex::parse(pattern)?;
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(&re), skip: true });
        Ok(self)
    }

    /// Adds a rule from an already-built regex.
    pub fn rule_regex(mut self, name: &str, re: &Regex) -> Self {
        self.rules.push(Rule { name: name.to_string(), dfa: Dfa::build(re), skip: false });
        self
    }

    /// Finalizes the lexer.
    pub fn build(self) -> Lexer {
        Lexer { rules: self.rules }
    }
}

impl Lexer {
    /// Opens a streaming, zero-copy token source over `input`: tokens are
    /// matched one pull at a time and borrowed straight out of the buffer.
    ///
    /// This is the fused-pipeline entry point — a parser session consuming
    /// this source lexes and parses in one pass, with no intermediate
    /// `Vec<Lexeme>` and no per-token `String`. Skip rules (whitespace,
    /// comments) are consumed silently between pulls.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_lex::{LexerBuilder, TokenSource};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let lexer = LexerBuilder::new()
    ///     .rule("NUM", r"[0-9]+")?
    ///     .skip("WS", r" +")?
    ///     .build();
    /// let mut src = lexer.source("1 23");
    /// let t = src.next_token().unwrap()?;
    /// assert_eq!((t.kind, t.text, t.span.start), ("NUM", "1", 0));
    /// let t = src.next_token().unwrap()?;
    /// assert_eq!((t.kind, t.text, t.span.start), ("NUM", "23", 2));
    /// assert!(src.next_token().is_none());
    /// # Ok(())
    /// # }
    /// ```
    pub fn source<'l, 's>(&'l self, input: &'s str) -> SourceTokens<'l, 's> {
        SourceTokens { lexer: self, input, pos: 0 }
    }

    /// Tokenizes the whole input with maximal munch.
    ///
    /// A batch shim over [`source`](Lexer::source): drains the streaming
    /// scan into owned [`Lexeme`]s. Prefer feeding the source directly to a
    /// parser session when the vector itself is not needed.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] at the first position where no rule matches a
    /// non-empty prefix.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Lexeme>, LexError> {
        let mut src = self.source(input);
        let mut out = Vec::new();
        while let Some(item) = src.next_token() {
            let t = item?;
            out.push(Lexeme {
                kind: t.kind.to_string(),
                text: t.text.to_string(),
                offset: t.span.start,
            });
        }
        Ok(out)
    }

    /// The longest match of any rule at the head of `rest`:
    /// `(byte length, rule index)`, ties broken by rule order.
    fn match_at(&self, rest: &str) -> Option<(usize, usize)> {
        self.match_at_scanned(rest).0
    }

    /// [`match_at`](Lexer::match_at) plus the *scan extent*: the furthest
    /// byte any rule's automaton examined while deciding, whether it matched
    /// or not. The winner at this position is a pure function of exactly
    /// `rest[..extent]` — the load-bearing fact for incremental relexing
    /// ([`SourceBuffer::splice`](crate::SourceBuffer::splice)): an edit that
    /// stays clear of every decision's scan window cannot change any token.
    pub(crate) fn match_at_scanned(&self, rest: &str) -> (Option<(usize, usize)>, usize) {
        let mut best: Option<(usize, usize)> = None;
        let mut extent = 0;
        for (i, rule) in self.rules.iter().enumerate() {
            let (m, scanned) = rule.dfa.longest_match_scanned(rest);
            extent = extent.max(scanned);
            if let Some(len) = m {
                if len > 0 && best.map(|(bl, _)| len > bl).unwrap_or(true) {
                    best = Some((len, i));
                }
            }
        }
        (best, extent)
    }

    /// Name of rule `i` (the token kind it produces).
    pub(crate) fn rule_name(&self, i: usize) -> &str {
        &self.rules[i].name
    }

    /// Is rule `i` a skip rule (matches discarded)?
    pub(crate) fn rule_is_skip(&self, i: usize) -> bool {
        self.rules[i].skip
    }
}

/// The streaming scan state of one [`Lexer::source`] call: a cursor into
/// the borrowed input, advanced one maximal-munch match per pull.
#[derive(Clone)]
pub struct SourceTokens<'l, 's> {
    lexer: &'l Lexer,
    input: &'s str,
    pos: usize,
}

impl SourceTokens<'_, '_> {
    /// Byte offset of the scan head (the start of the next match).
    pub fn offset(&self) -> usize {
        self.pos
    }
}

impl TokenSource for SourceTokens<'_, '_> {
    fn next_token(&mut self) -> Option<Result<ScannedToken<'_>, LexError>> {
        while self.pos < self.input.len() {
            let rest = &self.input[self.pos..];
            let Some((len, i)) = self.lexer.match_at(rest) else {
                let err = LexError::at(self.input, self.pos);
                // Advance past the offending character so error-tolerant
                // consumers (diagnostics collectors) make progress instead
                // of pulling the same error forever.
                self.pos += rest.chars().next().map_or(1, char::len_utf8);
                return Some(Err(err));
            };
            let start = self.pos;
            self.pos += len;
            let rule = &self.lexer.rules[i];
            if rule.skip {
                continue;
            }
            return Some(Ok(ScannedToken {
                kind: &rule.name,
                text: &self.input[start..start + len],
                span: Span::new(start, start + len),
            }));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arith_lexer() -> Lexer {
        LexerBuilder::new()
            .rule("NUM", r"[0-9]+")
            .unwrap()
            .rule("PLUS", r"\+")
            .unwrap()
            .rule("TIMES", r"\*")
            .unwrap()
            .rule("LPAREN", r"\(")
            .unwrap()
            .rule("RPAREN", r"\)")
            .unwrap()
            .skip("WS", r"[ \t\n]+")
            .unwrap()
            .build()
    }

    #[test]
    fn tokenizes_arithmetic() {
        let toks = arith_lexer().tokenize("1 + 23 * (4)").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["NUM", "PLUS", "NUM", "TIMES", "LPAREN", "NUM", "RPAREN"]);
        assert_eq!(toks[2].text, "23");
        assert_eq!(toks[2].offset, 4);
    }

    #[test]
    fn longest_match_wins() {
        let lexer =
            LexerBuilder::new().rule("EQ", r"=").unwrap().rule("EQEQ", r"==").unwrap().build();
        let toks = lexer.tokenize("===").unwrap();
        let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["EQEQ", "EQ"], "maximal munch");
    }

    #[test]
    fn rule_order_breaks_ties() {
        let lexer = LexerBuilder::new()
            .rule("KW_IF", r"if")
            .unwrap()
            .rule("ID", r"[a-z]+")
            .unwrap()
            .build();
        let toks = lexer.tokenize("if").unwrap();
        assert_eq!(toks[0].kind, "KW_IF");
        let toks = lexer.tokenize("iff").unwrap();
        assert_eq!(toks[0].kind, "ID", "longer ID beats keyword prefix");
    }

    #[test]
    fn error_on_unknown_character() {
        let err = arith_lexer().tokenize("1 + §").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert_eq!(err.span.start, 4);
        assert_eq!(err.snippet, "§");
        assert_eq!(err.position.to_string(), "1:5");
        assert!(err.to_string().contains("bytes 4..6"), "{err}");
        assert!(err.to_string().contains("§"), "{err}");
    }

    #[test]
    fn error_reports_line_and_column() {
        let err = arith_lexer().tokenize("1 + 2\n3 * §4").unwrap_err();
        assert_eq!(err.position.line, 2);
        assert_eq!(err.position.column, 5);
        assert_eq!(err.snippet, "§4");
        assert_eq!(err.span, crate::Span::new(10, 13));
    }

    #[test]
    fn streaming_source_matches_tokenize() {
        use crate::TokenSource;
        let lexer = arith_lexer();
        let input = "1 + 23 * (4)";
        let batch = lexer.tokenize(input).unwrap();
        let mut src = lexer.source(input);
        let mut streamed = Vec::new();
        while let Some(t) = src.next_token() {
            let t = t.unwrap();
            assert_eq!(t.span.slice(input), t.text, "span must denote the text");
            streamed.push((t.kind.to_string(), t.text.to_string(), t.span.start));
        }
        let batch: Vec<_> = batch.into_iter().map(|l| (l.kind, l.text, l.offset)).collect();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_source_is_lazy_past_errors_and_resumes() {
        use crate::TokenSource;
        // Tokens before the bad byte stream out fine; the error only
        // surfaces when the scan head reaches it, and the scan advances
        // past the offending character so the stream is resumable.
        let lexer = arith_lexer();
        let mut src = lexer.source("12 § 34");
        assert_eq!(src.next_token().unwrap().unwrap().text, "12");
        assert_eq!(src.offset(), 2);
        let err = src.next_token().unwrap().unwrap_err();
        assert_eq!(err.span.start, 3);
        let t = src.next_token().unwrap().unwrap();
        assert_eq!((t.kind, t.text), ("NUM", "34"), "stream resumes after the error");
        assert!(src.next_token().is_none());
    }

    #[test]
    fn render_uses_the_shared_caret_path() {
        let src = "1 + 2\n3 * §4";
        let err = arith_lexer().tokenize(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("error: no token matches at 2:5"), "{rendered}");
        assert!(rendered.contains(" --> 2:5"), "{rendered}");
        assert!(rendered.contains("2 | 3 * §4"), "{rendered}");
        assert!(rendered.ends_with("    ^^"), "{rendered}");
    }

    #[test]
    fn empty_input() {
        assert!(arith_lexer().tokenize("").unwrap().is_empty());
    }

    #[test]
    fn skip_rules_are_dropped() {
        let toks = arith_lexer().tokenize("   \n\t ").unwrap();
        assert!(toks.is_empty());
    }
}
