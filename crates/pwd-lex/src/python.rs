//! A Python-like tokenizer: NAME/NUMBER/STRING/operators plus synthesized
//! NEWLINE, INDENT, DEDENT, and ENDMARKER tokens.
//!
//! The paper's evaluation parses pre-tokenized Python 3.4 source (§4.1). This
//! module reproduces that pipeline stage for our synthetic corpus: a flat
//! longest-match scan (built on the derivative DFAs of `pwd-regex`) followed
//! by the standard indentation post-pass — implicit line joining inside
//! brackets, blank-line suppression, and an indent stack that emits
//! INDENT/DEDENT pairs.
//!
//! Deliberate simplifications versus CPython's tokenizer (documented in
//! DESIGN.md): no triple-quoted strings, no f-strings, tabs count as 8
//! columns, and no Unicode identifiers. None of these affect the parser
//! workload shape.

use crate::lexer::{LexError, Lexeme, Lexer, LexerBuilder};
use std::fmt;
use std::sync::OnceLock;

/// Python keywords recognized by the tokenizer; keyword tokens use the
/// keyword itself as their kind.
pub const KEYWORDS: &[&str] = &[
    "False", "None", "True", "and", "as", "assert", "break", "class", "continue", "def", "del",
    "elif", "else", "except", "finally", "for", "from", "global", "if", "import", "in", "is",
    "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try", "while", "with", "yield",
];

/// Multi- and single-character operators/delimiters, longest first.
const OPERATORS: &[&str] = &[
    "**=", "//=", ">>=", "<<=", "==", "!=", "<=", ">=", "->", "**", "//", "<<", ">>", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "@", "&", "|", "^", "~", "<", ">",
    "(", ")", "[", "]", "{", "}", ",", ":", ".", ";", "=",
];

/// Errors from Python-like tokenization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyLexError {
    /// The flat scanner found no matching token.
    Lex(LexError),
    /// A dedent did not return to any enclosing indentation level.
    BadIndent {
        /// Byte offset of the offending line's first token.
        offset: usize,
    },
}

impl fmt::Display for PyLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyLexError::Lex(e) => write!(f, "{e}"),
            PyLexError::BadIndent { offset } => {
                write!(f, "unindent at byte {offset} does not match any outer level")
            }
        }
    }
}

impl std::error::Error for PyLexError {}

impl From<LexError> for PyLexError {
    fn from(e: LexError) -> Self {
        PyLexError::Lex(e)
    }
}

fn escape_pattern(op: &str) -> String {
    op.chars().map(|c| format!("\\{c}")).collect()
}

fn flat_lexer() -> &'static Lexer {
    static LEXER: OnceLock<Lexer> = OnceLock::new();
    LEXER.get_or_init(|| {
        let mut b = LexerBuilder::new()
            .rule("NAME", r"[A-Za-z_][A-Za-z0-9_]*")
            .expect("static pattern")
            .rule("NUMBER", r"[0-9]+(\.[0-9]+)?([eE](\+|-)?[0-9]+)?")
            .expect("static pattern")
            .rule("STRING", r#""([^"\\\n]|\\.)*""#)
            .expect("static pattern")
            .rule("STRING", r"'([^'\\\n]|\\.)*'")
            .expect("static pattern")
            .rule("NL", "\n")
            .expect("static pattern")
            .skip("JOIN", "\\\\\n")
            .expect("static pattern")
            .skip("COMMENT", r"#[^\n]*")
            .expect("static pattern")
            .skip("WS", r"[ \t\r]+")
            .expect("static pattern");
        for op in OPERATORS {
            b = b.rule(op, &escape_pattern(op)).expect("static operator pattern");
        }
        b.build()
    })
}

/// Tokenizes Python-like source into a lexeme stream with synthesized
/// NEWLINE / INDENT / DEDENT / ENDMARKER tokens, keywords classified.
///
/// # Errors
///
/// [`PyLexError::Lex`] for unrecognized characters; [`PyLexError::BadIndent`]
/// for inconsistent dedents.
///
/// # Examples
///
/// ```
/// use pwd_lex::tokenize_python;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let toks = tokenize_python("def f(x):\n    return x\n")?;
/// let kinds: Vec<&str> = toks.iter().map(|t| t.kind.as_str()).collect();
/// assert_eq!(
///     kinds,
///     ["def", "NAME", "(", "NAME", ")", ":", "NEWLINE", "INDENT",
///      "return", "NAME", "NEWLINE", "DEDENT", "ENDMARKER"],
/// );
/// # Ok(())
/// # }
/// ```
pub fn tokenize_python(src: &str) -> Result<Vec<Lexeme>, PyLexError> {
    let flat = flat_lexer().tokenize(src)?;
    let mut out: Vec<Lexeme> = Vec::with_capacity(flat.len() + 16);
    let mut indents: Vec<usize> = vec![0];
    let mut depth: usize = 0; // bracket nesting for implicit line joining
    let mut at_line_start = true;
    let mut last_nl_end = 0usize; // byte offset just after the last newline

    for lex in flat {
        match lex.kind.as_str() {
            "NL" => {
                if depth == 0 {
                    // Emit a logical NEWLINE only after actual content.
                    if out.last().is_some_and(|t| {
                        t.kind != "NEWLINE" && t.kind != "INDENT" && t.kind != "DEDENT"
                    }) {
                        out.push(Lexeme {
                            kind: "NEWLINE".into(),
                            text: "\n".into(),
                            offset: lex.offset,
                        });
                    }
                    at_line_start = true;
                }
                last_nl_end = lex.offset + 1;
            }
            _ => {
                if at_line_start && depth == 0 {
                    let col = indent_width(&src[last_nl_end..lex.offset]);
                    let current = *indents.last().expect("indent stack nonempty");
                    if col > current {
                        indents.push(col);
                        out.push(Lexeme {
                            kind: "INDENT".into(),
                            text: String::new(),
                            offset: lex.offset,
                        });
                    } else if col < current {
                        while *indents.last().expect("nonempty") > col {
                            indents.pop();
                            out.push(Lexeme {
                                kind: "DEDENT".into(),
                                text: String::new(),
                                offset: lex.offset,
                            });
                        }
                        if *indents.last().expect("nonempty") != col {
                            return Err(PyLexError::BadIndent { offset: lex.offset });
                        }
                    }
                    at_line_start = false;
                }
                match lex.kind.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    _ => {}
                }
                let kind = if lex.kind == "NAME" && KEYWORDS.contains(&lex.text.as_str()) {
                    lex.text.clone()
                } else {
                    lex.kind
                };
                out.push(Lexeme { kind, text: lex.text, offset: lex.offset });
            }
        }
    }
    // Final NEWLINE if the file didn't end with one.
    if out.last().is_some_and(|t| t.kind != "NEWLINE" && t.kind != "INDENT" && t.kind != "DEDENT") {
        out.push(Lexeme { kind: "NEWLINE".into(), text: "\n".into(), offset: src.len() });
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(Lexeme { kind: "DEDENT".into(), text: String::new(), offset: src.len() });
    }
    out.push(Lexeme { kind: "ENDMARKER".into(), text: String::new(), offset: src.len() });
    Ok(out)
}

/// Width of a whitespace prefix: spaces count 1, tabs advance to the next
/// multiple of 8 (CPython's rule).
fn indent_width(ws: &str) -> usize {
    let mut col = 0;
    for c in ws.chars() {
        match c {
            '\t' => col = (col / 8 + 1) * 8,
            _ => col += 1,
        }
    }
    col
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<String> {
        tokenize_python(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_statement() {
        assert_eq!(kinds("x = 1\n"), ["NAME", "=", "NUMBER", "NEWLINE", "ENDMARKER"]);
    }

    #[test]
    fn keywords_are_classified() {
        let k = kinds("if x:\n    pass\n");
        assert_eq!(
            k,
            ["if", "NAME", ":", "NEWLINE", "INDENT", "pass", "NEWLINE", "DEDENT", "ENDMARKER"]
        );
    }

    #[test]
    fn nested_indentation() {
        let src = "def f():\n    if x:\n        return 1\n    return 0\n";
        let k = kinds(src);
        let indents = k.iter().filter(|s| *s == "INDENT").count();
        let dedents = k.iter().filter(|s| *s == "DEDENT").count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2, "{k:?}");
    }

    #[test]
    fn blank_lines_and_comments_are_suppressed() {
        let src = "x = 1\n\n# a comment\n\ny = 2\n";
        assert_eq!(
            kinds(src),
            ["NAME", "=", "NUMBER", "NEWLINE", "NAME", "=", "NUMBER", "NEWLINE", "ENDMARKER"]
        );
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let src = "f(1,\n  2)\n";
        let k = kinds(src);
        assert_eq!(k, ["NAME", "(", "NUMBER", ",", "NUMBER", ")", "NEWLINE", "ENDMARKER"]);
    }

    #[test]
    fn explicit_backslash_joining() {
        let src = "x = 1 + \\\n    2\n";
        let k = kinds(src);
        assert_eq!(k, ["NAME", "=", "NUMBER", "+", "NUMBER", "NEWLINE", "ENDMARKER"]);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize_python("s = \"a\\\"b\" + 'c\\'d'\n").unwrap();
        let strings: Vec<&str> =
            toks.iter().filter(|t| t.kind == "STRING").map(|t| t.text.as_str()).collect();
        assert_eq!(strings, ["\"a\\\"b\"", "'c\\'d'"]);
    }

    #[test]
    fn multi_char_operators() {
        let k = kinds("x **= y // z\n");
        assert_eq!(k, ["NAME", "**=", "NAME", "//", "NAME", "NEWLINE", "ENDMARKER"]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize_python("a = 1 + 2.5 + 3e-7\n").unwrap();
        let nums: Vec<&str> =
            toks.iter().filter(|t| t.kind == "NUMBER").map(|t| t.text.as_str()).collect();
        assert_eq!(nums, ["1", "2.5", "3e-7"]);
    }

    #[test]
    fn bad_indent_is_an_error() {
        let src = "if x:\n        pass\n    pass\n";
        match tokenize_python(src) {
            Err(PyLexError::BadIndent { .. }) => {}
            other => panic!("expected BadIndent, got {other:?}"),
        }
    }

    #[test]
    fn unknown_character_is_an_error() {
        match tokenize_python("x = §\n") {
            Err(PyLexError::Lex(e)) => {
                assert!(e.span.start > 0);
                assert_eq!(e.position.line, 1);
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn missing_trailing_newline_still_closes() {
        let k = kinds("if x:\n    pass");
        assert_eq!(k.last().unwrap(), "ENDMARKER");
        assert!(k.contains(&"DEDENT".to_string()));
        assert_eq!(k.iter().filter(|s| *s == "NEWLINE").count(), 2);
    }

    #[test]
    fn endmarker_always_present() {
        assert_eq!(kinds(""), ["ENDMARKER"]);
        assert_eq!(kinds("\n\n"), ["ENDMARKER"]);
    }

    #[test]
    fn tab_indentation() {
        let k = kinds("if x:\n\tpass\n");
        assert!(k.contains(&"INDENT".to_string()));
    }
}
