//! Pull-based token streams: the [`TokenSource`] trait and its adapters.
//!
//! The PLDI 2016 paper's key observation is that the parser state after `k`
//! tokens is itself a first-class language — which makes parsing with
//! derivatives *naturally* streaming: a parser never needs to see the whole
//! input, only the next token. [`TokenSource`] is the input half of that
//! pipeline: a pull-based stream of `(kind, span)` items over a borrowed
//! input buffer, so lexing and parsing fuse into one pass with **no
//! intermediate `Vec<Lexeme>`** and no per-token `String` allocation.
//!
//! Three producers are provided:
//!
//! * [`Lexer::source`](crate::Lexer::source) — the streaming lexer: scans
//!   the input lazily, one maximal-munch match per pull;
//! * [`LexemeSource`] — adapts an already-materialized `&[Lexeme]` slice
//!   (the legacy batch shape) to the streaming interface;
//! * [`KindSource`] — adapts a bare `&[&str]` kind sequence (grammar-level
//!   tests and differential drivers), with token-index spans.
//!
//! The consumer half is a parser `Session` (see `derp::api`): every backend
//! accepts any `TokenSource`, so the same stream can drive PWD, Earley, or
//! GLR without materializing tokens.

use crate::lexer::{LexError, Lexeme};
use crate::span::Span;

/// One token pulled from a [`TokenSource`]: a kind name, the matched text,
/// and its byte [`Span`] — all borrowed, nothing owned.
///
/// The borrows are tied to the pull (`next_token` takes `&mut self`), so a
/// scanned token must be consumed — fed to a parser, interned, or copied —
/// before the next pull. That is exactly the restriction that lets the
/// lexer run zero-copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedToken<'a> {
    /// The token kind (lexer rule name / grammar terminal).
    pub kind: &'a str,
    /// The matched text (for [`KindSource`], the kind itself).
    pub text: &'a str,
    /// Byte range of the match in the underlying buffer (token-index range
    /// for [`KindSource`], which has no buffer).
    pub span: Span,
}

/// A pull-based stream of `(kind, span)` tokens over a borrowed input
/// buffer — the streaming boundary between lexing and parsing.
///
/// `None` means end of input; `Some(Err(_))` reports the position where no
/// rule matched (with the offending slice). Errors need not be terminal:
/// the [`Lexer::source`](crate::Lexer::source) stream advances past the
/// offending character, so an error-tolerant consumer can keep pulling to
/// collect diagnostics. Implementations are free to be lazy — that stream
/// does not touch byte `i` until every token before `i` has been pulled.
pub trait TokenSource {
    /// Pulls the next token.
    ///
    /// The returned borrows live until the next call — consume the token
    /// before pulling again.
    fn next_token(&mut self) -> Option<Result<ScannedToken<'_>, LexError>>;
}

/// Streams a pre-lexed `&[Lexeme]` slice — the adapter that lets batch
/// callers ride the streaming pipeline unchanged.
#[derive(Debug, Clone)]
pub struct LexemeSource<'a> {
    lexemes: &'a [Lexeme],
    pos: usize,
}

impl<'a> LexemeSource<'a> {
    /// Wraps a lexeme slice.
    pub fn new(lexemes: &'a [Lexeme]) -> LexemeSource<'a> {
        LexemeSource { lexemes, pos: 0 }
    }
}

impl TokenSource for LexemeSource<'_> {
    fn next_token(&mut self) -> Option<Result<ScannedToken<'_>, LexError>> {
        let l = self.lexemes.get(self.pos)?;
        self.pos += 1;
        Some(Ok(ScannedToken {
            kind: &l.kind,
            text: &l.text,
            span: Span::new(l.offset, l.offset + l.text.len()),
        }))
    }
}

/// Streams a bare kind sequence (`&[&str]`), using the kind as its own
/// text. Spans are token indices, not byte offsets — there is no underlying
/// buffer.
#[derive(Debug, Clone)]
pub struct KindSource<'a> {
    kinds: &'a [&'a str],
    pos: usize,
}

impl<'a> KindSource<'a> {
    /// Wraps a kind sequence.
    pub fn new(kinds: &'a [&'a str]) -> KindSource<'a> {
        KindSource { kinds, pos: 0 }
    }
}

impl TokenSource for KindSource<'_> {
    fn next_token(&mut self) -> Option<Result<ScannedToken<'_>, LexError>> {
        let k = *self.kinds.get(self.pos)?;
        self.pos += 1;
        Some(Ok(ScannedToken { kind: k, text: k, span: Span::new(self.pos - 1, self.pos) }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexeme_source_replays_slice_with_spans() {
        let lexemes = vec![
            Lexeme { kind: "ID".into(), text: "ab".into(), offset: 0 },
            Lexeme { kind: "NUM".into(), text: "42".into(), offset: 3 },
        ];
        let mut src = LexemeSource::new(&lexemes);
        let t = src.next_token().unwrap().unwrap();
        assert_eq!((t.kind, t.text, t.span), ("ID", "ab", Span::new(0, 2)));
        let t = src.next_token().unwrap().unwrap();
        assert_eq!((t.kind, t.text, t.span), ("NUM", "42", Span::new(3, 5)));
        assert!(src.next_token().is_none());
    }

    #[test]
    fn kind_source_uses_kind_as_text() {
        let kinds = ["a", "b"];
        let mut src = KindSource::new(&kinds);
        let t = src.next_token().unwrap().unwrap();
        assert_eq!((t.kind, t.text), ("a", "a"));
        assert_eq!(t.span, Span::new(0, 1));
        assert!(src.next_token().unwrap().is_ok());
        assert!(src.next_token().is_none());
    }

    #[test]
    fn token_source_is_object_safe() {
        let kinds = ["x"];
        let mut src = KindSource::new(&kinds);
        let dyn_src: &mut dyn TokenSource = &mut src;
        assert_eq!(dyn_src.next_token().unwrap().unwrap().kind, "x");
    }
}
