//! An editable, incrementally-relexed source buffer.
//!
//! [`SourceBuffer`] keeps a source text, its [`SourceMap`], and its full
//! token stream in sync across byte-range edits. [`SourceBuffer::splice`]
//! relexes only a bounded window around the edit instead of the whole
//! buffer, in the Wagner–Graham incremental-lexing style:
//!
//! 1. **Damage detection.** Every token records its *scan extent* — the
//!    furthest byte any rule's automaton examined while deciding it
//!    (including lookahead past the match and the skip-rule scans that
//!    preceded it). A token whose extent stays at or before the edit start
//!    cannot be affected by the edit, so a binary search over the running
//!    maximum of extents finds the first damaged token in `O(log n)`.
//! 2. **Window relex.** Scanning restarts at the last undamaged token's
//!    end and runs forward through the edited region.
//! 3. **Resynchronization.** Once the scan head passes the inserted text,
//!    each new token boundary is checked (binary search, `O(log n)`)
//!    against the old boundaries shifted by the edit's length delta; on
//!    the first hit the old suffix tokens are reused verbatim (offsets
//!    shifted) — the remaining text is byte-identical there, and maximal
//!    munch is a pure function of the text ahead of a boundary.
//!
//! The returned [`TokenEdit`] describes the change as a token-level splice
//! (`start`, `removed`, `inserted`), exactly the shape a parser-session
//! splice consumes. A failed relex (no rule matches) leaves the buffer
//! untouched — edits are atomic.

use crate::lexer::{LexError, Lexeme, Lexer};
use crate::span::{SourceMap, Span};

/// One token of the buffer: which rule produced it, where its text lives,
/// and how far its match decision looked.
#[derive(Debug, Clone, Copy)]
struct Tok {
    /// Index of the producing rule in the owning [`Lexer`].
    rule: usize,
    /// Byte range of the matched text.
    span: Span,
    /// One past the furthest byte examined while producing this token:
    /// covers the whole decision window from the previous token's end,
    /// including skip-rule scans and failed-rule lookahead. The token's
    /// (kind, length) is a pure function of the bytes below this extent.
    scan_end: usize,
}

/// The token-level description of what a [`SourceBuffer::splice`] changed:
/// replace `removed` tokens starting at index `start` with `inserted`.
///
/// Tokens after the splice point are guaranteed unchanged up to a uniform
/// byte-offset shift, so a parser holding state per token can reuse
/// everything outside `start..start + removed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenEdit {
    /// Index of the first replaced token.
    pub start: usize,
    /// Number of old tokens replaced.
    pub removed: usize,
    /// The freshly lexed tokens taking their place.
    pub inserted: Vec<Lexeme>,
}

/// An editable source buffer that keeps its token stream and [`SourceMap`]
/// incrementally up to date under byte-range edits.
///
/// # Examples
///
/// ```
/// use pwd_lex::{LexerBuilder, SourceBuffer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lexer = LexerBuilder::new()
///     .rule("NUM", r"[0-9]+")?
///     .rule("ID", r"[a-z]+")?
///     .skip("WS", r" +")?
///     .build();
/// let mut buf = SourceBuffer::new(&lexer, "abc 12 def")?;
/// assert_eq!(buf.token_count(), 3);
/// // Replace "12" with "9 x": only the damaged window is relexed.
/// let edit = buf.splice(4, 6, "9 x")?;
/// assert_eq!(buf.text(), "abc 9 x def");
/// assert_eq!(edit.start, 1);
/// assert_eq!(edit.removed, 1);
/// assert_eq!(edit.inserted.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct SourceBuffer<'l> {
    lexer: &'l Lexer,
    map: SourceMap,
    toks: Vec<Tok>,
    /// `prefix_scan_max[i]` = max of `toks[..=i].scan_end` — monotone, so
    /// damage detection can binary-search it even though individual scan
    /// extents are not sorted (lookahead length varies per token).
    prefix_scan_max: Vec<usize>,
}

impl<'l> SourceBuffer<'l> {
    /// Lexes `text` from scratch and builds the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] at the first position where no rule matches; the
    /// buffer is only constructed for fully lexable text, which is what lets
    /// [`splice`](SourceBuffer::splice) be atomic.
    pub fn new(lexer: &'l Lexer, text: &str) -> Result<SourceBuffer<'l>, LexError> {
        let (toks, _) = relex(lexer, text, 0, None)?;
        let mut buf =
            SourceBuffer { lexer, map: SourceMap::new(text), toks, prefix_scan_max: Vec::new() };
        buf.rebuild_scan_max(0);
        Ok(buf)
    }

    /// The current text.
    pub fn text(&self) -> &str {
        self.map.source()
    }

    /// The up-to-date [`SourceMap`] for the current text.
    pub fn map(&self) -> &SourceMap {
        &self.map
    }

    /// Number of (non-skip) tokens in the buffer.
    pub fn token_count(&self) -> usize {
        self.toks.len()
    }

    /// The `i`-th token as an owned [`Lexeme`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lexeme(&self, i: usize) -> Lexeme {
        let t = &self.toks[i];
        Lexeme {
            kind: self.lexer.rule_name(t.rule).to_string(),
            text: t.span.slice(self.map.source()).to_string(),
            offset: t.span.start,
        }
    }

    /// All tokens as owned [`Lexeme`]s (a from-scratch-equivalent view).
    pub fn lexemes(&self) -> Vec<Lexeme> {
        (0..self.toks.len()).map(|i| self.lexeme(i)).collect()
    }

    /// Byte span of the `i`-th token.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn token_span(&self, i: usize) -> Span {
        self.toks[i].span
    }

    /// Replaces the byte range `start..end` with `replacement`, relexing
    /// only the damaged window and returning the token-level [`TokenEdit`].
    ///
    /// On success the text, token stream, and [`SourceMap`] are all
    /// updated; on error (the edited text has an unlexable window) the
    /// buffer is left exactly as it was.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] if no rule matches somewhere in the relexed
    /// window of the edited text.
    ///
    /// # Panics
    ///
    /// Panics if `start..end` is out of bounds, inverted, or splits a UTF-8
    /// character.
    pub fn splice(
        &mut self,
        start: usize,
        end: usize,
        replacement: &str,
    ) -> Result<TokenEdit, LexError> {
        assert!(start <= end && end <= self.map.source().len(), "splice range out of bounds");
        let delta = replacement.len() as isize - (end - start) as isize;

        // 1. Damage detection: tokens whose decision window ends at or
        // before the edit start are untouched. `prefix_scan_max` is
        // monotone, so the first damaged index is a partition point.
        let d = self.prefix_scan_max.partition_point(|&m| m <= start);
        let relex_from = if d == 0 { 0 } else { self.toks[d - 1].span.end };

        // 2. Build the edited text and relex forward from the last
        // undamaged boundary. Nothing is committed until relexing succeeds.
        let mut new_text =
            String::with_capacity((self.map.source().len() as isize + delta) as usize);
        new_text.push_str(&self.map.source()[..start]);
        new_text.push_str(replacement);
        new_text.push_str(&self.map.source()[end..]);

        let resync = ResyncIndex {
            toks: &self.toks,
            first: d,
            new_edit_end: start + replacement.len(),
            delta,
        };
        let (fresh, reused_from) = relex(self.lexer, &new_text, relex_from, Some(&resync))?;

        // 3. Commit: splice the token vector, shift the reused suffix, and
        // repair the newline index.
        let reused_from = reused_from.unwrap_or(self.toks.len());
        let removed = reused_from - d;
        let inserted: Vec<Lexeme> = fresh
            .iter()
            .map(|t| Lexeme {
                kind: self.lexer.rule_name(t.rule).to_string(),
                text: new_text[t.span.start..t.span.end].to_string(),
                offset: t.span.start,
            })
            .collect();
        let fresh_len = fresh.len();
        let mut tail: Vec<Tok> = self.toks[reused_from..]
            .iter()
            .map(|t| Tok {
                rule: t.rule,
                span: Span::new(
                    (t.span.start as isize + delta) as usize,
                    (t.span.end as isize + delta) as usize,
                ),
                scan_end: (t.scan_end as isize + delta) as usize,
            })
            .collect();
        self.toks.truncate(d);
        self.toks.extend(fresh);
        self.toks.append(&mut tail);
        self.map.splice(start, end, replacement);
        self.rebuild_scan_max(d);
        debug_assert_eq!(self.map.source(), new_text);
        let _ = fresh_len;
        Ok(TokenEdit { start: d, removed, inserted })
    }

    /// Recomputes `prefix_scan_max` from index `from` onward.
    fn rebuild_scan_max(&mut self, from: usize) {
        self.prefix_scan_max.truncate(from);
        let mut running = if from == 0 { 0 } else { self.prefix_scan_max[from - 1] };
        for t in &self.toks[from..] {
            running = running.max(t.scan_end);
            self.prefix_scan_max.push(running);
        }
    }
}

/// The old-token index a relex consults to stop early: once the scan head
/// is past the inserted text, a head position that lands exactly on an old
/// decision-window boundary (shifted by `delta`) means the rest of the old
/// stream can be reused verbatim.
struct ResyncIndex<'a> {
    toks: &'a [Tok],
    /// First damaged token index — reuse may only start at or after it.
    first: usize,
    /// End of the replacement text in new-text coordinates.
    new_edit_end: usize,
    /// `new_len - old_len` of the edit.
    delta: isize,
}

impl ResyncIndex<'_> {
    /// If lexing from `pos` (new coordinates) is guaranteed to reproduce
    /// the old suffix `toks[j..]`, returns `j`.
    fn try_resync(&self, pos: usize) -> Option<usize> {
        if pos < self.new_edit_end {
            return None;
        }
        let p_old = pos as isize - self.delta;
        if p_old < 0 {
            return None;
        }
        let p_old = p_old as usize;
        // Old token j's decision window starts at toks[j-1].span.end (token
        // ends are strictly increasing, so binary search applies). Landing
        // there with byte-identical text ahead means maximal munch replays
        // the old decisions exactly.
        let k = self.toks.binary_search_by(|t| t.span.end.cmp(&p_old)).ok()?;
        let j = k + 1;
        (j > self.first && j <= self.toks.len()).then_some(j)
    }
}

/// Scans `text` from byte `pos` to the end (or to a resync point), tracking
/// per-token scan extents. Returns the fresh tokens and, if a resync hit,
/// the old-token index the caller may reuse from.
fn relex(
    lexer: &Lexer,
    text: &str,
    mut pos: usize,
    resync: Option<&ResyncIndex<'_>>,
) -> Result<(Vec<Tok>, Option<usize>), LexError> {
    let mut out = Vec::new();
    // Furthest byte examined since the last emitted token's end: skip-rule
    // scans and failed lookahead in the gap all charge the *next* token,
    // whose decision they precede.
    let mut window_max = pos;
    loop {
        if let Some(r) = resync {
            if let Some(j) = r.try_resync(pos) {
                return Ok((out, Some(j)));
            }
        }
        if pos >= text.len() {
            return Ok((out, None));
        }
        let rest = &text[pos..];
        let (m, extent) = lexer.match_at_scanned(rest);
        // A scan that ran to end-of-input also depended on the *absence* of
        // a next byte — maximal munch might have matched longer. Count EOF
        // as one extra examined position so appends damage the final token.
        let scan_to = if pos + extent >= text.len() { text.len() + 1 } else { pos + extent };
        window_max = window_max.max(scan_to);
        let Some((len, i)) = m else {
            return Err(LexError::at(text, pos));
        };
        if lexer.rule_is_skip(i) {
            pos += len;
            continue;
        }
        out.push(Tok { rule: i, span: Span::new(pos, pos + len), scan_end: window_max });
        pos += len;
        window_max = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::LexerBuilder;
    use crate::span::Position;

    /// splitmix64 — the deterministic RNG idiom the repo's property tests use.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }
    }

    fn pl0ish_lexer() -> Lexer {
        LexerBuilder::new()
            .rule("ASSIGN", r":=")
            .unwrap()
            .rule("LE", r"<=")
            .unwrap()
            .rule("LT", r"<")
            .unwrap()
            .rule("SEMI", r";")
            .unwrap()
            .rule("PLUS", r"\+")
            .unwrap()
            .rule("KW_IF", r"if")
            .unwrap()
            .rule("ID", r"[a-z][a-z0-9]*")
            .unwrap()
            .rule("NUM", r"[0-9]+")
            .unwrap()
            .skip("WS", r"[ \t\n]+")
            .unwrap()
            .skip("COMMENT", r"#[a-z ]*~")
            .unwrap()
            .build()
    }

    /// The oracle: a spliced buffer must be indistinguishable from a buffer
    /// built from scratch over the edited text — same lexemes, same
    /// line:column for every token.
    fn assert_matches_scratch(lexer: &Lexer, buf: &SourceBuffer<'_>) {
        let scratch = SourceBuffer::new(lexer, buf.text()).expect("scratch lex");
        assert_eq!(buf.lexemes(), scratch.lexemes(), "text: {:?}", buf.text());
        for i in 0..buf.token_count() {
            let span = buf.token_span(i);
            assert_eq!(
                buf.map().position(span.start),
                scratch.map().position(span.start),
                "token {i} start position, text: {:?}",
                buf.text()
            );
            assert_eq!(
                buf.map().position(span.end),
                scratch.map().position(span.end),
                "token {i} end position, text: {:?}",
                buf.text()
            );
        }
        assert_eq!(buf.map().lines(), scratch.map().lines());
    }

    #[test]
    fn splice_middle_replaces_one_token() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "abc 12 def").unwrap();
        let edit = buf.splice(4, 6, "345").unwrap();
        assert_eq!(buf.text(), "abc 345 def");
        assert_eq!(edit.start, 1);
        assert_eq!(edit.removed, 1);
        assert_eq!(edit.inserted.len(), 1);
        assert_eq!(edit.inserted[0].text, "345");
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn splice_reuses_the_tail() {
        let lexer = pl0ish_lexer();
        let src = "a + b; c + d; e + f; g + h";
        let mut buf = SourceBuffer::new(&lexer, src).unwrap();
        let edit = buf.splice(4, 5, "bb").unwrap();
        assert_eq!(buf.text(), "a + bb; c + d; e + f; g + h");
        // Only the token containing the edit is replaced; the long tail is
        // reused, not relexed.
        assert_eq!(edit.removed, 1);
        assert_eq!(edit.inserted.len(), 1);
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn insertion_at_token_end_extends_the_token() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "ab; cd").unwrap();
        // Maximal munch: inserting at ab's end must merge, not append.
        let edit = buf.splice(2, 2, "c").unwrap();
        assert_eq!(buf.text(), "abc; cd");
        assert_eq!(buf.lexeme(0).text, "abc");
        assert!(edit.start == 0, "the extended token is damaged");
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn edit_splitting_a_two_char_operator() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "a <= b").unwrap();
        assert_eq!(buf.lexeme(1).kind, "LE");
        // Deleting the '=' turns LE into LT.
        buf.splice(3, 4, "").unwrap();
        assert_eq!(buf.text(), "a < b");
        assert_eq!(buf.lexeme(1).kind, "LT");
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn edit_inside_skip_comment_damages_across_it() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "a #x ok~ b; c").unwrap();
        assert_eq!(buf.token_count(), 4);
        // Editing *inside* the skipped comment changes no tokens, but the
        // damage detector must still see it (the comment bytes are part of
        // the next token's decision window).
        let edit = buf.splice(5, 7, "no").unwrap();
        assert_eq!(buf.text(), "a #x no~ b; c");
        assert_eq!(buf.token_count(), 4);
        assert_eq!(edit.start, 1, "damage starts at the token after the comment");
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn failed_splice_is_atomic() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "a #x~ b").unwrap();
        let before_text = buf.text().to_string();
        let before_lex = buf.lexemes();
        // Deleting the comment terminator leaves an unlexable '#…' window.
        let err = buf.splice(4, 5, " ").unwrap_err();
        assert!(err.offset() >= 2, "error is inside the damaged window");
        assert_eq!(buf.text(), before_text, "failed splice must not commit");
        assert_eq!(buf.lexemes(), before_lex);
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn append_and_prepend() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "b; c").unwrap();
        let e = buf.splice(0, 0, "a; ").unwrap();
        assert_eq!(e.start, 0);
        assert_matches_scratch(&lexer, &buf);
        let len = buf.text().len();
        let e = buf.splice(len, len, "; d").unwrap();
        assert_eq!(buf.text(), "a; b; c; d");
        assert_eq!(e.start + e.inserted.len(), buf.token_count());
        assert_matches_scratch(&lexer, &buf);
    }

    #[test]
    fn newline_edits_keep_positions_correct() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "a;\nbb;\nccc;\n").unwrap();
        // Insert a newline mid-buffer…
        buf.splice(3, 3, "\n\n").unwrap();
        assert_matches_scratch(&lexer, &buf);
        // …and delete one, shifting every later line.
        let nl = buf.text().find('\n').unwrap();
        buf.splice(nl, nl + 1, " ").unwrap();
        assert_matches_scratch(&lexer, &buf);
        let last = buf.token_count() - 1;
        let pos = buf.map().position(buf.token_span(last).start);
        assert_eq!(pos, Position::of(buf.text(), buf.token_span(last).start));
    }

    #[test]
    fn keyword_identifier_boundary() {
        let lexer = pl0ish_lexer();
        let mut buf = SourceBuffer::new(&lexer, "if x").unwrap();
        assert_eq!(buf.lexeme(0).kind, "KW_IF");
        // 'if' + 'f' = 'iff': longer ID beats the keyword.
        buf.splice(2, 2, "f").unwrap();
        assert_eq!(buf.lexeme(0).kind, "ID");
        assert_matches_scratch(&lexer, &buf);
        // And deleting it flips back.
        buf.splice(2, 3, "").unwrap();
        assert_eq!(buf.lexeme(0).kind, "KW_IF");
        assert_matches_scratch(&lexer, &buf);
    }

    /// Satellite: property test — after random byte-range edits (including
    /// ones adding/removing newlines and landing mid-token), every token's
    /// line:column equals a from-scratch SourceMap build's answer.
    #[test]
    fn property_random_edits_match_scratch() {
        let lexer = pl0ish_lexer();
        let alphabet =
            ["a", "bc", "7", "42", ";", "+", "<", "<=", ":=", " ", "\n", "if", "#ok~", "\t"];
        for case in 0..60u64 {
            let mut rng = Rng(0xDEC0DE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Seed text: a random lexable soup.
            let mut text = String::new();
            for _ in 0..rng.below(40) {
                text.push_str(alphabet[rng.below(alphabet.len())]);
            }
            let Ok(mut buf) = SourceBuffer::new(&lexer, &text) else { continue };
            for _ in 0..8 {
                // Random char-aligned byte range.
                let starts: Vec<usize> =
                    buf.text().char_indices().map(|(i, _)| i).chain([buf.text().len()]).collect();
                let a = starts[rng.below(starts.len())];
                let b = starts[rng.below(starts.len())];
                let (start, end) = (a.min(b), a.max(b));
                let mut repl = String::new();
                for _ in 0..rng.below(4) {
                    repl.push_str(alphabet[rng.below(alphabet.len())]);
                }
                match buf.splice(start, end, &repl) {
                    Ok(_) => assert_matches_scratch(&lexer, &buf),
                    Err(_) => {
                        // Atomic: the buffer must still agree with scratch.
                        assert_matches_scratch(&lexer, &buf);
                    }
                }
            }
        }
    }

    /// The incremental guarantee, not just correctness: a one-byte edit in
    /// the middle of a large buffer must not relex the whole tail.
    #[test]
    fn middle_edit_reuses_most_tokens() {
        let lexer = pl0ish_lexer();
        let mut src = String::new();
        for i in 0..500 {
            src.push_str(&format!("v{i} := {i}; "));
        }
        let mut buf = SourceBuffer::new(&lexer, &src).unwrap();
        let total = buf.token_count();
        let mid = buf.token_span(total / 2).start;
        let edit = buf.splice(mid, mid + 1, "w").unwrap();
        // The edit replaces a handful of tokens at most; everything after
        // the damage window is reused.
        assert!(edit.removed <= 4, "removed {} tokens", edit.removed);
        assert!(edit.inserted.len() <= 4, "inserted {} tokens", edit.inserted.len());
        assert_matches_scratch(&lexer, &buf);
    }
}
