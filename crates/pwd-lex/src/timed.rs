//! [`TimedSource`]: a [`TokenSource`] adapter that measures time spent
//! lexing.
//!
//! In the fused lex/parse pipeline there is no "lex phase" on the wall
//! clock — scanning happens inside each `next_token` pull, interleaved with
//! derivative steps. To attribute time to lexing anyway, this wrapper
//! brackets every pull with a monotonic clock read and accumulates the
//! total, plus a token count, without changing the stream it forwards.
//!
//! This is the *opt-in* lex probe: the wrapper only exists when a caller
//! constructs it (e.g. `probe trace`, or a serve worker with observability
//! enabled), so the zero-overhead contract of `pwd-obs` holds — an unwrapped
//! source never reads a clock. It deliberately depends only on `std::time`,
//! keeping `pwd-lex` free of the observability crates.

use crate::lexer::LexError;
use crate::source::{ScannedToken, TokenSource};
use std::time::Instant;

/// Wraps a [`TokenSource`], accumulating the nanoseconds spent inside the
/// inner `next_token` and the number of tokens produced.
#[derive(Debug)]
pub struct TimedSource<S> {
    inner: S,
    lex_nanos: u64,
    tokens: u64,
}

impl<S: TokenSource> TimedSource<S> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: S) -> TimedSource<S> {
        TimedSource { inner, lex_nanos: 0, tokens: 0 }
    }

    /// Total nanoseconds spent inside the inner source's `next_token`,
    /// including the final `None`/error pulls.
    pub fn lex_nanos(&self) -> u64 {
        self.lex_nanos
    }

    /// Number of tokens successfully produced so far (errors and the final
    /// `None` are not counted).
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Unwraps, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TokenSource> TokenSource for TimedSource<S> {
    fn next_token(&mut self) -> Option<Result<ScannedToken<'_>, LexError>> {
        let t0 = Instant::now();
        let tok = self.inner.next_token();
        self.lex_nanos = self.lex_nanos.saturating_add(t0.elapsed().as_nanos() as u64);
        if let Some(Ok(_)) = tok {
            self.tokens += 1;
        }
        tok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::KindSource;

    #[test]
    fn counts_tokens_and_accumulates_time() {
        let kinds = ["a", "b", "c"];
        let mut src = TimedSource::new(KindSource::new(&kinds));
        let mut pulled = 0;
        while let Some(t) = src.next_token() {
            assert!(t.is_ok());
            pulled += 1;
        }
        assert_eq!(pulled, 3);
        assert_eq!(src.tokens(), 3);
        // Monotonic clocks can legitimately report 0ns between adjacent
        // reads, so only the counter invariants are asserted here.
        let _ = src.lex_nanos();
    }

    #[test]
    fn forwards_stream_unchanged() {
        let kinds = ["x", "y"];
        let mut plain = KindSource::new(&kinds);
        let mut timed = TimedSource::new(KindSource::new(&kinds));
        loop {
            let a = plain.next_token().map(|r| r.map(|t| (t.kind.to_string(), t.span)));
            let b = timed.next_token().map(|r| r.map(|t| (t.kind.to_string(), t.span)));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
