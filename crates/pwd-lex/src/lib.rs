//! Table-driven lexers built on Brzozowski-derivative DFAs, plus a
//! Python-like tokenizer with INDENT/DEDENT synthesis.
//!
//! This crate is the tokenization substrate of the `derp` reproduction of
//! *On the Complexity and Performance of Parsing with Derivatives* (PLDI
//! 2016). The paper's evaluation parses pre-tokenized Python source; this
//! crate produces equivalent token streams for the synthetic corpus, using
//! the derivative-based regex engine of `pwd-regex` for the scanning
//! automata.
//!
//! # Quick start
//!
//! ```
//! use pwd_lex::{tokenize_python, LexerBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generic longest-match lexing:
//! let lexer = LexerBuilder::new()
//!     .rule("WORD", r"[a-z]+")?
//!     .skip("WS", r" +")?
//!     .build();
//! assert_eq!(lexer.tokenize("ab cd")?.len(), 2);
//!
//! // Python-like tokenization with layout tokens:
//! let toks = tokenize_python("x = 1\n")?;
//! assert_eq!(toks.last().unwrap().kind, "ENDMARKER");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod python;
mod span;

pub use lexer::{LexError, Lexeme, Lexer, LexerBuilder};
pub use python::{tokenize_python, PyLexError, KEYWORDS};
pub use span::{LineMap, Position};
