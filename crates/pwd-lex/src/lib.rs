//! Table-driven lexers built on Brzozowski-derivative DFAs, plus a
//! Python-like tokenizer with INDENT/DEDENT synthesis.
//!
//! This crate is the tokenization substrate of the `derp` reproduction of
//! *On the Complexity and Performance of Parsing with Derivatives* (PLDI
//! 2016). The paper's evaluation parses pre-tokenized Python source; this
//! crate produces equivalent token streams for the synthetic corpus, using
//! the derivative-based regex engine of `pwd-regex` for the scanning
//! automata.
//!
//! The streaming interface is primary: [`Lexer::source`] returns a
//! [`TokenSource`] — a pull-based stream of zero-copy `(kind, span)` tokens
//! over the borrowed input — which a parser session consumes token by token,
//! fusing lex and parse into one pass. [`Lexer::tokenize`] is a batch shim
//! over the same scan for callers that want an owned `Vec<Lexeme>`.
//!
//! # Quick start
//!
//! ```
//! use pwd_lex::{tokenize_python, LexerBuilder, TokenSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lexer = LexerBuilder::new()
//!     .rule("WORD", r"[a-z]+")?
//!     .skip("WS", r" +")?
//!     .build();
//!
//! // Streaming, zero-copy lexing:
//! let mut src = lexer.source("ab cd");
//! assert_eq!(src.next_token().unwrap()?.text, "ab");
//!
//! // Batch lexing (a shim over the stream):
//! assert_eq!(lexer.tokenize("ab cd")?.len(), 2);
//!
//! // Python-like tokenization with layout tokens:
//! let toks = tokenize_python("x = 1\n")?;
//! assert_eq!(toks.last().unwrap().kind, "ENDMARKER");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod lexer;
mod python;
mod source;
mod span;
mod timed;

pub use buffer::{SourceBuffer, TokenEdit};
pub use lexer::{LexError, Lexeme, Lexer, LexerBuilder, SourceTokens};
pub use python::{tokenize_python, PyLexError, KEYWORDS};
pub use source::{KindSource, LexemeSource, ScannedToken, TokenSource};
pub use span::{LineMap, Position, SourceMap, Span};
pub use timed::TimedSource;
