//! Observability primitives for the PWD stack: fixed-bucket histograms,
//! per-phase span accounting, and two exporters (Chrome `trace_event` JSON
//! and Prometheus-style text exposition).
//!
//! This crate is deliberately dependency-free and engine-agnostic: it knows
//! nothing about derivatives, sessions, or services. The engine crates
//! (`pwd-core`, `derp`, `pwd-serve`) thread these types through their hot
//! paths behind the zero-overhead contract below.
//!
//! # The zero-overhead-when-off contract
//!
//! Instrumentation must never tax a parse that nobody is watching. The
//! stack enforces that in two layers:
//!
//! 1. **Compile time** — the engine crates gate every hook behind a cargo
//!    feature (`obs`, on by default). Built with `--no-default-features`,
//!    the hook bodies reduce to constant `false` checks that the optimizer
//!    deletes: no `Instant::now()`, no branch, no histogram in sight.
//! 2. **Run time** — with the feature compiled in, every hook first checks
//!    a per-object sink (`Option`-typed, `None` by default). Until
//!    `enable_obs()` is called the only cost is one predictable branch on
//!    an already-resident word; in particular no clock is read. The
//!    `obs_overhead` bench (CI job of the same name) gates this at ≤2%
//!    throughput regression on the lexeme-diverse corpus.
//!
//! Everything in this crate is therefore *pull*-oriented: the engine
//! records into plain structs it owns; snapshots are taken, merged across
//! threads, and exported only at the edges (probe, service exposition).
//!
//! # What lives where
//!
//! * [`Histogram`] — 64 power-of-two buckets with exact `count`/`sum` and
//!   `min`/`max`; one struct serves both nanosecond latencies and sizes.
//!   Merging two histograms is element-wise and lossless, so per-worker
//!   recording needs no locks.
//! * [`Phase`] / [`PhaseStats`] — the fixed span vocabulary (lex, derive,
//!   compact, nullability fixpoint, automaton row build, forest build,
//!   queue wait, execute, …) and one histogram per phase.
//! * [`TraceEvent`] / [`chrome_trace_json`] — complete spans and the
//!   `chrome://tracing` / Perfetto JSON exporter for single-parse
//!   flamegraph-style inspection.
//! * [`PromText`] — Prometheus text-format exposition builder (counters,
//!   gauges, histograms with `_bucket`/`_sum`/`_count` series and labels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod prom;
mod span;
mod trace;

pub use hist::Histogram;
pub use prom::PromText;
pub use span::{Phase, PhaseStats, PHASE_COUNT};
pub use trace::{chrome_trace_json, TraceEvent};

// The exporters and stats are shared across service worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Histogram>();
    assert_send_sync::<PhaseStats>();
    assert_send_sync::<TraceEvent>();
    assert_send_sync::<PromText>();
};
