//! Prometheus text-format exposition: counters, gauges, and histogram
//! series built from [`Histogram`] snapshots.

use crate::Histogram;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Builder for a Prometheus text-exposition document.
///
/// Metric families may be emitted under the same name with different label
/// sets (the `# HELP`/`# TYPE` header is written once per name);
/// histograms expand into the conventional `_bucket{le="…"}` cumulative
/// series plus `_sum` and `_count`.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: HashSet<String>,
}

/// One label pair, `(name, value)`.
pub type Label<'a> = (&'a str, &'a str);

fn write_labels(out: &mut String, labels: &[Label<'_>], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[Label<'_>], value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(name);
        write_labels(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[Label<'_>], value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(name);
        write_labels(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits a full histogram family: cumulative `_bucket{le="…"}` series
    /// over the histogram's non-empty buckets (plus `+Inf`), then `_sum`
    /// and `_count` — all exact.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[Label<'_>], h: &Histogram) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (upper, count) in h.buckets() {
            cumulative += count;
            let le = upper.to_string();
            let _ = write!(self.out, "{name}_bucket");
            write_labels(&mut self.out, labels, Some(("le", &le)));
            let _ = writeln!(self.out, " {cumulative}");
        }
        let _ = write!(self.out, "{name}_bucket");
        write_labels(&mut self.out, labels, Some(("le", "+Inf")));
        let _ = writeln!(self.out, " {}", h.count());
        let _ = write!(self.out, "{name}_sum");
        write_labels(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {}", h.sum());
        let _ = write!(self.out, "{name}_count");
        write_labels(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {}", h.count());
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut p = PromText::new();
        p.counter("pwd_requests_total", "Requests served.", &[("backend", "pwd-improved")], 7);
        p.counter("pwd_requests_total", "Requests served.", &[("backend", "earley")], 2);
        p.gauge("pwd_live_sessions", "Open sessions.", &[], 3.0);
        let text = p.finish();
        assert_eq!(text.matches("# TYPE pwd_requests_total counter").count(), 1, "{text}");
        assert!(text.contains("pwd_requests_total{backend=\"pwd-improved\"} 7"));
        assert!(text.contains("pwd_requests_total{backend=\"earley\"} 2"));
        assert!(text.contains("pwd_live_sessions 3"));
    }

    #[test]
    fn histogram_series_are_cumulative_and_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.histogram("req_ns", "Latency.", &[("backend", "glr")], &h);
        let text = p.finish();
        assert!(text.contains("# TYPE req_ns histogram"));
        assert!(text.contains("req_ns_bucket{backend=\"glr\",le=\"1\"} 1"));
        assert!(text.contains("req_ns_bucket{backend=\"glr\",le=\"3\"} 3"));
        assert!(text.contains("req_ns_bucket{backend=\"glr\",le=\"127\"} 4"));
        assert!(text.contains("req_ns_bucket{backend=\"glr\",le=\"+Inf\"} 4"));
        assert!(text.contains("req_ns_sum{backend=\"glr\"} 106"));
        assert!(text.contains("req_ns_count{backend=\"glr\"} 4"));
    }

    #[test]
    fn label_values_escape() {
        let mut p = PromText::new();
        p.counter("c", "h", &[("k", "a\"b\\c")], 1);
        assert!(p.finish().contains("c{k=\"a\\\"b\\\\c\"} 1"));
    }
}
