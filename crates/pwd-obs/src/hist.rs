//! Fixed-bucket power-of-two histograms with exact count and sum.

/// Number of buckets: one per bit length of a `u64` value, plus bucket 0
/// for the value `0` itself.
pub(crate) const BUCKETS: usize = 64;

/// A histogram over `u64` samples (nanoseconds, bytes, node counts, …)
/// with 64 fixed power-of-two buckets and *exact* `count`/`sum`/`min`/`max`.
///
/// Bucket `i` (for `i ≥ 1`) holds samples whose bit length is `i`, i.e. the
/// half-open range `[2^(i-1), 2^i)`; bucket 0 holds the sample `0`. The
/// bucket layout is the same for every histogram, so merging across worker
/// threads is element-wise addition and never loses a sample — the exact
/// aggregates make additivity properties testable to the last unit.
///
/// Recording is a handful of integer ops (no floating point, no
/// allocation); the struct is `Clone + Eq` so snapshots compare exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index of a sample: its bit length, clamped to the last bucket.
#[inline]
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Exact number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Has no samples been recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// An upper bound for the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q · count`, clamped to the exact observed `max`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Element-wise lossless merge: counts, sums, and every bucket add;
    /// min/max tighten. The basis of cross-thread aggregation.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive upper bound, samples in bucket)`,
    /// in increasing bound order — the raw series exporters iterate.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_upper(i), c))
    }
}

/// Inclusive upper bound of bucket `i`: `0` for bucket 0, else `2^i - 1`
/// (`u64::MAX` for the last bucket).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), u64::MAX); // saturated
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Each sample lands in the bucket whose range covers it.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper(i), "v={v} bucket={i}");
            if i > 1 {
                assert!(v > bucket_upper(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn quantiles_bound_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((500..=1023).contains(&p50), "{p50}");
        assert!((990..=1000).contains(&p99), "{p99}");
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        assert_eq!(h.quantile(1.0).unwrap(), 1000, "clamped to observed max");
    }

    #[test]
    fn merge_is_exactly_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [3u64, 0, 17, 290, 5, 5, 1 << 33].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*v);
            whole.record(*v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
    }
}
