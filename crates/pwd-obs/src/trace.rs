//! Chrome `trace_event` JSON export: complete (`ph:"X"`) spans that load
//! directly in `chrome://tracing` or Perfetto.

/// One complete span: a named interval on a (pid, tid) track. Timestamps
/// are nanoseconds relative to whatever zero the recorder chose (trace
/// viewers only care about relative placement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, shown on the timeline (typically a [`Phase`](crate::Phase)
    /// name or a request label).
    pub name: String,
    /// Category tag (the viewer can filter on it), e.g. `"engine"`,
    /// `"serve"`.
    pub cat: &'static str,
    /// Start, nanoseconds from the recorder's zero.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Track id — one per thread/worker, so spans nest per track.
    pub tid: u32,
}

impl TraceEvent {
    /// A span on track 0 in category `"engine"`.
    pub fn new(name: impl Into<String>, ts_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent { name: name.into(), cat: "engine", ts_ns, dur_ns, tid: 0 }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders events as a Chrome `trace_event` JSON document (the object form,
/// with a `traceEvents` array of `ph:"X"` complete events). Timestamps and
/// durations are emitted in microseconds — the unit the format specifies —
/// with fractional precision preserving the nanosecond samples.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(&format!(
            ",\"ts\":{:.3},\"dur\":{:.3}}}",
            e.ts_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_events() {
        let events = vec![
            TraceEvent::new("derive", 0, 1500),
            TraceEvent {
                name: "exec \"q\"".into(),
                cat: "serve",
                ts_ns: 2000,
                dur_ns: 500,
                tid: 3,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"derive\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000,\"dur\":1.500"));
        assert!(json.contains("\"name\":\"exec \\\"q\\\"\""), "quotes escaped: {json}");
        assert!(json.contains("\"tid\":3"));
        // Balanced braces/brackets — a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
    }
}
