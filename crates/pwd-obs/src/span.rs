//! The fixed span vocabulary and per-phase histogram bundle.

use crate::Histogram;

/// The instrumented phases of the stack, one histogram each in
/// [`PhaseStats`]. The set is closed on purpose: a fixed vocabulary keeps
/// recording allocation-free and makes snapshots from different layers
/// mergeable without name reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Lexing: scanning source text into tokens.
    Lex,
    /// Taking the derivative of the current state by one token (includes
    /// the memo probes; per-token granularity).
    Derive,
    /// A compaction pass over the fresh derivative.
    Compact,
    /// A nullability fixed-point run (only runs that actually iterate;
    /// definite-bit hits are free and unrecorded).
    Nullable,
    /// Interning a derivative as a lazy-automaton state and building its
    /// transition row.
    AutoRow,
    /// Parse-forest construction (`parse-null` / canonicalization).
    Forest,
    /// Serve-side: time a request spent queued before a worker picked it up.
    QueueWait,
    /// Serve-side: time a worker spent executing a request.
    Execute,
    /// Serve-side: whole-request wall time (queue wait + execute).
    Request,
    /// A streaming chunk fed through a live session.
    Chunk,
    /// An error-recovery episode: candidate probing plus repair selection
    /// after a dead feed (only recorded when recovery actually engages, so
    /// clean parses never touch the clock for it).
    Recover,
}

/// Number of [`Phase`] variants (the length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 11;

impl Phase {
    /// Every phase, in declaration order (= index order).
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Lex,
        Phase::Derive,
        Phase::Compact,
        Phase::Nullable,
        Phase::AutoRow,
        Phase::Forest,
        Phase::QueueWait,
        Phase::Execute,
        Phase::Request,
        Phase::Chunk,
        Phase::Recover,
    ];

    /// Dense index of the phase, in `0..PHASE_COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name, used as the trace-event and metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::Derive => "derive",
            Phase::Compact => "compact",
            Phase::Nullable => "nullable",
            Phase::AutoRow => "auto_row",
            Phase::Forest => "forest",
            Phase::QueueWait => "queue_wait",
            Phase::Execute => "execute",
            Phase::Request => "request",
            Phase::Chunk => "chunk",
            Phase::Recover => "recover",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One [`Histogram`] per [`Phase`]: the aggregate span record of an engine,
/// a backend, or a whole service. Span durations are recorded in
/// nanoseconds; the same shape also carries size samples where a layer
/// finds that useful.
///
/// Like [`Histogram`], merging is element-wise and lossless, so per-thread
/// instances aggregate without locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    hists: [Histogram; PHASE_COUNT],
}

impl Default for PhaseStats {
    fn default() -> PhaseStats {
        PhaseStats { hists: std::array::from_fn(|_| Histogram::new()) }
    }
}

impl PhaseStats {
    /// An empty bundle.
    pub fn new() -> PhaseStats {
        PhaseStats::default()
    }

    /// Records one span of `nanos` under `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.hists[phase.index()].record(nanos);
    }

    /// The histogram of one phase.
    pub fn get(&self, phase: Phase) -> &Histogram {
        &self.hists[phase.index()]
    }

    /// Total nanoseconds recorded under `phase` (the histogram's exact sum).
    pub fn total_nanos(&self, phase: Phase) -> u64 {
        self.get(phase).sum()
    }

    /// Merges another bundle in, phase by phase — exactly additive.
    pub fn merge(&mut self, other: &PhaseStats) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Phases with at least one recorded span, with their histograms.
    pub fn recorded(&self) -> impl Iterator<Item = (Phase, &Histogram)> + '_ {
        Phase::ALL.iter().map(|&p| (p, self.get(p))).filter(|(_, h)| !h.is_empty())
    }

    /// Is every phase empty?
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(Histogram::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn record_merge_roundtrip() {
        let mut a = PhaseStats::new();
        let mut b = PhaseStats::new();
        a.record(Phase::Derive, 100);
        a.record(Phase::Derive, 200);
        b.record(Phase::Derive, 50);
        b.record(Phase::Forest, 7);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.get(Phase::Derive).count(), 3);
        assert_eq!(m.get(Phase::Derive).sum(), 350);
        assert_eq!(m.total_nanos(Phase::Forest), 7);
        assert_eq!(m.recorded().count(), 2);
        assert!(PhaseStats::new().is_empty());
        assert!(!m.is_empty());
    }
}
