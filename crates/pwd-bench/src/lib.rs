//! Shared infrastructure for the figure-regenerating benchmark binaries.
//!
//! Every table and figure of the paper's evaluation (§4) has a binary in
//! `src/bin/` that prints (a) CSV rows `x,series,value` for plotting and
//! (b) a human-readable summary juxtaposing the paper's headline number
//! with the measured one. Timing-based figures additionally have Criterion
//! benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trajectory;

pub use trajectory::Trajectory;

use pwd_core::ParserConfig;
use pwd_grammar::{gen, grammars, Cfg, Compiled};
use pwd_lex::Lexeme;
use std::time::{Duration, Instant};

/// A corpus entry: target size, exact token count, and the lexeme stream.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// The generator's target token count.
    pub target: usize,
    /// Exact number of tokens after tokenization.
    pub tokens: usize,
    /// The token stream.
    pub lexemes: Vec<Lexeme>,
}

/// Generates the synthetic Python corpus (the stand-in for the Python
/// Standard Library files of §4.1) at the given target sizes.
pub fn python_corpus(targets: &[usize]) -> Vec<CorpusFile> {
    targets
        .iter()
        .enumerate()
        .map(|(i, &target)| {
            let src = gen::python_source(target, 0xC0FFEE + i as u64);
            let lexemes = pwd_lex::tokenize_python(&src).expect("generated corpus tokenizes");
            CorpusFile { target, tokens: lexemes.len(), lexemes }
        })
        .collect()
}

/// The default size ladder (paper inputs go up to 26,125 tokens).
pub fn default_sizes(full: bool) -> Vec<usize> {
    if full {
        vec![100, 300, 1000, 3000, 8000, 16000, 26000]
    } else {
        vec![100, 300, 1000, 3000]
    }
}

/// Parses `--full` from argv.
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The Python-subset grammar shared by all figures.
pub fn python_cfg() -> Cfg {
    grammars::python::cfg()
}

/// Compiles a fresh PWD parser for the Python grammar.
pub fn python_pwd(config: ParserConfig) -> Compiled {
    Compiled::compile(&python_cfg(), config)
}

/// Times one closure invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Times `f` repeatedly (at least `min_rounds` rounds and at least
/// `min_total`), returning the mean duration per round. Mirrors the paper's
/// protocol of repeating each parse until ≥1 s to avoid clock quantization.
pub fn time_mean(min_rounds: usize, min_total: Duration, mut f: impl FnMut()) -> Duration {
    let mut rounds = 0usize;
    let t0 = Instant::now();
    while rounds < min_rounds || t0.elapsed() < min_total {
        f();
        rounds += 1;
        if rounds > 1_000_000 {
            break;
        }
    }
    t0.elapsed() / rounds as u32
}

/// Prints a CSV header once.
pub fn csv_header() {
    println!("x,series,value");
}

/// Prints one CSV row.
pub fn csv_row(x: impl std::fmt::Display, series: &str, value: impl std::fmt::Display) {
    println!("{x},{series},{value}");
}

/// Geometric mean of a ratio series.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Least-squares slope of `log2(y)` against `log2(x)` — the empirical
/// complexity exponent for the cubic-bound checks.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.log2(), y.log2());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generation() {
        let corpus = python_corpus(&[100, 200]);
        assert_eq!(corpus.len(), 2);
        assert!(corpus[0].tokens >= 90);
        assert!(corpus[1].tokens > corpus[0].tokens);
    }

    #[test]
    fn geomean_of_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_slope_of_cubic() {
        let pts: Vec<(f64, f64)> = (1..6)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, x * x * x)
            })
            .collect();
        let s = loglog_slope(&pts);
        assert!((s - 3.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn time_mean_runs_min_rounds() {
        let mut count = 0;
        let _ = time_mean(5, Duration::from_millis(0), || count += 1);
        assert!(count >= 5);
    }
}
