//! Figure 5 regenerator: the worst-case grammar `L = (L ◦ L) ∪ c` derived by
//! `c1 c2 c3 c4`, with every constructed node's Definition-5 name — plus
//! dynamic checks of Lemma 7 (≤ one `•` per name) and Theorem 8 (O(G·n³)
//! node count).
//!
//! Run: `cargo run --release -p pwd-bench --bin fig5_names`

use pwd_core::ParserConfig;
use pwd_grammar::grammars::worst_case;

fn main() {
    println!("# Figure 5: worst-case behavior of PWD, node names per derivative");
    println!("# grammar: L = (L ◦ L) ∪ c  (labels: L the ∪, M the ◦, N the token)");
    let n = 4;
    let (mut lang, l, toks) = worst_case::language(ParserConfig::named_recognizer(), n);
    let accepted = lang.recognize(l, &toks).expect("valid grammar");
    println!("# input c1..c{n} accepted: {accepted}");
    println!();

    let names = lang.all_node_names();
    println!("{} named nodes constructed:", names.len());
    let mut rendered: Vec<String> = names.iter().map(|(_, s)| s.clone()).collect();
    rendered.sort_by_key(|s| (s.len(), s.clone()));
    for chunk in rendered.chunks(8) {
        println!("  {}", chunk.join("  "));
    }

    let (total, distinct, max_bullets) = lang.name_stats();
    println!();
    println!("Lemma 7  : max bullets per name = {max_bullets} (paper: ≤ 1)");
    println!("Unique   : {total} names, {distinct} distinct (memoization ⇒ equal)");
    let g = 3u64;
    let substrings = (n as u64 * (n as u64 + 1)) / 2 + 1;
    let bound = g * substrings * (n as u64 + 2);
    println!("Theorem 8: {total} nodes ≤ G·O(n³) bound {bound}");

    assert!(max_bullets <= 1, "Lemma 7 violated");
    assert_eq!(total, distinct, "duplicate names — memoization broken");
    assert!((total as u64) <= bound, "Theorem 8 bound violated");
    println!("\nAll §3 properties hold on this execution.");
}
