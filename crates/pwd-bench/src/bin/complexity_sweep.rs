//! Theorem 9 regenerator: empirical complexity of PWD on the worst-case
//! grammar. Sweeps input length on `L = (L ◦ L) ∪ c` with all-unique tokens
//! and reports node counts and parse times with their log-log slopes: the
//! node-count slope must be ≈ cubic or below (Theorem 8), **not** the
//! exponential the folklore claimed.
//!
//! Run: `cargo run --release -p pwd-bench --bin complexity_sweep [--full]`

use pwd_bench::{csv_header, csv_row, full_flag, loglog_slope, time_once};
use pwd_core::{ParseMode, ParserConfig};
use pwd_grammar::grammars::worst_case;

fn main() {
    let ns: Vec<usize> =
        if full_flag() { vec![4, 8, 16, 32, 64, 128, 256] } else { vec![4, 8, 16, 32, 64] };
    println!("# Theorem 8/9: node growth and time on the worst-case grammar");
    csv_header();

    let mut node_points = Vec::new();
    let mut time_points = Vec::new();
    for &n in &ns {
        // Recognizer mode matches the §3 analysis exactly.
        let cfg = ParserConfig { mode: ParseMode::Recognize, ..ParserConfig::improved() };
        let (mut lang, l, toks) = worst_case::language(cfg, n);
        lang.reset_metrics();
        let (dt, ok) = time_once(|| lang.recognize(l, &toks).expect("valid grammar"));
        assert!(ok);
        let created = lang.metrics().nodes_created;
        csv_row(n, "nodes_created", created);
        csv_row(n, "seconds", dt.as_secs_f64());
        node_points.push((n as f64, created as f64));
        time_points.push((n as f64, dt.as_secs_f64().max(1e-9)));
    }

    let node_slope = loglog_slope(&node_points);
    let time_slope = loglog_slope(&time_points);
    println!();
    println!("# node-count log-log slope: {node_slope:.2} (Theorem 8: ≤ 3 + o(1))");
    println!("# wall-time  log-log slope: {time_slope:.2} (Theorem 9: ≤ ~3, not exponential)");
    assert!(node_slope < 3.5, "node growth slope {node_slope:.2} exceeds the cubic bound regime");
    println!("# PASS: growth is polynomial (cubic-bounded), not exponential");
}
