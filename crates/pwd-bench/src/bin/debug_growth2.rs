//! Diagnostic: reachable growth on degenerate repetitive programs.
//!
//! Run: `cargo run --release -p pwd-bench --bin debug_growth2`

use pwd_bench::python_cfg;
use pwd_core::ParserConfig;
use pwd_grammar::Compiled;

fn main() {
    explain();
    let cfg = python_cfg();
    for (label, unit) in
        [("pass", "pass\n"), ("assign", "x = 1\n"), ("call", "f(1)\n"), ("binop", "x = x + 1\n")]
    {
        println!("--- unit {label:?} ---");
        for k in [4usize, 8, 16, 32, 64] {
            let src = unit.repeat(k);
            let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
            let lexemes = pwd_lex::tokenize_python(&src).unwrap();
            let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
            let start = pwd.start;
            let d = pwd.lang.derivative(start, &toks).unwrap();
            println!(
                "  k={k:>3} tokens={:>4} reachable={:>6} census={:?}",
                toks.len(),
                pwd.lang.reachable_count(d),
                pwd.lang.kind_census(d),
            );
        }
    }
}

/// Dump the hottest structural patterns among live nodes for pass*16.
fn explain() {
    let cfg = python_cfg();
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    let lexemes = pwd_lex::tokenize_python(&"pass\n".repeat(16)).unwrap();
    let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
    let start = pwd.start;
    let d = pwd.lang.derivative(start, &toks).unwrap();
    for line in pwd.lang.hot_patterns(d, 25) {
        println!("{line}");
    }
    println!();
}
