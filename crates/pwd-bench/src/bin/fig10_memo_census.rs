//! Figure 10 regenerator: percentage of grammar nodes whose `derive` memo
//! table holds exactly one entry, measured under the original nested-hash
//! memoization across the corpus.
//!
//! Paper headline: the overwhelming majority of nodes hold a single entry
//! (two visible populations, both high), which is what justifies the
//! single-entry cache of §4.4.
//!
//! Run: `cargo run --release -p pwd-bench --bin fig10_memo_census [--full]`

use pwd_bench::{csv_header, csv_row, default_sizes, full_flag, python_cfg, python_corpus};
use pwd_core::{MemoKeying, MemoStrategy, ParserConfig};
use pwd_grammar::Compiled;

fn main() {
    let sizes = default_sizes(full_flag());
    let cfg = python_cfg();
    let corpus = python_corpus(&sizes);

    println!("# Figure 10: % of nodes with exactly one derive-memo entry (FullHash)");
    csv_header();

    let mut fractions = Vec::new();
    for file in &corpus {
        let config = ParserConfig {
            memo: MemoStrategy::FullHash,
            keying: MemoKeying::ByValue,
            ..ParserConfig::improved()
        };
        let mut pwd = Compiled::compile(&cfg, config);
        let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
        let start = pwd.start;
        assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
        let frac = pwd.lang.single_entry_fraction().unwrap_or(1.0);
        csv_row(file.tokens, "single_entry_nodes", format!("{:.4}", 100.0 * frac));
        fractions.push(frac);

        // Also print the entry-count histogram for the largest file.
        if file.tokens == corpus.last().map(|f| f.tokens).unwrap_or(0) {
            let mut counts = pwd.lang.memo_entry_counts();
            counts.sort_unstable();
            let mut hist: Vec<(u32, usize)> = Vec::new();
            for c in counts {
                match hist.last_mut() {
                    Some((v, n)) if *v == c => *n += 1,
                    _ => hist.push((c, 1)),
                }
            }
            println!("# entry-count histogram at {} tokens:", file.tokens);
            for (entries, nodes) in hist.iter().take(12) {
                println!("#   {entries} entries: {nodes} nodes");
            }
        }
    }

    let avg = 100.0 * fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!();
    println!("# average single-entry percentage: {avg:.1}% (paper: large majority, near 100%)");
}
