//! Diagnostic: per-token reachable-graph growth on the Python grammar.
//!
//! Run: `cargo run --release -p pwd-bench --bin debug_growth [tokens]`

use pwd_bench::{python_cfg, python_corpus};
use pwd_core::ParserConfig;
use pwd_grammar::Compiled;

fn main() {
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let cfg = python_cfg();
    let corpus = python_corpus(&[target]);
    let file = &corpus[0];
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
    let start = pwd.start;
    println!("initial grammar reachable: {}", pwd.lang.reachable_count(start));

    for k in (10..=toks.len()).step_by((toks.len() / 12).max(10)) {
        pwd.lang.reset();
        let d = pwd.lang.derivative(start, &toks[..k]).expect("ok");
        let reach = pwd.lang.reachable_count(d);
        let m = pwd.lang.metrics();
        println!(
            "prefix {:>5}: reachable {:>8}  nodes_created {:>10}  per-token {:>8.0}",
            k,
            reach,
            m.nodes_created,
            m.nodes_created as f64 / k as f64,
        );
        println!("  census: {:?}", pwd.lang.kind_census(d));
    }
}
