//! Diagnostic: memo-keying effectiveness matrix on the lexeme-diverse PL/0
//! corpus — wall time, derive-call, and template counters for every
//! `(mode × memo strategy × keying)` cell.
//!
//! With `--forest-dot [FILE]` it additionally renders the shared parse
//! forest of a small, deliberately ambiguous expression as Graphviz DOT
//! (ambiguity nodes draw as double circles), for visually pinpointing
//! where an input's ambiguity lives: pipe through `dot -Tsvg` to look.
//!
//! Run: `cargo run --release -p pwd-bench --bin probe_keying [target_tokens]
//!       [--forest-dot [FILE]]`

use pwd_core::{MemoKeying, MemoStrategy, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Compiled};

/// Renders the canonical shared forest of `n+n*n+n` under the ambiguous
/// expression grammar (E → E+E | E*E | n): 5 readings, one packed graph.
fn forest_dot() -> String {
    let mut c = Compiled::compile(&grammars::ambiguous::expr(), ParserConfig::improved());
    let toks: Vec<_> = ["n", "+", "n", "*", "n", "+", "n"]
        .iter()
        .map(|k| c.token(k, k).expect("grammar terminal"))
        .collect();
    let start = c.start;
    let root = c.lang.parse_forest(start, &toks).expect("ambiguous sentence parses");
    let canon = c.lang.canonical_forest(root).expect("compiled grammars canonicalize");
    eprintln!(
        "forest of n+n*n+n: {} readings, {} packed nodes, depth {}, fingerprint {:016x}",
        canon.count(),
        canon.node_count(),
        canon.depth(),
        canon.fingerprint()
    );
    canon.to_dot()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--forest-dot") {
        let dot = forest_dot();
        match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => {
                std::fs::write(path, &dot).expect("write DOT file");
                eprintln!("wrote {path}");
            }
            _ => print!("{dot}"),
        }
        return;
    }
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0xD1CE, 0.1);
    let lexemes = lx.tokenize(&src).unwrap();
    println!("tokens: {}", lexemes.len());
    for mode in [ParseMode::Recognize, ParseMode::Parse] {
        for memo in [MemoStrategy::SingleEntry, MemoStrategy::DualEntry, MemoStrategy::FullHash] {
            for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
                let cfg = ParserConfig { mode, keying, memo, ..ParserConfig::improved() };
                let mut pwd = Compiled::compile(&grammars::pl0::cfg(), cfg);
                let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
                let start = pwd.start;
                let run = |pwd: &mut Compiled| {
                    pwd.lang.reset();
                    match mode {
                        ParseMode::Recognize => {
                            assert!(pwd.lang.recognize(start, &toks).unwrap());
                        }
                        ParseMode::Parse => {
                            pwd.lang.parse_forest(start, &toks).unwrap();
                        }
                    }
                };
                run(&mut pwd); // warm the prepass cache and template rows
                let rounds = 20u32;
                let t0 = std::time::Instant::now();
                for _ in 0..rounds {
                    run(&mut pwd);
                }
                let ns = t0.elapsed().as_nanos() / rounds as u128;
                let m = *pwd.lang.metrics();
                println!(
                    "{mode:?}/{memo:?}/{keying:?}: ns={ns} calls={} uncached={} nodes={} \
                     evict={} tmpl_rec={} tmpl_inst={} tmpl_share={}",
                    m.derive_calls,
                    m.derive_uncached,
                    m.nodes_created,
                    m.memo_evictions,
                    m.templates_recorded,
                    m.template_instantiations,
                    m.template_shares,
                );
            }
        }
    }
}
