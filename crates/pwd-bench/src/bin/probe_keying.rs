//! Diagnostic: memo-keying effectiveness matrix on the lexeme-diverse PL/0
//! corpus — wall time, derive-call, and template counters for every
//! `(mode × memo strategy × keying)` cell.
//!
//! Run: `cargo run --release -p pwd-bench --bin probe_keying [target_tokens]`

use pwd_core::{MemoKeying, MemoStrategy, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Compiled};

fn main() {
    let target: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0xD1CE, 0.1);
    let lexemes = lx.tokenize(&src).unwrap();
    println!("tokens: {}", lexemes.len());
    for mode in [ParseMode::Recognize, ParseMode::Parse] {
        for memo in [MemoStrategy::SingleEntry, MemoStrategy::DualEntry, MemoStrategy::FullHash] {
            for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
                let cfg = ParserConfig { mode, keying, memo, ..ParserConfig::improved() };
                let mut pwd = Compiled::compile(&grammars::pl0::cfg(), cfg);
                let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
                let start = pwd.start;
                let run = |pwd: &mut Compiled| {
                    pwd.lang.reset();
                    match mode {
                        ParseMode::Recognize => {
                            assert!(pwd.lang.recognize(start, &toks).unwrap());
                        }
                        ParseMode::Parse => {
                            pwd.lang.parse_forest(start, &toks).unwrap();
                        }
                    }
                };
                run(&mut pwd); // warm the prepass cache and template rows
                let rounds = 20u32;
                let t0 = std::time::Instant::now();
                for _ in 0..rounds {
                    run(&mut pwd);
                }
                let ns = t0.elapsed().as_nanos() / rounds as u128;
                let m = *pwd.lang.metrics();
                println!(
                    "{mode:?}/{memo:?}/{keying:?}: ns={ns} calls={} uncached={} nodes={} \
                     evict={} tmpl_rec={} tmpl_inst={} tmpl_share={}",
                    m.derive_calls,
                    m.derive_uncached,
                    m.nodes_created,
                    m.memo_evictions,
                    m.templates_recorded,
                    m.template_instantiations,
                    m.template_shares,
                );
            }
        }
    }
}
