//! One diagnostic probe binary, many subcommands — the consolidation of the
//! former one-off bins (`debug_growth`, `debug_growth2`, `debug_ambiguity`,
//! `debug_min`, `reset_probe`, `probe_keying`):
//!
//! ```text
//! cargo run --release -p pwd-bench --bin probe -- growth [tokens]
//! cargo run --release -p pwd-bench --bin probe -- units
//! cargo run --release -p pwd-bench --bin probe -- ambiguity
//! cargo run --release -p pwd-bench --bin probe -- min
//! cargo run --release -p pwd-bench --bin probe -- reset
//! cargo run --release -p pwd-bench --bin probe -- keying [tokens] [--forest-dot [FILE]]
//! cargo run --release -p pwd-bench --bin probe -- automaton [tokens]
//! cargo run --release -p pwd-bench --bin probe -- trace [tokens] [FILE]
//! cargo run --release -p pwd-bench --bin probe -- diagnose FILE [backend]
//! cargo run --release -p pwd-bench --bin probe -- splice FILE [backend]
//! ```
//!
//! * `growth` — per-token reachable-graph growth on the Python grammar.
//! * `units` — reachable growth on degenerate repetitive programs.
//! * `ambiguity` — parse-counts of Python snippets (ambiguity hunt).
//! * `min` — minimal statement-list grammars, reachable size per shape.
//! * `reset` — compile vs `reset()` vs reset+parse vs fresh+parse costs.
//! * `keying` — memo-keying effectiveness matrix on lexeme-diverse PL/0;
//!   `--forest-dot` renders an ambiguous forest as Graphviz instead.
//! * `automaton` — lazy-automaton row occupancy and fallback stats on the
//!   lexeme-diverse PL/0 corpus, across a sweep of row budgets.
//! * `trace` — traced end-to-end run on lexeme-diverse PL/0: writes a
//!   Chrome `trace_event` JSON timeline (default `TRACE_pl0.json`; open in
//!   `chrome://tracing` or Perfetto) and prints a per-phase time table.
//! * `diagnose` — parses a PL/0 source file with bounded-budget error
//!   recovery and prints rustc-style spanned diagnostics for every repair;
//!   exit code 0 = clean, 1 = diagnostics emitted, 2 = usage/IO error.
//! * `splice` — feeds a PL/0 source file into an incremental session, then
//!   replays a deterministic edit script (single-token replacements
//!   sweeping the buffer, two passes) printing per-edit latency, the
//!   checkpoint-ladder rung each splice re-entered from, and the
//!   refed/reused token split; exit code 2 = usage/IO error.

use pwd_bench::{python_cfg, python_corpus};
use pwd_core::{
    AutomatonMode, MemoKeying, MemoStrategy, ParseMode, ParserConfig, Phase, PhaseStats, TraceEvent,
};
use pwd_grammar::{gen, grammars, CfgBuilder, Compiled};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("growth") => growth(arg_usize(&args, 1, 200)),
        Some("units") => units(),
        Some("ambiguity") => ambiguity(),
        Some("min") => min(),
        Some("reset") => reset(),
        Some("keying") => keying(&args[1..]),
        Some("automaton") => automaton(arg_usize(&args, 1, 600)),
        Some("trace") => trace(arg_usize(&args, 1, 600), args.get(2).cloned()),
        Some("diagnose") => diagnose(args.get(1).cloned(), args.get(2).cloned()),
        Some("splice") => splice(args.get(1).cloned(), args.get(2).cloned()),
        _ => {
            eprintln!(
                "usage: probe <growth [tokens] | units | ambiguity | min | reset | \
                 keying [tokens] [--forest-dot [FILE]] | automaton [tokens] | \
                 trace [tokens] [FILE] | diagnose FILE [backend] | \
                 splice FILE [backend]>"
            );
            std::process::exit(2);
        }
    }
}

fn arg_usize(args: &[String], idx: usize, default: usize) -> usize {
    args.get(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Per-token reachable-graph growth on the Python grammar.
fn growth(target: usize) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[target]);
    let file = &corpus[0];
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
    let start = pwd.start;
    println!("initial grammar reachable: {}", pwd.lang.reachable_count(start));

    for k in (10..=toks.len()).step_by((toks.len() / 12).max(10)) {
        pwd.lang.reset();
        let d = pwd.lang.derivative(start, &toks[..k]).expect("ok");
        let reach = pwd.lang.reachable_count(d);
        let m = pwd.lang.metrics();
        println!(
            "prefix {:>5}: reachable {:>8}  nodes_created {:>10}  per-token {:>8.0}",
            k,
            reach,
            m.nodes_created,
            m.nodes_created as f64 / k as f64,
        );
        println!("  census: {:?}", pwd.lang.kind_census(d));
    }
}

/// Reachable growth on degenerate repetitive programs, plus the hottest
/// structural patterns among live nodes for `pass`*16.
fn units() {
    let cfg = python_cfg();
    {
        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let lexemes = pwd_lex::tokenize_python(&"pass\n".repeat(16)).unwrap();
        let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
        let start = pwd.start;
        let d = pwd.lang.derivative(start, &toks).unwrap();
        for line in pwd.lang.hot_patterns(d, 25) {
            println!("{line}");
        }
        println!();
    }
    for (label, unit) in
        [("pass", "pass\n"), ("assign", "x = 1\n"), ("call", "f(1)\n"), ("binop", "x = x + 1\n")]
    {
        println!("--- unit {label:?} ---");
        for k in [4usize, 8, 16, 32, 64] {
            let src = unit.repeat(k);
            let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
            let lexemes = pwd_lex::tokenize_python(&src).unwrap();
            let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
            let start = pwd.start;
            let d = pwd.lang.derivative(start, &toks).unwrap();
            println!(
                "  k={k:>3} tokens={:>4} reachable={:>6} census={:?}",
                toks.len(),
                pwd.lang.reachable_count(d),
                pwd.lang.kind_census(d),
            );
        }
    }
}

/// Parse-count of Python snippets (ambiguity hunt).
fn ambiguity() {
    let cfg = python_cfg();
    let snippets = [
        "x = 1\n",
        "x = 1 + 2\n",
        "x = f(1)\n",
        "x = f(1, 2)\n",
        "x = a.b\n",
        "x = a[1]\n",
        "x = a[1:2]\n",
        "x = (1, 2)\n",
        "x = [1, 2]\n",
        "x = {1: 2}\n",
        "x, y = 1, 2\n",
        "if x:\n    pass\n",
        "def f(a):\n    return a\n",
        "for i in range(3):\n    pass\n",
        "x = 'a' 'b'\n",
        "x = lambda a: a\n",
        "x = y if z else w\n",
        "print(x)\n",
        "x = a + b * c - d\n",
        "x = f(g(h(1)))\n",
        "pass\npass\npass\n",
        "x = 1\ny = 2\nz = 3\n",
    ];
    for src in snippets {
        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let lexemes = pwd_lex::tokenize_python(src).unwrap();
        let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
        let start = pwd.start;
        match pwd.lang.count_parses(start, &toks) {
            Ok(n) => println!("{:>6}  {src:?}", n.to_string()),
            Err(e) => println!("  ERR({e})  {src:?}"),
        }
    }
}

/// Minimal statement-list growth repros: reachable size per grammar shape.
fn min() {
    fn probe(label: &str, build: impl Fn(&mut CfgBuilder)) {
        let mut g = CfgBuilder::new("S");
        build(&mut g);
        let cfg = g.build().unwrap();
        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        print!("{label:<40}");
        for k in [2usize, 4, 8, 16, 32] {
            pwd.lang.reset();
            let mut toks = Vec::new();
            for _ in 0..k {
                toks.push(pwd.token("p", "p").unwrap());
                toks.push(pwd.token("n", "n").unwrap());
            }
            let start = pwd.start;
            let d = pwd.lang.derivative(start, &toks).unwrap();
            print!(" {:>6}", pwd.lang.reachable_count(d));
        }
        println!();
    }

    probe("S=ε|S T; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
    });
    probe("S=ε|S T; T=U n; U=p", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["U", "n"]);
        g.rule("U", &["p"]);
    });
    probe("S=T|S T; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &["T"]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
    });
    probe("right rec: S=ε|T S; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["T", "S"]);
        g.rule("T", &["p", "n"]);
    });
    probe("S=ε|S T; T=A n; A=ε|p", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["A", "n"]);
        g.rule("A", &[]);
        g.rule("A", &["p"]);
    });
    probe("nested list: T=L n; L=p|L ; p", |g| {
        g.terminals(&["p", "n", ";"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["L", "n"]);
        g.rule("L", &["p"]);
        g.rule("L", &["L", ";", "p"]);
    });
    probe("expr chain: T=E n; E=F|E + F; F=p", |g| {
        g.terminals(&["p", "n", "+"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["E", "n"]);
        g.rule("E", &["F"]);
        g.rule("E", &["E", "+", "F"]);
        g.rule("F", &["p"]);
    });
    probe("two stmt kinds", |g| {
        g.terminals(&["p", "q", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
        g.rule("T", &["q", "n"]);
    });
    probe("deep unary chain", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["A1", "n"]);
        g.rule("A1", &["A2"]);
        g.rule("A2", &["A3"]);
        g.rule("A3", &["A4"]);
        g.rule("A4", &["p"]);
    });
    probe("suite-like: T=p n|h n I S D", |g| {
        // compound statement with a nested statement list (suite)
        g.terminals(&["p", "n", "h", "I", "D"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
        g.rule("T", &["h", "n", "I", "S", "D"]);
    });
    probe("python-like small core", |g| {
        g.terminals(&["p", "n", ";", "=", "x", "+"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["SS", "n"]);
        g.rule("SS", &["Sm"]);
        g.rule("SS", &["SS", ";", "Sm"]);
        g.rule("Sm", &["p"]);
        g.rule("Sm", &["E"]);
        g.rule("Sm", &["E", "=", "E"]);
        g.rule("E", &["F"]);
        g.rule("E", &["E", "+", "F"]);
        g.rule("F", &["x"]);
    });
}

/// Micro-probe separating the costs behind the `reset_reuse` bench.
fn reset() {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200]);
    let file = &corpus[0];

    // compile-only cost
    let t0 = Instant::now();
    for _ in 0..50 {
        let c = Compiled::compile(&cfg, ParserConfig::improved());
        std::hint::black_box(&c);
    }
    println!("compile-only: {:?}/round", t0.elapsed() / 50);

    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = pwd.tokens_from_lexemes(&file.lexemes).unwrap();
    let start = pwd.start;
    // warmup
    for _ in 0..3 {
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
    }
    // reset cost alone
    let t0 = Instant::now();
    for _ in 0..1000 {
        pwd.lang.reset();
    }
    println!("reset-only: {:?}/round", t0.elapsed() / 1000);
    // reset+parse
    let t0 = Instant::now();
    for _ in 0..30 {
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
    }
    println!("reset+parse: {:?}/round", t0.elapsed() / 30);
    // fresh compile+parse
    let t0 = Instant::now();
    for _ in 0..30 {
        let mut p = Compiled::compile(&cfg, ParserConfig::improved());
        let tk = p.tokens_from_lexemes(&file.lexemes).unwrap();
        assert!(p.lang.recognize(p.start, &tk).unwrap());
    }
    println!("fresh+parse: {:?}/round", t0.elapsed() / 30);
}

/// Renders the canonical shared forest of `n+n*n+n` under the ambiguous
/// expression grammar (E → E+E | E*E | n): 5 readings, one packed graph.
fn forest_dot() -> String {
    let mut c = Compiled::compile(&grammars::ambiguous::expr(), ParserConfig::improved());
    let toks: Vec<_> = ["n", "+", "n", "*", "n", "+", "n"]
        .iter()
        .map(|k| c.token(k, k).expect("grammar terminal"))
        .collect();
    let start = c.start;
    let root = c.lang.parse_forest(start, &toks).expect("ambiguous sentence parses");
    let canon = c.lang.canonical_forest(root).expect("compiled grammars canonicalize");
    eprintln!(
        "forest of n+n*n+n: {} readings, {} packed nodes, depth {}, fingerprint {:016x}",
        canon.count(),
        canon.node_count(),
        canon.depth(),
        canon.fingerprint()
    );
    canon.to_dot()
}

/// Memo-keying effectiveness matrix on the lexeme-diverse PL/0 corpus;
/// `--forest-dot [FILE]` renders an ambiguous forest as Graphviz instead.
fn keying(args: &[String]) {
    if let Some(i) = args.iter().position(|a| a == "--forest-dot") {
        let dot = forest_dot();
        match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => {
                std::fs::write(path, &dot).expect("write DOT file");
                eprintln!("wrote {path}");
            }
            _ => print!("{dot}"),
        }
        return;
    }
    let target = arg_usize(args, 0, 600);
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0xD1CE, 0.1);
    let lexemes = lx.tokenize(&src).unwrap();
    println!("tokens: {}", lexemes.len());
    for mode in [ParseMode::Recognize, ParseMode::Parse] {
        for memo in [MemoStrategy::SingleEntry, MemoStrategy::DualEntry, MemoStrategy::FullHash] {
            for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
                let cfg = ParserConfig { mode, keying, memo, ..ParserConfig::improved() };
                let mut pwd = Compiled::compile(&grammars::pl0::cfg(), cfg);
                let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
                let start = pwd.start;
                let run = |pwd: &mut Compiled| {
                    pwd.lang.reset();
                    match mode {
                        ParseMode::Recognize => {
                            assert!(pwd.lang.recognize(start, &toks).unwrap());
                        }
                        ParseMode::Parse => {
                            pwd.lang.parse_forest(start, &toks).unwrap();
                        }
                    }
                };
                run(&mut pwd); // warm the prepass cache and template rows
                let rounds = 20u32;
                let t0 = Instant::now();
                for _ in 0..rounds {
                    run(&mut pwd);
                }
                let ns = t0.elapsed().as_nanos() / rounds as u128;
                let m = *pwd.lang.metrics();
                println!(
                    "{mode:?}/{memo:?}/{keying:?}: ns={ns} calls={} uncached={} nodes={} \
                     evict={} tmpl_rec={} tmpl_inst={} tmpl_share={}",
                    m.derive_calls,
                    m.derive_uncached,
                    m.nodes_created,
                    m.memo_evictions,
                    m.templates_recorded,
                    m.template_instantiations,
                    m.template_shares,
                );
            }
        }
    }
}

/// Lazy-automaton row-occupancy and fallback stats on the lexeme-diverse
/// PL/0 corpus: one warm engine per row budget, showing how many states a
/// real grammar settles into, how dense the explored transition rows are,
/// and what fraction of warm-pass tokens fall back to the interpreted path
/// once the budget freezes the table.
fn automaton(target: usize) {
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0xD1CE, 0.1);
    let lexemes = lx.tokenize(&src).unwrap();
    println!("tokens: {}", lexemes.len());
    for max_rows in [usize::MAX, 4096, 512, 64, 8, 2] {
        let cfg = ParserConfig {
            mode: ParseMode::Recognize,
            keying: MemoKeying::ByClass,
            automaton: AutomatonMode::Lazy,
            automaton_max_rows: max_rows,
            ..ParserConfig::improved()
        };
        let mut pwd = Compiled::compile(&grammars::pl0::cfg(), cfg);
        let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
        let start = pwd.start;
        // Cold pass builds rows; warm pass shows the steady state.
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
        let cold = *pwd.lang.metrics();
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
        let warm = *pwd.lang.metrics();
        let stats = pwd.lang.automaton_stats();
        let budget =
            if max_rows == usize::MAX { "unbounded".to_string() } else { max_rows.to_string() };
        println!(
            "budget {budget:>9}: states={:>5} stride={:>2} explored={:>6} occupancy={:>5.1}% \
             accept_cached={:>5} dead={:>3} frozen={}",
            stats.states,
            stats.stride,
            stats.explored_transitions,
            stats.occupancy() * 100.0,
            stats.accept_cached,
            stats.dead_states,
            stats.frozen,
        );
        println!(
            "  cold: rows_built={:>5} table_hits={:>6} fallbacks={:>6} hit_ratio={:>5.1}%",
            cold.auto_rows_built,
            cold.auto_table_hits,
            cold.auto_fallbacks,
            cold.auto_hit_ratio().unwrap_or(0.0) * 100.0,
        );
        println!(
            "  warm: rows_built={:>5} table_hits={:>6} fallbacks={:>6} hit_ratio={:>5.1}%",
            warm.auto_rows_built,
            warm.auto_table_hits,
            warm.auto_fallbacks,
            warm.auto_hit_ratio().unwrap_or(0.0) * 100.0,
        );
    }
}

/// Traced end-to-end run on the lexeme-diverse PL/0 corpus. Two engine
/// tracks share one timeline: track 0 lexes and recognizes through the
/// lazy automaton (lex, derive, compact, nullable, auto_row spans); track 1
/// builds the shared parse forest (derive, compact, forest spans). The
/// stitched trace is written as Chrome `trace_event` JSON — load it in
/// `chrome://tracing` or Perfetto — and the per-phase histograms are
/// printed as a time table.
fn trace(target: usize, out: Option<String>) {
    let out = out.unwrap_or_else(|| "TRACE_pl0.json".to_string());
    let grammar = grammars::pl0::cfg();
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0xD1CE, 0.1);

    // Track 0: lex + recognize with the lazy automaton building rows.
    let rec_cfg = ParserConfig {
        mode: ParseMode::Recognize,
        keying: MemoKeying::ByClass,
        automaton: AutomatonMode::Lazy,
        ..ParserConfig::improved()
    };
    let mut rec = Compiled::compile(&grammar, rec_cfg);
    rec.lang.enable_obs(true);
    if !rec.lang.obs_enabled() {
        eprintln!(
            "observability hooks are compiled out — rebuild with the default \
             `obs` feature (drop `--no-default-features`)"
        );
        std::process::exit(2);
    }
    // The engine stamps trace events relative to `enable_obs`; `zero`
    // anchors the manual lex span and the second track to that timeline.
    let zero = Instant::now();
    let lexemes = lx.tokenize(&src).expect("generated PL/0 tokenizes");
    let lex_ns = zero.elapsed().as_nanos() as u64;
    println!("tokens: {}", lexemes.len());
    let toks = rec.tokens_from_lexemes(&lexemes).expect("terminals");
    let start = rec.start;
    assert!(rec.lang.recognize(start, &toks).expect("corpus recognizes"));

    // Track 1: forest construction in parse mode, on a fresh engine so the
    // recognize track's caches don't hide the forest-building work.
    let par_cfg = ParserConfig {
        mode: ParseMode::Parse,
        keying: MemoKeying::ByClass,
        ..ParserConfig::improved()
    };
    let mut par = Compiled::compile(&grammar, par_cfg);
    let par_offset = zero.elapsed().as_nanos() as u64;
    par.lang.enable_obs(true);
    let ptoks = par.tokens_from_lexemes(&lexemes).expect("terminals");
    let pstart = par.start;
    par.lang.parse_forest(pstart, &ptoks).expect("corpus parses");

    // Stitch the tracks: the lex span leads track 0, the parse engine's
    // events shift onto the shared clock and move to track 1.
    let mut events = rec.lang.take_trace();
    events.insert(
        0,
        TraceEvent { name: "lex".to_string(), cat: "lex", ts_ns: 0, dur_ns: lex_ns, tid: 0 },
    );
    for mut e in par.lang.take_trace() {
        e.ts_ns += par_offset;
        e.tid = 1;
        events.push(e);
    }

    // Per-phase table over both engines plus the lex span.
    let mut phases = PhaseStats::new();
    phases.record(Phase::Lex, lex_ns);
    if let Some(p) = rec.lang.obs_phases() {
        phases.merge(p);
    }
    if let Some(p) = par.lang.obs_phases() {
        phases.merge(p);
    }
    println!(
        "{:<10} {:>8} {:>14} {:>12} {:>12}",
        "phase", "spans", "total_ns", "mean_ns", "p99_ns"
    );
    for (phase, h) in phases.recorded() {
        println!(
            "{:<10} {:>8} {:>14} {:>12.0} {:>12}",
            phase.as_str(),
            h.count(),
            h.sum(),
            h.mean().unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0),
        );
    }

    let mut names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    std::fs::write(&out, pwd_obs::chrome_trace_json(&events)).expect("write trace file");
    println!(
        "wrote {} spans ({} distinct: {}) to {out}",
        events.len(),
        names.len(),
        names.join(", ")
    );
}

/// Parses a PL/0 source file with bounded-budget error recovery and prints
/// one rustc-style block (severity, message, line:column caret frame,
/// expected-set help) per diagnostic. Exit code 0 when the file is clean,
/// 1 when any diagnostic was emitted, 2 on usage or I/O errors.
fn diagnose(path: Option<String>, backend_name: Option<String>) {
    use derp::{RecoveryBudget, Session, Severity};

    let Some(path) = path else {
        eprintln!("usage: probe diagnose FILE [backend]");
        eprintln!("backends: {:?}", derp::api::BACKEND_NAMES);
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let name = backend_name.as_deref().unwrap_or("pwd-improved");
    let Some(mut backend) = derp::api::backend_by_name(name, &grammars::pl0::cfg()) else {
        eprintln!("unknown backend {name:?}; expected one of {:?}", derp::api::BACKEND_NAMES);
        std::process::exit(2);
    };

    let lexer = grammars::pl0::lexer();
    let mut tokens = lexer.source(&src);
    let mut session = Session::open(backend.as_mut()).expect("fresh backend opens a session");
    session.enable_recovery(RecoveryBudget::default());
    if let Err(e) = session.feed_source(&mut tokens) {
        eprintln!("internal parser error: {e}");
        std::process::exit(2);
    }
    let (accepted, diagnostics) = match session.finish_with_diagnostics() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("internal parser error: {e}");
            std::process::exit(2);
        }
    };

    for d in &diagnostics {
        println!("{}\n", d.render(&src));
    }
    let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
    let (errors, warnings, notes) =
        (count(Severity::Error), count(Severity::Warning), count(Severity::Note));
    if diagnostics.is_empty() {
        println!("{path}: clean — {} ({name})", if accepted { "accepted" } else { "rejected" });
        std::process::exit(if accepted { 0 } else { 1 });
    }
    println!(
        "{path}: {errors} error(s), {warnings} warning(s), {notes} note(s); \
         parse {} after repair ({name})",
        if accepted { "recovered" } else { "failed" }
    );
    std::process::exit(1);
}

/// Feeds a PL/0 source file into an incremental session and replays a
/// deterministic edit script: single-token same-kind replacements sweeping
/// the buffer decile by decile, two passes. Pass 1 swaps each target for a
/// donor lexeme of the same kind; pass 2 restores the original text —
/// showing cold-ladder and warm-ladder (re-anchored rung) behavior on the
/// same positions. Per edit: latency, the rung the splice re-entered from,
/// the rollback distance, the refed/reused split, and the convergence
/// point, followed by the session's cumulative splice counters.
fn splice(path: Option<String>, backend_name: Option<String>) {
    use derp::Session;

    let Some(path) = path else {
        eprintln!("usage: probe splice FILE [backend]");
        eprintln!("backends: {:?} or \"pwd-dfa\"", derp::api::BACKEND_NAMES);
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    // The recognize-mode automaton backend by default: it witnesses state
    // signatures, so the convergence fast path is visible in the output.
    let name = backend_name.as_deref().unwrap_or("pwd-dfa");
    let Some(mut backend) = derp::api::backend_by_name(name, &grammars::pl0::cfg()) else {
        eprintln!(
            "unknown backend {name:?}; expected one of {:?} or \"pwd-dfa\"",
            derp::api::BACKEND_NAMES
        );
        std::process::exit(2);
    };
    let lexer = grammars::pl0::lexer();
    let lexemes = match lexer.tokenize(&src) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path}: lex error: {e}");
            std::process::exit(2);
        }
    };
    let n = lexemes.len();
    if n < 10 {
        eprintln!("{path}: need at least 10 tokens to sweep, got {n}");
        std::process::exit(2);
    }

    let mut session = Session::open(backend.as_mut()).expect("fresh backend opens a session");
    session.enable_incremental().expect("incremental on a fresh session");
    let t0 = Instant::now();
    if let Err(e) = session.feed_lexemes(&lexemes) {
        eprintln!("{path}: parse error: {e}");
        std::process::exit(2);
    }
    println!("{path}: fed {n} tokens in {:?} ({name})", t0.elapsed());
    println!(
        "{:>4} {:>6} {:>10} {:>6} {:>6} {:>6} {:>7} {:>9}",
        "pass", "at", "ns", "rung", "dist", "refed", "reused", "converged"
    );
    for pass in 1..=2u32 {
        for decile in 1..10usize {
            let at = n * decile / 10;
            let target = &lexemes[at];
            let donor = lexemes
                .iter()
                .find(|l| l.kind == target.kind && l.text != target.text)
                .map_or_else(|| target.text.clone(), |l| l.text.clone());
            let text = if pass == 1 { donor } else { target.text.clone() };
            let t0 = Instant::now();
            let out = match session.splice_tokens(at, 1, &[(target.kind.as_str(), text.as_str())]) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("splice at {at} failed: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "{:>4} {:>6} {:>10} {:>6} {:>6} {:>6} {:>7} {:>9}",
                pass,
                at,
                t0.elapsed().as_nanos(),
                out.rung,
                at - out.rung,
                out.refed,
                out.reused,
                out.converged_at.map_or_else(|| "-".to_string(), |c| c.to_string()),
            );
        }
    }
    let m = session.metrics();
    println!(
        "cumulative: refed={} reused={} ladder_rollback_distance={}",
        m.tokens_refed, m.tokens_reused, m.ladder_rollback_distance
    );
    match session.finish() {
        Ok(accepted) => {
            println!("final verdict: {}", if accepted { "accepted" } else { "rejected" })
        }
        Err(e) => {
            eprintln!("finish failed: {e}");
            std::process::exit(2);
        }
    }
}
