//! Figure 7 regenerator: number of calls to `nullable?` in the improved
//! implementation relative to the original, across the corpus.
//!
//! Paper headline: the improved fixed-point algorithm (§4.2 — dependency
//! tracking plus promotion of assumed-not-nullable to definitely-not) makes
//! only ~1.5% of the original's calls on average.
//!
//! Run: `cargo run --release -p pwd-bench --bin fig7_nullable_calls [--full]`

use pwd_bench::{
    csv_header, csv_row, default_sizes, full_flag, geomean, python_cfg, python_corpus,
};
use pwd_core::{NullStrategy, ParserConfig};
use pwd_grammar::Compiled;

fn main() {
    let sizes = default_sizes(full_flag());
    let cfg = python_cfg();
    let corpus = python_corpus(&sizes);

    println!("# Figure 7: calls to nullable? relative to the original PWD");
    csv_header();

    let mut ratios = Vec::new();
    for file in &corpus {
        let count = |strategy: NullStrategy| -> u64 {
            // Only the nullability axis varies; everything else is the
            // improved configuration, isolating the §4.2 effect.
            let config = ParserConfig { nullability: strategy, ..ParserConfig::improved() };
            let mut pwd = Compiled::compile(&cfg, config);
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            let start = pwd.start;
            pwd.lang.reset_metrics();
            assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
            pwd.lang.metrics().nullable_calls
        };
        let naive = count(NullStrategy::Naive);
        let labeled = count(NullStrategy::Labeled);
        let ratio = labeled as f64 / naive as f64;
        csv_row(file.tokens, "relative_nullable_calls", format!("{ratio:.6}"));
        ratios.push(ratio);
    }

    println!();
    println!(
        "# improved/original nullable? calls: {:.2}% geometric mean (paper: ~1.5%)",
        100.0 * geomean(&ratios)
    );
}
