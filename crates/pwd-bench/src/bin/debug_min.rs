//! Minimal growth repro: stmts = ε | stmts stmt; stmt = p NL.
//!
//! Run: `cargo run --release -p pwd-bench --bin debug_min`

use pwd_core::ParserConfig;
use pwd_grammar::{CfgBuilder, Compiled};

fn probe(label: &str, build: impl Fn(&mut CfgBuilder)) {
    let mut g = CfgBuilder::new("S");
    build(&mut g);
    let cfg = g.build().unwrap();
    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    print!("{label:<40}");
    for k in [2usize, 4, 8, 16, 32] {
        pwd.lang.reset();
        let mut toks = Vec::new();
        for _ in 0..k {
            toks.push(pwd.token("p", "p").unwrap());
            toks.push(pwd.token("n", "n").unwrap());
        }
        let start = pwd.start;
        let d = pwd.lang.derivative(start, &toks).unwrap();
        print!(" {:>6}", pwd.lang.reachable_count(d));
    }
    println!();
}

fn main() {
    probe("S=ε|S T; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
    });
    probe("S=ε|S T; T=U n; U=p", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["U", "n"]);
        g.rule("U", &["p"]);
    });
    probe("S=T|S T; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &["T"]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
    });
    probe("right rec: S=ε|T S; T=p n", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["T", "S"]);
        g.rule("T", &["p", "n"]);
    });
    probe("S=ε|S T; T=A n; A=ε|p", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["A", "n"]);
        g.rule("A", &[]);
        g.rule("A", &["p"]);
    });
    probe("nested list: T=L n; L=p|L ; p", |g| {
        g.terminals(&["p", "n", ";"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["L", "n"]);
        g.rule("L", &["p"]);
        g.rule("L", &["L", ";", "p"]);
    });
    probe("expr chain: T=E n; E=F|E + F; F=p", |g| {
        g.terminals(&["p", "n", "+"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["E", "n"]);
        g.rule("E", &["F"]);
        g.rule("E", &["E", "+", "F"]);
        g.rule("F", &["p"]);
    });
    probe("two stmt kinds", |g| {
        g.terminals(&["p", "q", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
        g.rule("T", &["q", "n"]);
    });
    probe("deep unary chain", |g| {
        g.terminals(&["p", "n"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["A1", "n"]);
        g.rule("A1", &["A2"]);
        g.rule("A2", &["A3"]);
        g.rule("A3", &["A4"]);
        g.rule("A4", &["p"]);
    });
    probe("suite-like: T=p n|h n I S D", |g| {
        // compound statement with a nested statement list (suite)
        g.terminals(&["p", "n", "h", "I", "D"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["p", "n"]);
        g.rule("T", &["h", "n", "I", "S", "D"]);
    });
    probe("python-like small core", |g| {
        g.terminals(&["p", "n", ";", "=", "x", "+"]);
        g.rule("S", &[]);
        g.rule("S", &["S", "T"]);
        g.rule("T", &["SS", "n"]);
        g.rule("SS", &["Sm"]);
        g.rule("SS", &["SS", ";", "Sm"]);
        g.rule("Sm", &["p"]);
        g.rule("Sm", &["E"]);
        g.rule("Sm", &["E", "=", "E"]);
        g.rule("E", &["F"]);
        g.rule("E", &["E", "+", "F"]);
        g.rule("F", &["x"]);
    });
}
