//! Figure 6 regenerator: seconds-per-token vs input size for the four
//! parsers — original PWD (Might et al. 2011 configuration), Earley
//! (stand-in for `parser-tools/cfg-parser`), improved PWD, and GLR
//! (stand-in for Bison `%glr-parser`) — on the synthetic Python corpus.
//!
//! Paper headlines: improved PWD ≈ 951× faster than original PWD, ≈ 64.6×
//! faster than the Earley library, ≈ 25.2× slower than C Bison. Our GLR is
//! Rust, not C, so the last gap is expected to shrink; the *ordering*
//! (GLR fastest, then improved PWD, then Earley, then original PWD) and the
//! per-token flatness (linear behavior in practice) are the reproduction
//! targets.
//!
//! Run: `cargo run --release -p pwd-bench --bin fig6_performance [--full]`

use pwd_bench::{
    csv_header, csv_row, default_sizes, full_flag, geomean, python_cfg, python_corpus, time_mean,
};
use pwd_core::{MemoKeying, ParserConfig};
use pwd_earley::EarleyParser;
use pwd_glr::GlrParser;
use pwd_grammar::Compiled;
use std::time::Duration;

fn main() {
    let full = full_flag();
    let sizes = default_sizes(full);
    // The original configuration is orders of magnitude slower and more
    // memory-hungry (the paper had to kill runs at 8 GB); cap its sizes.
    let original_cap = if full { 3000 } else { 1000 };

    let cfg = python_cfg();
    let corpus = python_corpus(&sizes);
    let earley = EarleyParser::new(&cfg);
    let glr = GlrParser::new(&cfg);

    println!("# Figure 6: seconds per token parsed vs tokens in input");
    csv_header();

    let min_total = Duration::from_millis(if full { 1000 } else { 200 });
    let mut ratios_orig = Vec::new();
    let mut ratios_earley = Vec::new();
    let mut ratios_glr = Vec::new();

    for file in &corpus {
        let n = file.tokens as f64;

        // Improved PWD.
        let improved_config =
            ParserConfig { keying: MemoKeying::ByValue, ..ParserConfig::improved() };
        let mut pwd = Compiled::compile(&cfg, improved_config);
        let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("grammar terminals");
        let start = pwd.start;
        let improved = time_mean(3, min_total, || {
            pwd.lang.reset();
            assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
        });
        csv_row(file.tokens, "improved_pwd", improved.as_secs_f64() / n);

        // Original 2011 PWD (capped).
        let original = if file.tokens <= original_cap {
            let mut pwd = Compiled::compile(&cfg, ParserConfig::original_2011());
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("grammar terminals");
            let start = pwd.start;
            let d = time_mean(1, Duration::from_millis(0), || {
                pwd.lang.reset();
                assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
            });
            csv_row(file.tokens, "original_pwd", d.as_secs_f64() / n);
            Some(d)
        } else {
            None
        };

        // Earley.
        let earley_t = time_mean(3, min_total, || {
            assert!(earley.recognize_lexemes(&file.lexemes).expect("terminals"));
        });
        csv_row(file.tokens, "earley", earley_t.as_secs_f64() / n);

        // GLR.
        let glr_t = time_mean(3, min_total, || {
            assert!(glr.recognize_lexemes(&file.lexemes).expect("terminals"));
        });
        csv_row(file.tokens, "glr", glr_t.as_secs_f64() / n);

        if let Some(o) = original {
            ratios_orig.push(o.as_secs_f64() / improved.as_secs_f64());
        }
        ratios_earley.push(earley_t.as_secs_f64() / improved.as_secs_f64());
        ratios_glr.push(glr_t.as_secs_f64() / improved.as_secs_f64());
    }

    println!();
    println!("# summary (geometric means of per-file ratios)");
    println!(
        "# improved vs original PWD: {:>8.1}x faster   (paper: 951x, Racket constants included)",
        geomean(&ratios_orig)
    );
    println!(
        "# improved vs Earley:       {:>8.1}x faster   (paper: 64.6x vs parser-tools)",
        geomean(&ratios_earley)
    );
    println!(
        "# improved vs GLR:          {:>8.2}x ({})      (paper: 25.2x slower than C Bison)",
        geomean(&ratios_glr),
        if geomean(&ratios_glr) < 1.0 { "slower" } else { "faster" },
    );
}
