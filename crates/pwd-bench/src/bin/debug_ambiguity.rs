//! Diagnostic: parse-count of Python snippets (ambiguity hunt).
//!
//! Run: `cargo run --release -p pwd-bench --bin debug_ambiguity`

use pwd_bench::python_cfg;
use pwd_core::ParserConfig;
use pwd_grammar::Compiled;

fn main() {
    let cfg = python_cfg();
    let snippets = [
        "x = 1\n",
        "x = 1 + 2\n",
        "x = f(1)\n",
        "x = f(1, 2)\n",
        "x = a.b\n",
        "x = a[1]\n",
        "x = a[1:2]\n",
        "x = (1, 2)\n",
        "x = [1, 2]\n",
        "x = {1: 2}\n",
        "x, y = 1, 2\n",
        "if x:\n    pass\n",
        "def f(a):\n    return a\n",
        "for i in range(3):\n    pass\n",
        "x = 'a' 'b'\n",
        "x = lambda a: a\n",
        "x = y if z else w\n",
        "print(x)\n",
        "x = a + b * c - d\n",
        "x = f(g(h(1)))\n",
        "pass\npass\npass\n",
        "x = 1\ny = 2\nz = 3\n",
    ];
    for src in snippets {
        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let lexemes = pwd_lex::tokenize_python(src).unwrap();
        let toks = pwd.tokens_from_lexemes(&lexemes).unwrap();
        let start = pwd.start;
        match pwd.lang.count_parses(start, &toks) {
            Ok(n) => println!("{:>6}  {src:?}", n.to_string()),
            Err(e) => println!("  ERR({e})  {src:?}"),
        }
    }
}
