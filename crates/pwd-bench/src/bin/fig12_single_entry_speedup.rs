//! Figure 12 regenerator: wall-clock speedup of single-entry memoization
//! over full hash tables, per corpus file.
//!
//! Paper headline: the extra recomputation of Figure 11 is outweighed by
//! avoiding hashing — average speedup 2.04×.
//!
//! Run: `cargo run --release -p pwd-bench --bin fig12_single_entry_speedup [--full]`

use pwd_bench::{
    csv_header, csv_row, default_sizes, full_flag, geomean, python_cfg, python_corpus, time_mean,
};
use pwd_core::{MemoKeying, MemoStrategy, ParserConfig};
use pwd_grammar::Compiled;
use std::time::Duration;

fn main() {
    let full = full_flag();
    let sizes = default_sizes(full);
    let cfg = python_cfg();
    let corpus = python_corpus(&sizes);
    let min_total = Duration::from_millis(if full { 1000 } else { 200 });

    println!("# Figure 12: speedup of single-entry memoization over full hash tables");
    csv_header();

    let mut speedups = Vec::new();
    for file in &corpus {
        let measure = |memo: MemoStrategy| -> Duration {
            let config =
                ParserConfig { memo, keying: MemoKeying::ByValue, ..ParserConfig::improved() };
            let mut pwd = Compiled::compile(&cfg, config);
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            let start = pwd.start;
            time_mean(3, min_total, || {
                pwd.lang.reset();
                assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
            })
        };
        let full_t = measure(MemoStrategy::FullHash);
        let single_t = measure(MemoStrategy::SingleEntry);
        let dual_t = measure(MemoStrategy::DualEntry);
        let speedup = full_t.as_secs_f64() / single_t.as_secs_f64();
        csv_row(file.tokens, "speedup", format!("{speedup:.3}"));
        // §4.4: the paper tried double-entry caches and found them "not
        // promising"; report ours alongside.
        csv_row(
            file.tokens,
            "speedup_dual",
            format!("{:.3}", full_t.as_secs_f64() / dual_t.as_secs_f64()),
        );
        speedups.push(speedup);
    }

    println!();
    println!(
        "# single-entry speedup: {:.2}x geometric mean (paper: 2.04x average)",
        geomean(&speedups)
    );
}
