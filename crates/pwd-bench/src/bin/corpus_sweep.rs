//! Cross-corpus sweep: per-token parse cost of improved PWD, Earley, and
//! GLR on every grammar of the corpus (arith, JSON, Python subset), plus
//! the ambiguous grammars' forest statistics.
//!
//! Complements Figure 6 (which fixes the Python corpus) by showing the
//! same flat per-token behavior across grammar shapes.
//!
//! Run: `cargo run --release -p pwd-bench --bin corpus_sweep [--full]`

use pwd_bench::{csv_header, csv_row, full_flag, time_mean};
use pwd_core::ParserConfig;
use pwd_earley::EarleyParser;
use pwd_glr::GlrParser;
use pwd_grammar::{gen, grammars, Cfg, Compiled};
use pwd_lex::Lexeme;
use std::time::Duration;

fn series(label: &str, cfg: &Cfg, corpus: &[(usize, Vec<Lexeme>)], min_total: Duration) {
    let earley = EarleyParser::new(cfg);
    let glr = GlrParser::new(cfg);
    for (tokens, lexemes) in corpus {
        let n = *tokens as f64;
        let mut pwd = Compiled::compile(cfg, ParserConfig::improved());
        let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
        let start = pwd.start;
        let t = time_mean(3, min_total, || {
            pwd.lang.reset();
            assert!(pwd.lang.recognize(start, &toks).expect("ok"));
        });
        csv_row(tokens, &format!("{label}/improved_pwd"), t.as_secs_f64() / n);
        let t = time_mean(3, min_total, || {
            assert!(earley.recognize_lexemes(lexemes).expect("ok"));
        });
        csv_row(tokens, &format!("{label}/earley"), t.as_secs_f64() / n);
        let t = time_mean(3, min_total, || {
            assert!(glr.recognize_lexemes(lexemes).expect("ok"));
        });
        csv_row(tokens, &format!("{label}/glr"), t.as_secs_f64() / n);
    }
}

fn main() {
    let full = full_flag();
    let sizes: Vec<usize> = if full { vec![100, 400, 1600, 6400] } else { vec![100, 400, 1600] };
    let min_total = Duration::from_millis(if full { 500 } else { 100 });
    println!("# corpus sweep: seconds per token across grammars/parsers");
    csv_header();

    // Arithmetic expressions.
    let arith_cfg = grammars::arith::cfg();
    let lexer = grammars::arith::lexer();
    let corpus: Vec<(usize, Vec<Lexeme>)> = sizes
        .iter()
        .map(|&s| {
            let lx = lexer.tokenize(&gen::arith_source(s, 0xA11)).expect("lexes");
            (lx.len(), lx)
        })
        .collect();
    series("arith", &arith_cfg, &corpus, min_total);

    // JSON documents.
    let json_cfg = grammars::json::cfg();
    let lexer = grammars::json::lexer();
    let corpus: Vec<(usize, Vec<Lexeme>)> = sizes
        .iter()
        .map(|&s| {
            let lx = lexer.tokenize(&gen::json_source(s, 0x150)).expect("lexes");
            (lx.len(), lx)
        })
        .collect();
    series("json", &json_cfg, &corpus, min_total);

    // Python subset.
    let py_cfg = grammars::python::cfg();
    let corpus: Vec<(usize, Vec<Lexeme>)> = sizes
        .iter()
        .map(|&s| {
            let lx = pwd_lex::tokenize_python(&gen::python_source(s, 0x97)).expect("lexes");
            (lx.len(), lx)
        })
        .collect();
    series("python", &py_cfg, &corpus, min_total);

    // Ambiguous forest statistics: S → S S | a on aⁿ.
    println!();
    println!("# ambiguity: parses and forest size for S → S S | a on a^n");
    let cat = grammars::ambiguous::catalan();
    for n in [4usize, 8, 12, 16] {
        let mut pwd = Compiled::compile(&cat, ParserConfig::improved());
        let toks: Vec<_> = (0..n).map(|_| pwd.token("a", "a").unwrap()).collect();
        let start = pwd.start;
        let forest = pwd.lang.parse_forest(start, &toks).expect("accepted");
        let count = pwd.lang.count_of(forest);
        csv_row(n, "ambiguity/parses", count.to_string());
        csv_row(n, "ambiguity/forest_nodes", pwd.lang.forest_count());
    }
}
