//! Figure 11 regenerator: uncached calls to `derive` with the single-entry
//! memo relative to full hash tables.
//!
//! Paper headline: the forgetful single-entry cache recomputes a little —
//! +4.2% more uncached calls on average, never more than +4.8%.
//!
//! Run: `cargo run --release -p pwd-bench --bin fig11_uncached_calls [--full]`

use pwd_bench::{
    csv_header, csv_row, default_sizes, full_flag, geomean, python_cfg, python_corpus,
};
use pwd_core::{MemoKeying, MemoStrategy, ParserConfig};
use pwd_grammar::Compiled;

fn main() {
    let sizes = default_sizes(full_flag());
    let cfg = python_cfg();
    let corpus = python_corpus(&sizes);

    println!("# Figure 11: uncached derive calls, single-entry relative to full hash");
    csv_header();

    let mut ratios = Vec::new();
    for file in &corpus {
        let count = |memo: MemoStrategy| -> u64 {
            let config =
                ParserConfig { memo, keying: MemoKeying::ByValue, ..ParserConfig::improved() };
            let mut pwd = Compiled::compile(&cfg, config);
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            let start = pwd.start;
            pwd.lang.reset_metrics();
            assert!(pwd.lang.recognize(start, &toks).expect("no engine error"));
            pwd.lang.metrics().derive_uncached
        };
        let full = count(MemoStrategy::FullHash);
        let single = count(MemoStrategy::SingleEntry);
        let dual = count(MemoStrategy::DualEntry);
        let ratio = single as f64 / full as f64;
        csv_row(file.tokens, "uncached_ratio", format!("{ratio:.6}"));
        csv_row(file.tokens, "uncached_ratio_dual", format!("{:.6}", dual as f64 / full as f64));
        ratios.push(ratio);
    }

    let gm = geomean(&ratios);
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "# single-entry vs full-hash uncached calls: {:+.1}% mean, {:+.1}% max (paper: +4.2% / +4.8%)",
        100.0 * (gm - 1.0),
        100.0 * (max - 1.0)
    );
}
