//! Micro-probe separating the costs behind the `reset_reuse` bench:
//! grammar compile alone, `reset()` alone, reset+parse, and fresh+parse.
//!
//! Run: `cargo run --release -p pwd-bench --bin reset_probe`

use pwd_bench::{python_cfg, python_corpus};
use pwd_core::ParserConfig;
use pwd_grammar::Compiled;
use std::time::Instant;

fn main() {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200]);
    let file = &corpus[0];

    // compile-only cost
    let t0 = Instant::now();
    for _ in 0..50 {
        let c = Compiled::compile(&cfg, ParserConfig::improved());
        std::hint::black_box(&c);
    }
    println!("compile-only: {:?}/round", t0.elapsed() / 50);

    let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
    let toks = pwd.tokens_from_lexemes(&file.lexemes).unwrap();
    let start = pwd.start;
    // warmup
    for _ in 0..3 {
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
    }
    // reset cost alone
    let t0 = Instant::now();
    for _ in 0..1000 {
        pwd.lang.reset();
    }
    println!("reset-only: {:?}/round", t0.elapsed() / 1000);
    // reset+parse
    let t0 = Instant::now();
    for _ in 0..30 {
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
    }
    println!("reset+parse: {:?}/round", t0.elapsed() / 30);
    // fresh compile+parse
    let t0 = Instant::now();
    for _ in 0..30 {
        let mut p = Compiled::compile(&cfg, ParserConfig::improved());
        let tk = p.tokens_from_lexemes(&file.lexemes).unwrap();
        assert!(p.lang.recognize(p.start, &tk).unwrap());
    }
    println!("fresh+parse: {:?}/round", t0.elapsed() / 30);
}
