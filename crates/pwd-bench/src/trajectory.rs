//! The shared `BENCH_*.json` trajectory writer.
//!
//! Every Criterion bench that records a machine-readable trajectory at the
//! workspace root used to hand-format its own JSON lines; this module is
//! the one schema they all share now. Each line is one sample:
//!
//! ```text
//! {"bench":"lexeme_diverse","name":"tokens=1019/recognize_speedup",
//!  "value":2.31,"unit":"ratio","timestamp":"1754524800","gate":"pass"}
//! ```
//!
//! * `bench` — the bench binary's name (also names the output file,
//!   `BENCH_<bench>.json`).
//! * `name` — the metric, with any corpus-size qualifier folded in.
//! * `value`/`unit` — the measurement (`ns`, `tokens/s`, `ratio`, …).
//! * `timestamp` — from the CI environment (`BENCH_TIMESTAMP`,
//!   `SOURCE_DATE_EPOCH`, or `GITHUB_RUN_ID`, first set wins) so trajectory
//!   lines from one CI run share one stamp; local runs fall back to wall
//!   clock seconds.
//! * `gate` — `"pass"`/`"fail"` when the sample is a gated threshold
//!   check, `null` for plain measurements.

use std::time::{SystemTime, UNIX_EPOCH};

/// Accumulates samples for one bench and writes `BENCH_<bench>.json` at the
/// workspace root.
#[derive(Debug)]
pub struct Trajectory {
    bench: String,
    timestamp: String,
    records: Vec<String>,
}

/// One CI-run-stable timestamp: the first set variable of `BENCH_TIMESTAMP`,
/// `SOURCE_DATE_EPOCH`, `GITHUB_RUN_ID`; otherwise wall-clock seconds.
fn ci_timestamp() -> String {
    for var in ["BENCH_TIMESTAMP", "SOURCE_DATE_EPOCH", "GITHUB_RUN_ID"] {
        if let Ok(v) = std::env::var(var) {
            if !v.is_empty() {
                return v;
            }
        }
    }
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_default()
}

impl Trajectory {
    /// Starts a trajectory for `bench` (callers pass a plain identifier;
    /// names are not JSON-escaped).
    pub fn new(bench: &str) -> Trajectory {
        Trajectory { bench: bench.to_string(), timestamp: ci_timestamp(), records: Vec::new() }
    }

    /// Records one plain measurement and echoes it to stdout.
    pub fn record(&mut self, name: &str, value: f64, unit: &str) {
        self.push(name, value, unit, None);
    }

    /// Records a gated threshold check (`passed` becomes `"pass"`/`"fail"`)
    /// and echoes it to stdout. Recording happens *before* the caller
    /// asserts, so a failed gate still leaves its evidence in the file.
    pub fn gate(&mut self, name: &str, value: f64, unit: &str, passed: bool) {
        self.push(name, value, unit, Some(passed));
    }

    fn push(&mut self, name: &str, value: f64, unit: &str, gate: Option<bool>) {
        let gate = match gate {
            None => "null".to_string(),
            Some(true) => "\"pass\"".to_string(),
            Some(false) => "\"fail\"".to_string(),
        };
        let line = format!(
            "{{\"bench\":\"{}\",\"name\":\"{name}\",\"value\":{value},\"unit\":\"{unit}\",\
             \"timestamp\":\"{}\",\"gate\":{gate}}}",
            self.bench, self.timestamp,
        );
        println!("{line}");
        self.records.push(line);
    }

    /// Lines recorded so far (primarily for tests and for benches that
    /// merge a carried-over baseline).
    pub fn lines(&self) -> &[String] {
        &self.records
    }

    /// Prepends an already-formatted line (used to carry a baseline sample
    /// from a previous run forward into the rewritten file).
    pub fn carry_line(&mut self, line: String) {
        self.records.insert(0, line);
    }

    /// Writes `BENCH_<bench>.json` at the workspace root; pass
    /// `env!("CARGO_MANIFEST_DIR")`. A write failure is reported, not fatal
    /// — the measurements were already printed.
    pub fn write(&self, manifest_dir: &str) {
        let path = format!("{manifest_dir}/../../BENCH_{}.json", self.bench);
        if let Err(e) = std::fs::write(&path, self.records.join("\n") + "\n") {
            eprintln!("note: could not write {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_follow_the_stable_schema() {
        let mut t = Trajectory::new("demo");
        t.record("tokens=100/speed", 42.5, "tokens/s");
        t.gate("tokens=100/speedup", 2.0, "ratio", true);
        t.gate("tokens=100/overhead", 9.0, "percent", false);
        let lines = t.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"bench\":\"demo\",\"name\":\"tokens=100/speed\""));
        assert!(lines[0].contains("\"value\":42.5,\"unit\":\"tokens/s\""));
        assert!(lines[0].ends_with("\"gate\":null}"));
        assert!(lines[1].ends_with("\"gate\":\"pass\"}"));
        assert!(lines[2].ends_with("\"gate\":\"fail\"}"));
        for line in lines {
            assert!(line.contains("\"timestamp\":\""));
        }
    }

    #[test]
    fn write_lands_two_levels_above_the_manifest_dir() {
        let root = std::env::temp_dir().join(format!("pwd-trajectory-{}", std::process::id()));
        let manifest = root.join("crates").join("pwd-bench");
        std::fs::create_dir_all(&manifest).unwrap();
        let mut t = Trajectory::new("write_test");
        t.record("n", 1.0, "count");
        t.carry_line("{\"bench\":\"write_test\",\"name\":\"carried\"}".to_string());
        t.write(manifest.to_str().unwrap());
        let written = std::fs::read_to_string(root.join("BENCH_write_test.json")).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"carried\""), "carried line comes first");
        assert!(lines[1].contains("\"name\":\"n\""));
        std::fs::remove_dir_all(&root).ok();
    }
}
