//! Throughput of the `pwd-serve` batch service as workers scale.
//!
//! Submits a fixed Python-grammar corpus through `ParseService::submit_batch`
//! at 1, 2, 4, and 8 workers and reports inputs/sec per worker count, plus
//! the 1 → 4 scaling factor. Emits one machine-readable JSON line for the
//! bench trajectory, e.g.:
//!
//! ```text
//! {"bench":"serve_throughput","mode":"full","cpus":8,"files":24,
//!  "tokens_total":7168,"grammar_fingerprint":"0x…","series":[
//!  {"workers":1,"inputs_per_sec":103.2},…],"speedup_1_to_4":2.87}
//! ```
//!
//! Run: `cargo bench -p pwd-bench --bench serve_throughput`
//! Smoke (CI): `cargo bench -p pwd-bench --bench serve_throughput -- --smoke`
//! (few iterations, workers 1 and 2 only, no scaling assertion).
//!
//! The parse work is CPU-bound and sessions are per-worker, so scaling is
//! gated on the hardware: the ≥ 2.5× 1 → 4 workers assertion only fires when
//! the host actually exposes ≥ 4 CPUs (the `cpus` field records what the
//! trajectory was measured on).

use pwd_bench::{python_cfg, python_corpus};
use pwd_serve::{Input, ParseService, ServiceConfig};
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("SERVE_THROUGHPUT_SMOKE").is_some();
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let (files, tokens_per_file, rounds, worker_counts): (usize, usize, u32, &[usize]) =
        if smoke { (6, 120, 1, &[1, 2]) } else { (24, 300, 3, &[1, 2, 4, 8]) };

    let cfg = python_cfg();
    let corpus = python_corpus(&vec![tokens_per_file; files]);
    let inputs: Vec<Input> =
        corpus.iter().map(|f| Input::from_lexemes(f.lexemes.clone())).collect();
    let tokens_total: usize = corpus.iter().map(|f| f.tokens).sum();

    println!(
        "== serve_throughput ({}) — {files} files, {tokens_total} tokens, {cpus} cpu(s) ==",
        if smoke { "smoke" } else { "full" },
    );

    let mut series: Vec<(usize, f64)> = Vec::new();
    for &workers in worker_counts {
        let service = ParseService::new(ServiceConfig { workers, ..Default::default() });
        // Warm-up: compile the grammar into the cache and fork each worker's
        // session once, so the timed window measures steady-state serving.
        let warm = service.submit_batch(&cfg, &inputs).expect("service accepts corpus");
        assert_eq!(warm.metrics.accepted, files, "corpus must parse");

        let t0 = Instant::now();
        for _ in 0..rounds {
            let report = service.submit_batch(&cfg, &inputs).expect("service accepts corpus");
            assert_eq!(report.metrics.accepted, files);
            assert!(report.metrics.cache_hit, "warm batches must not recompile");
        }
        let elapsed = t0.elapsed();
        let inputs_per_sec = (files as u32 * rounds) as f64 / elapsed.as_secs_f64();

        let m = service.metrics();
        assert!(
            m.sessions.forked <= (workers * files) as u64 && m.sessions.reused > 0,
            "pool must reuse sessions, not refork: {:?}",
            m.sessions
        );
        println!(
            "workers={workers}  {:>8.1} inputs/s  ({:>9.0} tokens/s, forked={}, reused={})",
            inputs_per_sec,
            inputs_per_sec * (tokens_total / files) as f64,
            m.sessions.forked,
            m.sessions.reused,
        );
        series.push((workers, inputs_per_sec));
    }

    let at = |w: usize| series.iter().find(|(ws, _)| *ws == w).map(|(_, v)| *v);
    let speedup_1_to_4 = match (at(1), at(4)) {
        (Some(one), Some(four)) => four / one,
        _ => f64::NAN,
    };

    let series_json: Vec<String> = series
        .iter()
        .map(|(w, v)| format!("{{\"workers\":{w},\"inputs_per_sec\":{v:.1}}}"))
        .collect();
    let speedup_json = if speedup_1_to_4.is_finite() {
        format!("{speedup_1_to_4:.3}")
    } else {
        "null".to_string() // smoke mode measures 1 and 2 workers only
    };
    println!(
        "{{\"bench\":\"serve_throughput\",\"mode\":\"{}\",\"cpus\":{},\"files\":{},\
         \"tokens_total\":{},\"grammar_fingerprint\":\"{:#018x}\",\"series\":[{}],\
         \"speedup_1_to_4\":{}}}",
        if smoke { "smoke" } else { "full" },
        cpus,
        files,
        tokens_total,
        cfg.fingerprint(),
        series_json.join(","),
        speedup_json,
    );

    // The scaling acceptance gate: parallel workers must buy real throughput
    // wherever the hardware can express it.
    if !smoke && cpus >= 4 {
        assert!(
            speedup_1_to_4 >= 2.5,
            "1 → 4 workers must scale ≥ 2.5× on ≥ 4 CPUs (got {speedup_1_to_4:.2}×)"
        );
    } else if !smoke {
        println!(
            "note: {cpus} cpu(s) visible — recording trajectory only, \
             ≥2.5× scaling gate needs ≥ 4"
        );
    }
}
