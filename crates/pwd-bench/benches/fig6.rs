//! Criterion bench for Figure 6: the four parsers on the Python corpus.
//!
//! Run: `cargo bench -p pwd-bench --bench fig6`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::{python_cfg, python_corpus};
use pwd_core::ParserConfig;
use pwd_earley::EarleyParser;
use pwd_glr::GlrParser;
use pwd_grammar::Compiled;

fn bench_parsers(c: &mut Criterion) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200, 600]);
    let earley = EarleyParser::new(&cfg);
    let glr = GlrParser::new(&cfg);

    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    for file in &corpus {
        let n = file.tokens;

        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
        let start = pwd.start;
        group.bench_with_input(BenchmarkId::new("improved_pwd", n), &n, |b, _| {
            b.iter(|| {
                pwd.lang.reset();
                assert!(pwd.lang.recognize(start, &toks).unwrap());
            })
        });

        // The original configuration only at the smallest size (it is the
        // paper's three-minutes-per-31-lines arm).
        if file.tokens <= 300 {
            let mut orig = Compiled::compile(&cfg, ParserConfig::original_2011());
            let toks = orig.tokens_from_lexemes(&file.lexemes).expect("terminals");
            let start = orig.start;
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::new("original_pwd", n), &n, |b, _| {
                b.iter(|| {
                    orig.lang.reset();
                    assert!(orig.lang.recognize(start, &toks).unwrap());
                })
            });
            group.sample_size(20);
        }

        group.bench_with_input(BenchmarkId::new("earley", n), &n, |b, _| {
            b.iter(|| assert!(earley.recognize_lexemes(&file.lexemes).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("glr", n), &n, |b, _| {
            b.iter(|| assert!(glr.recognize_lexemes(&file.lexemes).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parsers);
criterion_main!(benches);
