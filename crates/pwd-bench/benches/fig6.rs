//! Criterion bench for Figure 6: the four parsers on the Python corpus, all
//! driven through the shared `derp::api::Parser` trait — one generic loop,
//! no per-backend driver code.
//!
//! Measurement boundary: `recognize_lexemes` includes lexeme→token
//! conversion for every arm uniformly (the seed hoisted it for the PWD arms
//! only). Conversion is interner-cached after the warm-up round — a few
//! hash lookups per token, ≲0.1% of the cheapest arm — so the ratios are
//! unaffected and the arms are measured symmetrically.
//!
//! Run: `cargo bench -p pwd-bench --bench fig6`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use derp::api::backends;
use pwd_bench::{python_cfg, python_corpus};

fn bench_parsers(c: &mut Criterion) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200, 600]);
    let mut roster = backends(&cfg);

    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    for file in &corpus {
        let n = file.tokens;
        for backend in &mut roster {
            // The original configuration only at the smallest size (it is
            // the paper's three-minutes-per-31-lines arm).
            if backend.name() == "pwd-original" {
                if file.tokens > 300 {
                    continue;
                }
                group.sample_size(10);
            } else {
                group.sample_size(20);
            }
            group.bench_with_input(BenchmarkId::new(backend.name(), n), &n, |b, _| {
                b.iter(|| assert!(backend.recognize_lexemes(&file.lexemes).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parsers);
criterion_main!(benches);
