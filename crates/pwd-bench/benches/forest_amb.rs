//! Bench for the shared-forest tentpole: on a highly ambiguous grammar
//! (`S → S S | a`, Catalan-many readings), exact ambiguity counting over
//! the packed forest must beat bounded enumeration — the operation the old
//! differential harness (and any client asking "how ambiguous is this?")
//! had to pay — by an order of magnitude, while being *complete* where
//! enumeration at 64 trees is silently truncated.
//!
//! Three timings per input size, all over the unified `Parser` API:
//!
//! * `construct_ns` — building the canonical shared forest;
//! * `count_ns`    — exact tree counting on the built forest (memoized DAG
//!   traversal, no enumeration);
//! * `enum64_ns`   — bounded enumeration of 64 trees on the same forest.
//!
//! Emits machine-readable trajectory samples (also written to
//! `BENCH_forest_amb.json` at the workspace root) in the shared
//! [`pwd_bench::Trajectory`] schema.
//!
//! Run: `cargo bench -p pwd-bench --bench forest_amb`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use derp::api::{EnumLimits, ParseCount, ParseForest, Parser, PwdBackend};
use pwd_bench::Trajectory;
use pwd_grammar::grammars;
use std::time::Instant;

/// Best-of-rounds nanoseconds for one closure.
fn best_ns(rounds: u32, mut f: impl FnMut()) -> u128 {
    (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .expect("rounds > 0")
}

fn forest_for(backend: &mut PwdBackend, n: usize) -> ParseForest {
    backend.parse_forest(&vec!["a"; n]).expect("catalan accepts a^n")
}

fn bench_forest_amb(c: &mut Criterion) {
    let cfg = grammars::ambiguous::catalan();
    let sizes = [12usize, 18];

    let mut group = c.benchmark_group("forest_amb");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for &n in &sizes {
        let mut backend = PwdBackend::improved(&cfg);
        let forest = forest_for(&mut backend, n);
        group.bench_with_input(BenchmarkId::new("exact_count", n), &n, |b, _| {
            b.iter(|| assert!(!forest.count().is_zero()))
        });
        group.bench_with_input(BenchmarkId::new("enum_64", n), &n, |b, _| {
            b.iter(|| assert_eq!(forest.trees(EnumLimits::default()).len(), 64))
        });
    }
    group.finish();

    // Trajectory samples, measured outside criterion so the numbers are
    // directly comparable round over round.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut traj = Trajectory::new("forest_amb");
    for &n in &sizes {
        let rounds = if smoke { 5 } else { 20 };
        let mut backend = PwdBackend::improved(&cfg);
        let construct_ns = best_ns(rounds, || {
            let _ = forest_for(&mut backend, n);
        });
        let forest = forest_for(&mut backend, n);
        let count = forest.count();
        let count_ns = best_ns(rounds, || assert!(!forest.count().is_zero()));
        let enum64_ns =
            best_ns(rounds, || assert_eq!(forest.trees(EnumLimits::default()).len(), 64));
        let speedup = enum64_ns as f64 / count_ns as f64;
        // The exact ambiguity count rides along as a sample (Catalan
        // numbers stay comfortably inside f64's exact-integer range at
        // these sizes).
        if let ParseCount::Finite(total) = count {
            traj.record(&format!("tokens={n}/ambiguity_count"), total as f64, "trees");
        }
        traj.record(&format!("tokens={n}/construct_ns"), construct_ns as f64, "ns");
        traj.record(&format!("tokens={n}/count_ns"), count_ns as f64, "ns");
        traj.record(&format!("tokens={n}/enum64_ns"), enum64_ns as f64, "ns");

        if n == *sizes.last().expect("sizes nonempty") {
            // The tentpole's point: the count is exact and *complete* on an
            // input whose tree set enumeration silently truncates…
            match count {
                ParseCount::Finite(total) => assert!(
                    total > EnumLimits::default().max_trees as u128,
                    "gate input must exceed the enumeration cap (got {total})"
                ),
                other => panic!("catalan count must be finite, got {other:?}"),
            }
            // …and an order of magnitude faster than even the truncated
            // enumeration (relaxed under --smoke for noisy CI runners; the
            // recorded samples are the trajectory either way).
            let gate = if smoke { 4.0 } else { 10.0 };
            traj.gate(&format!("tokens={n}/count_speedup"), speedup, "ratio", speedup >= gate);
            traj.write(env!("CARGO_MANIFEST_DIR"));
            assert!(
                speedup >= gate,
                "exact counting must be ≥{gate}× bounded enumeration at 64 trees \
                 ({n} tokens: {count_ns} vs {enum64_ns} ns)"
            );
        } else {
            traj.record(&format!("tokens={n}/count_speedup"), speedup, "ratio");
        }
    }

    traj.write(env!("CARGO_MANIFEST_DIR"));
}

criterion_group!(benches, bench_forest_amb);
criterion_main!(benches);
