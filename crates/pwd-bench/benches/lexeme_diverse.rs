//! Bench for the memo-keying tentpole: throughput on lexeme-diverse input
//! (a PL/0 corpus whose identifiers are mostly unique) under value-keyed
//! vs class-keyed derive memoization, in both recognize and parse mode.
//!
//! Value keying is the paper's scheme: on this workload nearly every token
//! is a fresh `(kind, lexeme)` memo key, so the memo all-misses and the
//! engine re-derives the grammar graph per token. Class keying shares
//! derivatives across lexemes of one terminal (fully in recognize mode,
//! via per-`(node, TermId)` templates in parse mode).
//!
//! Emits machine-readable trajectory samples (also written to
//! `BENCH_lexeme_diverse.json` at the workspace root) in the shared
//! [`pwd_bench::Trajectory`] schema.
//!
//! Run: `cargo bench -p pwd-bench --bench lexeme_diverse`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::Trajectory;
use pwd_core::{MemoKeying, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Compiled};
use pwd_lex::Lexeme;
use std::time::Instant;

/// ~90% of identifier occurrences are first occurrences.
const ID_REUSE: f64 = 0.1;

fn corpus(targets: &[usize]) -> Vec<Vec<Lexeme>> {
    let lx = grammars::pl0::lexer();
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let src = gen::pl0_source(t, 0xD1CE + i as u64, ID_REUSE);
            lx.tokenize(&src).expect("generated PL/0 tokenizes")
        })
        .collect()
}

fn config(mode: ParseMode, keying: MemoKeying) -> ParserConfig {
    ParserConfig { mode, keying, ..ParserConfig::improved() }
}

/// Best (minimum) ns per run of one compiled engine over the input — epoch
/// reset between rounds, compile excluded, min-of-rounds so scheduler and
/// frequency-scaling interference cannot skew one arm of the comparison.
fn measure(cfg: ParserConfig, lexemes: &[Lexeme], rounds: u32) -> u128 {
    let grammar = grammars::pl0::cfg();
    let mut pwd = Compiled::compile(&grammar, cfg);
    let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
    let start = pwd.start;
    let run = |pwd: &mut Compiled| {
        let t0 = Instant::now();
        pwd.lang.reset();
        match cfg.mode {
            ParseMode::Recognize => assert!(pwd.lang.recognize(start, &toks).unwrap()),
            ParseMode::Parse => {
                pwd.lang.parse_forest(start, &toks).expect("corpus parses");
            }
        }
        t0.elapsed().as_nanos()
    };
    for _ in 0..rounds.div_ceil(4).max(2) {
        run(&mut pwd); // warmup
    }
    (0..rounds).map(|_| run(&mut pwd)).min().expect("rounds > 0")
}

fn bench_lexeme_diverse(c: &mut Criterion) {
    let sizes = [300usize, 1000];
    let inputs = corpus(&sizes);

    let mut group = c.benchmark_group("lexeme_diverse");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for lexemes in &inputs {
        let n = lexemes.len();
        for (label, keying) in
            [("value_keyed", MemoKeying::ByValue), ("class_keyed", MemoKeying::ByClass)]
        {
            let grammar = grammars::pl0::cfg();
            let mut pwd = Compiled::compile(&grammar, config(ParseMode::Recognize, keying));
            let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
            let start = pwd.start;
            group.bench_with_input(
                BenchmarkId::new(format!("recognize/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        pwd.lang.reset();
                        assert!(pwd.lang.recognize(start, &toks).unwrap());
                    })
                },
            );
        }
    }
    group.finish();

    // Trajectory samples, measured outside criterion so the numbers are
    // directly comparable round over round.
    let mut traj = Trajectory::new("lexeme_diverse");
    for lexemes in &inputs {
        let tokens = lexemes.len();
        let rounds = 20u32;
        let value_rec = measure(config(ParseMode::Recognize, MemoKeying::ByValue), lexemes, rounds);
        let class_rec = measure(config(ParseMode::Recognize, MemoKeying::ByClass), lexemes, rounds);
        let value_par = measure(config(ParseMode::Parse, MemoKeying::ByValue), lexemes, rounds);
        let class_par = measure(config(ParseMode::Parse, MemoKeying::ByClass), lexemes, rounds);
        let rec_speedup = value_rec as f64 / class_rec as f64;
        let par_speedup = value_par as f64 / class_par as f64;
        traj.record(&format!("tokens={tokens}/value_recognize_ns"), value_rec as f64, "ns");
        traj.record(&format!("tokens={tokens}/class_recognize_ns"), class_rec as f64, "ns");
        traj.record(
            &format!("tokens={tokens}/recognize_tokens_per_sec"),
            (tokens as f64 / (class_rec as f64 / 1e9)).round(),
            "tokens/s",
        );
        traj.record(&format!("tokens={tokens}/value_parse_ns"), value_par as f64, "ns");
        traj.record(&format!("tokens={tokens}/class_parse_ns"), class_par as f64, "ns");

        // The tentpole gates, on the largest corpus (short inputs dilute
        // the win with fixed per-parse costs): class keying must at least
        // double recognize throughput on the mostly-unique-identifier
        // corpus and measurably improve parse mode (slack absorbs timer
        // noise). Under `--smoke` (shared CI runners with noisy
        // neighbors), the thresholds relax to sanity checks — the recorded
        // samples are the trajectory either way.
        let smoke = std::env::args().any(|a| a == "--smoke");
        let (rec_gate, par_gate) = if smoke { (1.2, 0.9) } else { (2.0, 1.05) };
        let gated = tokens == inputs.last().map_or(0, Vec::len);
        if gated {
            traj.gate(
                &format!("tokens={tokens}/recognize_speedup"),
                rec_speedup,
                "ratio",
                rec_speedup >= rec_gate,
            );
            traj.gate(
                &format!("tokens={tokens}/parse_speedup"),
                par_speedup,
                "ratio",
                par_speedup > par_gate,
            );
            traj.write(env!("CARGO_MANIFEST_DIR"));
            assert!(
                rec_speedup >= rec_gate,
                "class keying must be ≥{rec_gate}× in recognize mode on lexeme-diverse input \
                 ({tokens} tokens: {value_rec} vs {class_rec} ns)"
            );
            assert!(
                par_speedup > par_gate,
                "class templates must win in parse mode (>{par_gate}×) \
                 ({tokens} tokens: {value_par} vs {class_par} ns)"
            );
        } else {
            traj.record(&format!("tokens={tokens}/recognize_speedup"), rec_speedup, "ratio");
            traj.record(&format!("tokens={tokens}/parse_speedup"), par_speedup, "ratio");
        }
    }

    // Persist the trajectory next to the workspace root for the CI artifact
    // and the repo's recorded history.
    traj.write(env!("CARGO_MANIFEST_DIR"));
}

criterion_group!(benches, bench_lexeme_diverse);
criterion_main!(benches);
