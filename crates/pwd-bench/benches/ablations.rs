//! Criterion ablations over the three improvement axes of §4 plus the
//! §4.3.1 right-child prepass — the design choices DESIGN.md calls out.
//!
//! Run: `cargo bench -p pwd-bench --bench ablations`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::{python_cfg, python_corpus};
use pwd_core::{CompactionMode, MemoKeying, NullStrategy, ParserConfig};
use pwd_grammar::Compiled;

fn bench_config(c: &mut Criterion, group: &str, label: &str, config: ParserConfig, tokens: usize) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[tokens]);
    let file = &corpus[0];
    let mut pwd = Compiled::compile(&cfg, config);
    let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
    let start = pwd.start;
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    g.bench_with_input(BenchmarkId::new(label, file.tokens), &file.tokens, |b, _| {
        b.iter(|| {
            pwd.lang.reset();
            assert!(pwd.lang.recognize(start, &toks).unwrap());
        })
    });
    g.finish();
}

fn ablation_nullability(c: &mut Criterion) {
    for (label, strategy) in [
        ("labeled", NullStrategy::Labeled),
        ("worklist", NullStrategy::Worklist),
        ("naive", NullStrategy::Naive),
    ] {
        let config = ParserConfig { nullability: strategy, ..ParserConfig::improved() };
        bench_config(c, "ablation_nullability", label, config, 200);
    }
}

fn ablation_compaction(c: &mut Criterion) {
    for (label, mode) in [
        ("on_construction", CompactionMode::OnConstruction),
        ("separate_pass", CompactionMode::SeparatePass),
        ("none", CompactionMode::None),
    ] {
        let config = ParserConfig { compaction: mode, ..ParserConfig::improved() };
        // Compaction off is the paper's "three minutes for 31 lines" arm:
        // keep the input tiny.
        let tokens = if mode == CompactionMode::None { 60 } else { 200 };
        bench_config(c, "ablation_compaction", label, config, tokens);
    }
}

fn ablation_memo(c: &mut Criterion) {
    use pwd_core::MemoStrategy;
    for (label, memo) in [
        ("single_entry", MemoStrategy::SingleEntry),
        ("dual_entry", MemoStrategy::DualEntry),
        ("full_hash", MemoStrategy::FullHash),
    ] {
        let config = ParserConfig { memo, keying: MemoKeying::ByValue, ..ParserConfig::improved() };
        bench_config(c, "ablation_memo", label, config, 200);
    }
}

fn ablation_prepass(c: &mut Criterion) {
    for (label, prepass) in [("with_prepass", true), ("without_prepass", false)] {
        let config = ParserConfig { prepass_right_children: prepass, ..ParserConfig::improved() };
        bench_config(c, "ablation_prepass", label, config, 200);
    }
}

criterion_group!(
    benches,
    ablation_nullability,
    ablation_compaction,
    ablation_memo,
    ablation_prepass
);
criterion_main!(benches);
