//! Bench for the epoch-reset tentpole: repeated parsing throughput when the
//! `Language` is reused via `reset()` versus recompiled from scratch for
//! every input. Emits one machine-readable JSON line for the bench
//! trajectory, e.g.:
//!
//! ```text
//! {"bench":"reset_reuse","tokens":600,"fresh_ns":1234,"reset_ns":456,"speedup":2.71}
//! ```
//!
//! Run: `cargo bench -p pwd-bench --bench reset_reuse`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::{python_cfg, python_corpus};
use pwd_core::ParserConfig;
use pwd_grammar::Compiled;
use std::time::Instant;

fn bench_reset_reuse(c: &mut Criterion) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200, 600]);

    let mut group = c.benchmark_group("reset_reuse");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    for file in &corpus {
        let n = file.tokens;

        // Fresh arm: recompile the grammar for every parse (what a service
        // without epoch reset would have to do per request).
        group.bench_with_input(BenchmarkId::new("fresh_compile", n), &n, |b, _| {
            b.iter(|| {
                let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
                let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
                assert!(pwd.lang.recognize(pwd.start, &toks).unwrap());
            })
        });

        // Reuse arm: one compile, epoch reset between parses.
        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
        let start = pwd.start;
        group.bench_with_input(BenchmarkId::new("epoch_reset", n), &n, |b, _| {
            b.iter(|| {
                pwd.lang.reset();
                assert!(pwd.lang.recognize(start, &toks).unwrap());
            })
        });
    }
    group.finish();

    // One JSON trajectory line per corpus size, measured outside criterion so
    // the numbers are directly comparable round over round.
    for file in &corpus {
        let (warmup, rounds) = (3u32, 20u32);

        for _ in 0..warmup {
            let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            assert!(pwd.lang.recognize(pwd.start, &toks).unwrap());
        }
        let t0 = Instant::now();
        for _ in 0..rounds {
            let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            assert!(pwd.lang.recognize(pwd.start, &toks).unwrap());
        }
        let fresh_ns = t0.elapsed().as_nanos() / rounds as u128;

        let mut pwd = Compiled::compile(&cfg, ParserConfig::improved());
        let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
        let start = pwd.start;
        for _ in 0..warmup {
            pwd.lang.reset();
            assert!(pwd.lang.recognize(start, &toks).unwrap());
        }
        let t0 = Instant::now();
        for _ in 0..rounds {
            pwd.lang.reset();
            assert!(pwd.lang.recognize(start, &toks).unwrap());
        }
        let reset_ns = t0.elapsed().as_nanos() / rounds as u128;

        println!(
            "{{\"bench\":\"reset_reuse\",\"tokens\":{},\"fresh_ns\":{},\"reset_ns\":{},\"speedup\":{:.3}}}",
            file.tokens,
            fresh_ns,
            reset_ns,
            fresh_ns as f64 / reset_ns as f64,
        );
        // Reuse must not lose to recompiling (10% slack for timer noise; the
        // JSON line above is the recorded trajectory).
        assert!(
            reset_ns as f64 <= fresh_ns as f64 * 1.10,
            "epoch reset must not be slower than recompiling ({reset_ns} vs {fresh_ns})"
        );
    }
}

criterion_group!(benches, bench_reset_reuse);
criterion_main!(benches);
