//! Criterion bench for Figure 12: single-entry vs full-hash memoization.
//!
//! Run: `cargo bench -p pwd-bench --bench fig12`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::{python_cfg, python_corpus};
use pwd_core::{MemoKeying, MemoStrategy, ParserConfig};
use pwd_grammar::Compiled;

fn bench_memo(c: &mut Criterion) {
    let cfg = python_cfg();
    let corpus = python_corpus(&[200, 600]);

    let mut group = c.benchmark_group("fig12");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    for file in &corpus {
        for (label, memo) in
            [("single_entry", MemoStrategy::SingleEntry), ("full_hash", MemoStrategy::FullHash)]
        {
            let config =
                ParserConfig { memo, keying: MemoKeying::ByValue, ..ParserConfig::improved() };
            let mut pwd = Compiled::compile(&cfg, config);
            let toks = pwd.tokens_from_lexemes(&file.lexemes).expect("terminals");
            let start = pwd.start;
            group.bench_with_input(BenchmarkId::new(label, file.tokens), &file.tokens, |b, _| {
                b.iter(|| {
                    pwd.lang.reset();
                    assert!(pwd.lang.recognize(start, &toks).unwrap());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_memo);
criterion_main!(benches);
