//! The recovery zero-interference gate: on **clean** input, a
//! recovery-enabled [`Session`] must stay within 5% of a recovery-off one.
//!
//! The whole recovery design banks on this being cheap: enabling recovery
//! adds one checkpoint (a pointer save) before each feed and a rollback
//! only on failure, so a healthy parse pays for bookkeeping, never for
//! repair search. This bench measures both arms in one process on the
//! lexeme-diverse PL/0 corpus, gates `overhead_percent ≤ 5`, and writes
//! the evidence to `BENCH_recovery.json`.
//!
//! A second (ungated) pair of samples measures the damaged-input side —
//! mutated programs parsed to a recovered forest — so the trajectory also
//! tracks what repair itself costs over time.
//!
//! Run: `cargo bench -p pwd-bench --bench recovery_bench` (add `-- --smoke`
//! for the quick CI arm, which widens the gate for noisy shared runners).

use criterion::{criterion_group, criterion_main, Criterion};
use derp::api::{Parser, PwdBackend, Session};
use derp::RecoveryBudget;
use pwd_bench::Trajectory;
use pwd_grammar::{gen, grammars};
use pwd_lex::Lexeme;
use std::time::Instant;

/// Same corpus shape as the keying/automaton/obs benches: ~90% of
/// identifier occurrences are first occurrences, so the per-token path —
/// where recovery's checkpoint would hurt — dominates.
const ID_REUSE: f64 = 0.1;
const TOKENS_TARGET: usize = 1000;

/// Clean-input overhead ceiling, percent.
const GATE_PERCENT: f64 = 5.0;

fn corpus() -> Vec<Lexeme> {
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(TOKENS_TARGET, 0xEC0_7E5, ID_REUSE);
    lx.tokenize(&src).expect("generated PL/0 tokenizes")
}

/// A lightly damaged copy of the corpus: every ~120th token is dropped, so
/// the damaged arm repairs a handful of real errors per run (the editor
/// workload, not a torture test).
fn damaged(clean: &[Lexeme]) -> Vec<Lexeme> {
    clean.iter().enumerate().filter(|(i, _)| i % 120 != 60).map(|(_, l)| l.clone()).collect()
}

/// Best (minimum) ns for one full session over `lexemes` — open, optional
/// recovery, feed, finish — on a reused backend, min-of-rounds so
/// scheduler noise cannot inflate either arm.
fn measure(backend: &mut PwdBackend, lexemes: &[Lexeme], recovery: bool, rounds: u32) -> u128 {
    let run = |backend: &mut PwdBackend| {
        let t0 = Instant::now();
        let mut session = Session::open(backend as &mut dyn Parser).expect("fresh session");
        if recovery {
            session.enable_recovery(RecoveryBudget::default());
        }
        session.feed_lexemes(lexemes).expect("known kinds");
        let (accepted, diags) = session.finish_with_diagnostics().expect("finish");
        assert!(accepted, "corpus must parse (possibly after repair)");
        std::hint::black_box(diags);
        t0.elapsed().as_nanos()
    };
    for _ in 0..rounds.div_ceil(4).max(3) {
        run(backend); // warmup
    }
    (0..rounds).map(|_| run(backend)).min().expect("rounds > 0")
}

fn bench_recovery(c: &mut Criterion) {
    let clean = corpus();
    let broken = damaged(&clean);
    let tokens = clean.len();
    let cfg = grammars::pl0::cfg();
    let mut backend = PwdBackend::improved(&cfg);

    // Criterion group for local inspection; the gate runs on the
    // min-of-rounds measurement below.
    let mut group = c.benchmark_group("recovery");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for (label, recovery) in [("clean/recovery_off", false), ("clean/recovery_on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut session =
                    Session::open(&mut backend as &mut dyn Parser).expect("fresh session");
                if recovery {
                    session.enable_recovery(RecoveryBudget::default());
                }
                session.feed_lexemes(&clean).expect("known kinds");
                assert!(session.finish().expect("finish"));
            })
        });
    }
    group.finish();

    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds = if smoke { 20u32 } else { 50 };
    let off = measure(&mut backend, &clean, false, rounds);
    let on = measure(&mut backend, &clean, true, rounds);
    let overhead = (on as f64 / off as f64 - 1.0) * 100.0;
    // Min-of-rounds still jitters a few percent on shared CI runners;
    // `--smoke` widens the ceiling so the gate catches a structural
    // regression (repair search running on healthy feeds, which costs
    // multiples), not timer luck.
    let gate = if smoke { GATE_PERCENT + 5.0 } else { GATE_PERCENT };

    let mut traj = Trajectory::new("recovery");
    traj.record(&format!("tokens={tokens}/clean_recovery_off_ns"), off as f64, "ns");
    traj.record(&format!("tokens={tokens}/clean_recovery_on_ns"), on as f64, "ns");
    traj.gate(
        &format!("tokens={tokens}/clean_overhead_percent"),
        overhead,
        "percent",
        overhead <= gate,
    );

    // Damaged-input trajectory (ungated): what repair itself costs.
    let repaired = measure(&mut backend, &broken, true, rounds.div_ceil(2));
    traj.record(&format!("tokens={}/damaged_recovery_on_ns", broken.len()), repaired as f64, "ns");
    traj.record(
        &format!("tokens={}/damaged_repair_slowdown", broken.len()),
        repaired as f64 / on as f64,
        "ratio",
    );
    traj.write(env!("CARGO_MANIFEST_DIR"));

    assert!(
        overhead <= gate,
        "recovery must be free on clean input: ≤{gate}% overhead required \
         ({tokens} tokens: {off} ns off, {on} ns on = {overhead:.2}% overhead)"
    );
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
