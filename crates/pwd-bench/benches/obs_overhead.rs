//! The observability zero-overhead gate: recognize throughput on the
//! lexeme-diverse PL/0 corpus with instrumentation **compiled in but
//! disabled** must stay within 2% of a build with the hooks **compiled
//! out entirely** (`--no-default-features`).
//!
//! Two-phase protocol, driven by the `obs` cargo feature:
//!
//! 1. `cargo bench -p pwd-bench --no-default-features --bench obs_overhead`
//!    — the hook-free build. Measures the corpus and writes the baseline
//!    sample `tokens=N/no_hooks_ns` to `BENCH_obs_overhead.json`.
//! 2. `cargo bench -p pwd-bench --bench obs_overhead` — the default
//!    (hooks compiled, sink not installed) build. Re-measures, reads the
//!    baseline line back from the JSON file, and gates
//!    `overhead_percent ≤ 2` (relaxed under `--smoke` for noisy shared
//!    runners). The baseline line is carried forward so the rewritten
//!    file holds both arms of the comparison.
//!
//! If no baseline file exists (a bare `cargo bench` without the prior
//! `--no-default-features` run), the gated phase records its measurement
//! and skips the comparison rather than failing on missing evidence.
//!
//! Run (both phases, as CI does):
//! `cargo bench -p pwd-bench --no-default-features --bench obs_overhead &&
//!  cargo bench -p pwd-bench --bench obs_overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use pwd_bench::Trajectory;
use pwd_core::{MemoKeying, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Compiled};
use pwd_lex::Lexeme;
use std::time::Instant;

/// ~90% of identifier occurrences are first occurrences — the same
/// lexeme-diverse workload the keying and automaton benches use, chosen
/// here because its per-token hot loop is where a stray clock read or
/// branch in the hook sites would show up.
const ID_REUSE: f64 = 0.1;

/// One corpus size is enough: the gate is a ratio on one workload, not a
/// scaling curve.
const TOKENS_TARGET: usize = 1000;

/// Instrumentation-disabled overhead ceiling, percent.
const GATE_PERCENT: f64 = 2.0;

fn corpus() -> Vec<Lexeme> {
    let lx = grammars::pl0::lexer();
    let src = gen::pl0_source(TOKENS_TARGET, 0xD1CE, ID_REUSE);
    lx.tokenize(&src).expect("generated PL/0 tokenizes")
}

fn config() -> ParserConfig {
    ParserConfig {
        mode: ParseMode::Recognize,
        keying: MemoKeying::ByClass,
        ..ParserConfig::improved()
    }
}

/// Best (minimum) ns per warm recognize run — compile once, epoch reset
/// between rounds, min-of-rounds so scheduler noise cannot inflate either
/// arm of the comparison.
fn measure(lexemes: &[Lexeme], rounds: u32) -> u128 {
    let grammar = grammars::pl0::cfg();
    let mut pwd = Compiled::compile(&grammar, config());
    let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
    let start = pwd.start;
    let run = |pwd: &mut Compiled| {
        let t0 = Instant::now();
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
        t0.elapsed().as_nanos()
    };
    for _ in 0..rounds.div_ceil(4).max(3) {
        run(&mut pwd); // warmup
    }
    (0..rounds).map(|_| run(&mut pwd)).min().expect("rounds > 0")
}

/// The metric name of the hook-free baseline sample in
/// `BENCH_obs_overhead.json`. The corpus is deterministic, so both phases
/// see the same token count.
fn baseline_name(tokens: usize) -> String {
    format!("tokens={tokens}/no_hooks_ns")
}

/// Pulls the baseline sample's line and value back out of a previously
/// written trajectory file — a targeted string scan, since the schema is
/// this crate's own fixed format and the workspace deliberately carries no
/// JSON parser.
fn read_baseline(manifest_dir: &str, tokens: usize) -> Option<(String, f64)> {
    let path = format!("{manifest_dir}/../../BENCH_obs_overhead.json");
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"name\":\"{}\"", baseline_name(tokens));
    let line = text.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"value\":").nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
        .collect();
    Some((line.to_string(), num.parse().ok()?))
}

fn bench_obs_overhead(c: &mut Criterion) {
    let lexemes = corpus();
    let tokens = lexemes.len();

    // The criterion group rides along for local inspection; the gate runs
    // on the min-of-rounds measurement below.
    let arm = if cfg!(feature = "obs") { "hooks_disabled" } else { "no_hooks" };
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    {
        let grammar = grammars::pl0::cfg();
        let mut pwd = Compiled::compile(&grammar, config());
        let toks = pwd.tokens_from_lexemes(&lexemes).expect("terminals");
        let start = pwd.start;
        group.bench_function(&format!("recognize/{arm}"), |b| {
            b.iter(|| {
                pwd.lang.reset();
                assert!(pwd.lang.recognize(start, &toks).unwrap());
            })
        });
    }
    group.finish();

    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds = if smoke { 30u32 } else { 60 };
    let best = measure(&lexemes, rounds);

    let mut traj = Trajectory::new("obs_overhead");
    if cfg!(feature = "obs") {
        // Gated phase: hooks are compiled in but no sink is enabled — the
        // per-feed check is one branch on a `None` option, never a clock
        // read. Compare against the hook-free baseline from phase 1.
        traj.record(&format!("tokens={tokens}/hooks_disabled_ns"), best as f64, "ns");
        traj.record(
            &format!("tokens={tokens}/hooks_disabled_tokens_per_sec"),
            (tokens as f64 / (best as f64 / 1e9)).round(),
            "tokens/s",
        );
        match read_baseline(env!("CARGO_MANIFEST_DIR"), tokens) {
            Some((baseline_line, baseline_ns)) if baseline_ns > 0.0 => {
                let overhead = (best as f64 / baseline_ns - 1.0) * 100.0;
                // Min-of-rounds still jitters a few percent on shared CI
                // runners; `--smoke` widens the ceiling so the gate tests
                // "no accidental clock read in the hot loop" (which would
                // cost tens of percent), not timer luck.
                let gate = if smoke { GATE_PERCENT + 6.0 } else { GATE_PERCENT };
                traj.gate(
                    &format!("tokens={tokens}/overhead_percent"),
                    overhead,
                    "percent",
                    overhead <= gate,
                );
                traj.carry_line(baseline_line);
                traj.write(env!("CARGO_MANIFEST_DIR"));
                assert!(
                    overhead <= gate,
                    "disabled instrumentation must cost ≤{gate}% vs the hook-free build \
                     ({tokens} tokens: {baseline_ns} ns without hooks, {best} ns disabled \
                     = {overhead:.2}% overhead)"
                );
            }
            _ => {
                println!(
                    "note: no `{}` baseline in BENCH_obs_overhead.json — run \
                     `cargo bench -p pwd-bench --no-default-features --bench obs_overhead` \
                     first to arm the gate",
                    baseline_name(tokens)
                );
                traj.write(env!("CARGO_MANIFEST_DIR"));
            }
        }
    } else {
        // Baseline phase: the hook-free build. Write the sample the gated
        // phase compares against.
        traj.record(&baseline_name(tokens), best as f64, "ns");
        traj.record(
            &format!("tokens={tokens}/no_hooks_tokens_per_sec"),
            (tokens as f64 / (best as f64 / 1e9)).round(),
            "tokens/s",
        );
        traj.write(env!("CARGO_MANIFEST_DIR"));
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
