//! Bench for the streaming-pipeline tentpole: fused lex+parse (text →
//! `TokenSource` → `Session`, zero-copy, no intermediate vector) vs the
//! materialize-then-parse path (`tokenize` → `Vec<Lexeme>` →
//! `recognize_lexemes`) on the PL/0 identifier-diverse corpus.
//!
//! Both arms start from raw text and end at a verdict, so the comparison
//! is end-to-end: the materialized arm pays one `Vec<Lexeme>` allocation
//! plus two owned `String`s per token before the first derivative is
//! taken; the fused arm feeds each borrowed match straight into the
//! engine, where interning at the memo boundary is the only copy. The
//! headline (gated) numbers use the engine's recognize mode with
//! class-keyed memoization — the fast configuration, where pipeline
//! overhead is a large fraction of the run and materialization cannot
//! hide behind derivative work; parse-mode numbers ride along in the same
//! JSON line.
//!
//! Emits machine-readable trajectory samples (also written to
//! `BENCH_stream_throughput.json` at the workspace root) in the shared
//! [`pwd_bench::Trajectory`] schema.
//!
//! Run: `cargo bench -p pwd-bench --bench stream_throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use derp::api::{PwdBackend, Recognizer};
use pwd_bench::Trajectory;
use pwd_core::{MemoKeying, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Cfg};
use std::time::Instant;

/// ~90% of identifier occurrences are first occurrences — the
/// lexeme-diverse workload where per-token pipeline costs dominate.
const ID_REUSE: f64 = 0.1;

fn corpus(targets: &[usize]) -> Vec<(String, usize)> {
    let lx = grammars::pl0::lexer();
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let src = gen::pl0_source(t, 0x5EED + i as u64, ID_REUSE);
            let tokens = lx.tokenize(&src).expect("generated PL/0 tokenizes").len();
            (src, tokens)
        })
        .collect()
}

fn backend(grammar: &Cfg, mode: ParseMode) -> PwdBackend {
    let config = ParserConfig { mode, keying: MemoKeying::ByClass, ..ParserConfig::improved() };
    PwdBackend::with_config(grammar, config, "pwd-stream-bench")
}

/// Materialize-then-parse: lex the whole input into an owned `Vec<Lexeme>`,
/// then hand the slice to the backend.
fn run_materialized(backend: &mut PwdBackend, lexer: &pwd_lex::Lexer, src: &str) -> bool {
    let lexemes = lexer.tokenize(src).expect("corpus tokenizes");
    backend.recognize_lexemes(&lexemes).expect("corpus parses")
}

/// Fused streaming: pull zero-copy tokens out of the lexer source and feed
/// them straight into the session — no `Vec<Lexeme>` exists on this path.
fn run_fused(backend: &mut PwdBackend, lexer: &pwd_lex::Lexer, src: &str) -> bool {
    let mut source = lexer.source(src);
    backend.recognize_source(&mut source).expect("corpus parses")
}

/// Best (minimum) ns per end-to-end run for both arms, **interleaved**
/// round by round (materialized, fused, materialized, …) so scheduler noise
/// and frequency-scaling drift hit both arms alike instead of biasing
/// whichever ran second. Returns `(materialized_ns, fused_ns)`.
fn measure(
    grammar: &Cfg,
    mode: ParseMode,
    lexer: &pwd_lex::Lexer,
    src: &str,
    rounds: u32,
) -> (u128, u128) {
    let mut mat_backend = backend(grammar, mode);
    let mut fus_backend = backend(grammar, mode);
    for _ in 0..rounds.div_ceil(4).max(2) {
        assert!(run_materialized(&mut mat_backend, lexer, src), "warmup run must accept");
        assert!(run_fused(&mut fus_backend, lexer, src), "warmup run must accept");
    }
    let mut best_mat = u128::MAX;
    let mut best_fus = u128::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        assert!(run_materialized(&mut mat_backend, lexer, src));
        best_mat = best_mat.min(t0.elapsed().as_nanos());
        let t0 = Instant::now();
        assert!(run_fused(&mut fus_backend, lexer, src));
        best_fus = best_fus.min(t0.elapsed().as_nanos());
    }
    (best_mat, best_fus)
}

fn bench_stream_throughput(c: &mut Criterion) {
    let sizes = [300usize, 1000];
    let inputs = corpus(&sizes);
    let grammar = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();

    let mut group = c.benchmark_group("stream_throughput");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for (src, tokens) in &inputs {
        let mut b1 = backend(&grammar, ParseMode::Recognize);
        group.bench_with_input(BenchmarkId::new("materialized", tokens), tokens, |b, _| {
            b.iter(|| assert!(run_materialized(&mut b1, &lexer, src)))
        });
        let mut b2 = backend(&grammar, ParseMode::Recognize);
        group.bench_with_input(BenchmarkId::new("fused", tokens), tokens, |b, _| {
            b.iter(|| assert!(run_fused(&mut b2, &lexer, src)))
        });
    }
    group.finish();

    // Trajectory samples, measured outside criterion so the numbers are
    // directly comparable round over round.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut traj = Trajectory::new("stream_throughput");
    for (src, tokens) in &inputs {
        let rounds = if smoke { 12u32 } else { 30 };
        let (materialized, fused) = measure(&grammar, ParseMode::Recognize, &lexer, src, rounds);
        let (parse_mat, parse_fus) = measure(&grammar, ParseMode::Parse, &lexer, src, rounds);
        let speedup = materialized as f64 / fused as f64;
        let parse_speedup = parse_mat as f64 / parse_fus as f64;
        traj.record(&format!("tokens={tokens}/materialized_ns"), materialized as f64, "ns");
        traj.record(&format!("tokens={tokens}/fused_ns"), fused as f64, "ns");
        traj.record(
            &format!("tokens={tokens}/fused_tokens_per_sec"),
            (*tokens as f64 / (fused as f64 / 1e9)).round(),
            "tokens/s",
        );
        traj.record(&format!("tokens={tokens}/parse_materialized_ns"), parse_mat as f64, "ns");
        traj.record(&format!("tokens={tokens}/parse_fused_ns"), parse_fus as f64, "ns");

        // The tentpole gates, on the largest corpus: the fused path does
        // strictly less work than materialize-then-parse (no intermediate
        // vector, no per-token Strings), so it must be at least on par in
        // both modes — within a 5% noise allowance, since single-digit-µs
        // runs jitter even under best-of-N. Under `--smoke` (shared CI
        // runners) the threshold relaxes to a sanity check; the recorded
        // samples are the trajectory either way.
        let gate = if smoke { 0.8 } else { 0.95 };
        if tokens == &inputs.last().expect("nonempty corpus").1 {
            traj.gate(&format!("tokens={tokens}/fused_speedup"), speedup, "ratio", speedup >= gate);
            traj.gate(
                &format!("tokens={tokens}/parse_fused_speedup"),
                parse_speedup,
                "ratio",
                parse_speedup >= gate,
            );
            traj.write(env!("CARGO_MANIFEST_DIR"));
            assert!(
                speedup >= gate,
                "fused streaming must be ≥{gate}× vs materialized \
                 ({tokens} tokens: {materialized} vs {fused} ns)"
            );
            assert!(
                parse_speedup >= gate,
                "fused parse-mode streaming must be ≥{gate}× vs materialized \
                 ({tokens} tokens: {parse_mat} vs {parse_fus} ns)"
            );
        } else {
            traj.record(&format!("tokens={tokens}/fused_speedup"), speedup, "ratio");
            traj.record(&format!("tokens={tokens}/parse_fused_speedup"), parse_speedup, "ratio");
        }
    }

    // Persist the trajectory next to the workspace root for the CI artifact
    // and the repo's recorded history.
    traj.write(env!("CARGO_MANIFEST_DIR"));
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
