//! Bench for the incremental-reparse tentpole: per-keystroke edit latency
//! via [`Session::splice_tokens`] vs truncate-and-refeed, on a PL/0
//! (superset) buffer of ~10k tokens, with single-token edits at the head,
//! middle, and tail of the buffer.
//!
//! The splice arm holds one long-lived incremental session: each edit rolls
//! back to the nearest checkpoint-ladder rung below the damage, refeeds the
//! bounded catch-up window, and (recognize mode) convergence-jumps over the
//! suffix the moment the post-edit derivative state matches the memoized
//! pre-edit state. The baseline arm is the best a non-incremental session
//! can do — and a *favorable* version of it: a user checkpoint sits exactly
//! at the edit position (zero rollback distance), so the baseline pays only
//! the suffix refeed that truncate-and-refeed fundamentally cannot avoid.
//!
//! The gate: a mid-buffer single-token edit must be **≥10× faster** spliced
//! than truncated-and-refed, on both PWD recognize engines — the lazy
//! automaton (interned state ids) and the interpreted engine (graph
//! digests). Under `--smoke` the corpus shrinks and the threshold relaxes
//! to a sanity check; the samples are the trajectory either way.
//!
//! Emits `BENCH_incremental.json` in the shared [`pwd_bench::Trajectory`]
//! schema.
//!
//! Run: `cargo bench -p pwd-bench --bench incremental_bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use derp::api::{Parser, PwdBackend, Session, SpliceOutcome};
use pwd_bench::Trajectory;
use pwd_core::{AutomatonMode, MemoKeying, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars};
use pwd_lex::Lexeme;
use std::time::Instant;

/// Moderate identifier reuse: realistic source, and the class-keyed memo
/// still sees fresh lexemes at every edit.
const ID_REUSE: f64 = 0.3;

fn config(automaton: AutomatonMode) -> ParserConfig {
    ParserConfig {
        mode: ParseMode::Recognize,
        keying: MemoKeying::ByClass,
        automaton,
        ..ParserConfig::improved()
    }
}

/// A replacement text for the token at `at`: another text of the same kind
/// from elsewhere in the buffer when one exists (a realistic "retype the
/// identifier" keystroke), else the original text.
fn replacement_for(lexemes: &[Lexeme], at: usize) -> String {
    let target = &lexemes[at];
    lexemes
        .iter()
        .find(|l| l.kind == target.kind && l.text != target.text)
        .map_or_else(|| target.text.clone(), |l| l.text.clone())
}

/// Best (minimum) ns per spliced single-token edit at `at`, on one
/// long-lived incremental session. Edits alternate between the replacement
/// and the original text so every round is a real change. Also returns the
/// last edit's [`SpliceOutcome`] for the reuse accounting.
fn measure_splice(
    grammar: &pwd_grammar::Cfg,
    automaton: AutomatonMode,
    lexemes: &[Lexeme],
    at: usize,
    rounds: u32,
) -> (u128, SpliceOutcome) {
    let mut backend = PwdBackend::with_config(grammar, config(automaton), "pwd-incremental");
    let mut session = Session::open(&mut backend as &mut dyn Parser).expect("session opens");
    session.enable_incremental().expect("fresh session");
    session.feed_lexemes(lexemes).expect("corpus feeds");
    let texts = [replacement_for(lexemes, at), lexemes[at].text.clone()];
    let kind = lexemes[at].kind.clone();
    let mut best = u128::MAX;
    let mut last = None;
    for round in 0..rounds + 2 {
        let text = texts[(round % 2) as usize].as_str();
        let t0 = Instant::now();
        let out = session.splice_tokens(at, 1, &[(kind.as_str(), text)]).expect("splice applies");
        let ns = t0.elapsed().as_nanos();
        if round >= 2 {
            // First two rounds are warmup (they densify the ladder around
            // the edit point, exactly as a real editing session would).
            best = best.min(ns);
        }
        last = Some(out);
    }
    (best, last.expect("at least one round"))
}

/// Best (minimum) ns per truncate-and-refeed edit at `at`: rollback to a
/// checkpoint taken exactly at the edit position, then refeed the edited
/// token and the entire suffix.
fn measure_baseline(
    grammar: &pwd_grammar::Cfg,
    automaton: AutomatonMode,
    lexemes: &[Lexeme],
    at: usize,
    rounds: u32,
) -> u128 {
    let mut backend = PwdBackend::with_config(grammar, config(automaton), "pwd-truncate");
    let mut session = Session::open(&mut backend as &mut dyn Parser).expect("session opens");
    session.feed_lexemes(&lexemes[..at]).expect("prefix feeds");
    let cp = session.checkpoint().expect("checkpoint");
    session.feed_lexemes(&lexemes[at..]).expect("suffix feeds");
    let mut edited = lexemes[at..].to_vec();
    edited[0].text = replacement_for(lexemes, at);
    let original = lexemes[at..].to_vec();
    let arms = [&edited, &original];
    let mut best = u128::MAX;
    for round in 0..rounds + 2 {
        let suffix = arms[(round % 2) as usize];
        let t0 = Instant::now();
        session.rollback(&cp).expect("checkpoint restores");
        session.feed_lexemes(suffix).expect("suffix refeeds");
        let ns = t0.elapsed().as_nanos();
        if round >= 2 {
            best = best.min(ns);
        }
    }
    best
}

fn bench_incremental(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let target = if smoke { 2_000 } else { 10_000 };
    let rounds = if smoke { 6u32 } else { 16 };
    let grammar = grammars::pl0::cfg();
    let lexer = grammars::pl0::lexer();
    let src = gen::pl0_source(target, 0x1C4E, ID_REUSE);
    let lexemes = lexer.tokenize(&src).expect("generated PL/0 tokenizes");
    let n = lexemes.len();
    let positions = [("head", 50usize.min(n / 4)), ("middle", n / 2), ("tail", n - 50)];
    let arms = [("automaton", AutomatonMode::Lazy), ("interpreted", AutomatonMode::Off)];

    // Criterion timings for the mid-buffer splice on both engines.
    let mut group = c.benchmark_group("incremental");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for (arm, automaton) in arms {
        let at = n / 2;
        let mut backend = PwdBackend::with_config(&grammar, config(automaton), "pwd-incremental");
        let mut session = Session::open(&mut backend as &mut dyn Parser).expect("session opens");
        session.enable_incremental().expect("fresh session");
        session.feed_lexemes(&lexemes).expect("corpus feeds");
        let texts = [replacement_for(&lexemes, at), lexemes[at].text.clone()];
        let kind = lexemes[at].kind.clone();
        let mut flip = 0usize;
        group.bench_with_input(BenchmarkId::new("splice_middle", arm), &n, |b, _| {
            b.iter(|| {
                flip += 1;
                session
                    .splice_tokens(at, 1, &[(kind.as_str(), texts[flip % 2].as_str())])
                    .expect("splice applies")
            })
        });
    }
    group.finish();

    // Trajectory samples + the tentpole gate, measured outside criterion.
    let mut traj = Trajectory::new("incremental");
    traj.record("tokens", n as f64, "tokens");
    let gate = if smoke { 2.0 } else { 10.0 };
    for (arm, automaton) in arms {
        for (label, at) in positions {
            let (splice_ns, out) = measure_splice(&grammar, automaton, &lexemes, at, rounds);
            let baseline_ns = measure_baseline(&grammar, automaton, &lexemes, at, rounds);
            let speedup = baseline_ns as f64 / splice_ns as f64;
            traj.record(&format!("{arm}/at={label}/splice_ns"), splice_ns as f64, "ns");
            traj.record(&format!("{arm}/at={label}/truncate_refeed_ns"), baseline_ns as f64, "ns");
            traj.record(&format!("{arm}/at={label}/tokens_refed"), out.refed as f64, "tokens");
            traj.record(&format!("{arm}/at={label}/tokens_reused"), out.reused as f64, "tokens");
            if label == "middle" {
                // The tentpole gate: a mid-buffer keystroke must beat
                // truncate-and-refeed by an order of magnitude, on both
                // recognize engines.
                traj.gate(&format!("{arm}/at={label}/speedup"), speedup, "ratio", speedup >= gate);
                traj.write(env!("CARGO_MANIFEST_DIR"));
                assert!(
                    speedup >= gate,
                    "{arm}: mid-buffer splice must be ≥{gate}× vs truncate-and-refeed \
                     ({splice_ns} vs {baseline_ns} ns over {n} tokens)"
                );
            } else {
                traj.record(&format!("{arm}/at={label}/speedup"), speedup, "ratio");
            }
        }
    }
    traj.write(env!("CARGO_MANIFEST_DIR"));
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
