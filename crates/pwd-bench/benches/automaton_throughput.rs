//! Bench for the lazy-automaton tentpole: steady-state recognize throughput
//! on the lexeme-diverse PL/0 corpus, interpreted class-keyed path
//! (`AutomatonMode::Off`) vs the dense transition-table walk
//! (`AutomatonMode::Lazy`).
//!
//! Both arms run warm — the engine is compiled once and reset between
//! rounds, so the interpreted arm has a fully populated class-keyed memo
//! and the table arm has a fully built automaton. What remains is exactly
//! the per-token cost the tentpole targets: memo probe + hash + epoch
//! check per token (interpreted) vs one dense row index (table walk).
//!
//! Emits machine-readable trajectory samples (also written to
//! `BENCH_automaton.json` at the workspace root) in the shared
//! [`pwd_bench::Trajectory`] schema.
//!
//! Run: `cargo bench -p pwd-bench --bench automaton_throughput`
//! (CI: `-- --smoke` relaxes the gate for noisy shared runners.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwd_bench::Trajectory;
use pwd_core::{AutomatonMode, MemoKeying, ParseMode, ParserConfig};
use pwd_grammar::{gen, grammars, Compiled};
use pwd_lex::Lexeme;
use std::time::Instant;

/// ~90% of identifier occurrences are first occurrences — the adversarial
/// corpus for value keying, and the home turf of everything class-keyed.
const ID_REUSE: f64 = 0.1;

fn corpus(targets: &[usize]) -> Vec<Vec<Lexeme>> {
    let lx = grammars::pl0::lexer();
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let src = gen::pl0_source(t, 0xD1CE + i as u64, ID_REUSE);
            lx.tokenize(&src).expect("generated PL/0 tokenizes")
        })
        .collect()
}

fn config(automaton: AutomatonMode) -> ParserConfig {
    ParserConfig {
        mode: ParseMode::Recognize,
        keying: MemoKeying::ByClass,
        automaton,
        ..ParserConfig::improved()
    }
}

/// Warm steady-state cost: compile once, warm up until rows/memos are
/// built, then min-of-rounds (so scheduler noise cannot skew one arm).
/// Returns the best ns per run plus the warm-run automaton counters.
fn measure(automaton: AutomatonMode, lexemes: &[Lexeme], rounds: u32) -> (u128, u64, u64, u64) {
    let grammar = grammars::pl0::cfg();
    let mut pwd = Compiled::compile(&grammar, config(automaton));
    let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
    let start = pwd.start;
    let run = |pwd: &mut Compiled| {
        let t0 = Instant::now();
        pwd.lang.reset();
        assert!(pwd.lang.recognize(start, &toks).unwrap());
        t0.elapsed().as_nanos()
    };
    let mut rows_built = 0u64;
    for _ in 0..rounds.div_ceil(4).max(3) {
        run(&mut pwd); // warmup: builds all reachable rows lazily
        rows_built += pwd.lang.metrics().auto_rows_built;
    }
    let best = (0..rounds).map(|_| run(&mut pwd)).min().expect("rounds > 0");
    let m = pwd.lang.metrics();
    (best, rows_built + m.auto_rows_built, m.auto_table_hits, m.auto_fallbacks)
}

fn bench_automaton_throughput(c: &mut Criterion) {
    let sizes = [300usize, 1000];
    let inputs = corpus(&sizes);

    let mut group = c.benchmark_group("automaton_throughput");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    for lexemes in &inputs {
        let n = lexemes.len();
        for (label, automaton) in
            [("interpreted", AutomatonMode::Off), ("table_walk", AutomatonMode::Lazy)]
        {
            let grammar = grammars::pl0::cfg();
            let mut pwd = Compiled::compile(&grammar, config(automaton));
            let toks = pwd.tokens_from_lexemes(lexemes).expect("terminals");
            let start = pwd.start;
            group.bench_with_input(
                BenchmarkId::new(format!("recognize/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        pwd.lang.reset();
                        assert!(pwd.lang.recognize(start, &toks).unwrap());
                    })
                },
            );
        }
    }
    group.finish();

    // Trajectory samples, measured outside criterion so the two arms'
    // numbers are directly comparable run over run.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut traj = Trajectory::new("automaton");
    for lexemes in &inputs {
        let tokens = lexemes.len();
        let rounds = if smoke { 20u32 } else { 40 };
        let (interp_ns, _, _, _) = measure(AutomatonMode::Off, lexemes, rounds);
        let (table_ns, rows_built, table_hits, fallbacks) =
            measure(AutomatonMode::Lazy, lexemes, rounds);
        let speedup = interp_ns as f64 / table_ns as f64;
        let fallback_rate = fallbacks as f64 / (table_hits + fallbacks).max(1) as f64;
        traj.record(&format!("tokens={tokens}/interp_ns"), interp_ns as f64, "ns");
        traj.record(&format!("tokens={tokens}/table_ns"), table_ns as f64, "ns");
        traj.record(
            &format!("tokens={tokens}/table_tokens_per_sec"),
            (tokens as f64 / (table_ns as f64 / 1e9)).round(),
            "tokens/s",
        );
        traj.record(&format!("tokens={tokens}/rows_built"), rows_built as f64, "count");
        traj.record(&format!("tokens={tokens}/fallback_rate"), fallback_rate, "ratio");

        // Warm steady state must be pure table walk: every token of the
        // measured runs is a dense-row hit, no interpreted fallbacks.
        assert_eq!(fallbacks, 0, "warm runs must not leave the table ({tokens} tokens)");
        assert!(rows_built > 0, "the lazy automaton must actually build rows");

        // The tentpole gate, on the largest corpus (short inputs dilute
        // the win with fixed per-parse costs): the table walk must be ≥5×
        // the interpreted class-keyed path in recognize tokens/sec. Under
        // `--smoke` (shared CI runners with noisy neighbors) the threshold
        // relaxes to a sanity check — the recorded samples are the
        // trajectory either way.
        let gate = if smoke { 1.5 } else { 5.0 };
        if tokens == inputs.last().map_or(0, Vec::len) {
            traj.gate(&format!("tokens={tokens}/speedup"), speedup, "ratio", speedup >= gate);
            traj.write(env!("CARGO_MANIFEST_DIR"));
            assert!(
                speedup >= gate,
                "table walk must be ≥{gate}× the interpreted recognize path on the \
                 lexeme-diverse corpus ({tokens} tokens: {interp_ns} vs {table_ns} ns)"
            );
        } else {
            traj.record(&format!("tokens={tokens}/speedup"), speedup, "ratio");
        }
    }

    // Persist the trajectory next to the workspace root for the CI artifact
    // and the repo's recorded history.
    traj.write(env!("CARGO_MANIFEST_DIR"));
}

criterion_group!(benches, bench_automaton_throughput);
criterion_main!(benches);
