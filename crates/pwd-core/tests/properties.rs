//! Property-based tests: differential testing of the PWD engine against a
//! Brzozowski regex oracle on regular grammars, plus invariants over random
//! inputs and configurations.

use proptest::prelude::*;
use pwd_core::{
    CompactionMode, Language, MemoKeying, MemoStrategy, NodeId, NullStrategy, ParserConfig, TermId,
    Token, TreeCount,
};

/// A regular expression over a two-letter alphabet, used both as a PWD
/// grammar and as a directly-evaluated oracle.
#[derive(Debug, Clone)]
enum Rx {
    Eps,
    Chr(u8), // 0 => 'a', 1 => 'b'
    Cat(Box<Rx>, Box<Rx>),
    Alt(Box<Rx>, Box<Rx>),
    Star(Box<Rx>),
}

impl Rx {
    fn nullable(&self) -> bool {
        match self {
            Rx::Eps | Rx::Star(_) => true,
            Rx::Chr(_) => false,
            Rx::Cat(a, b) => a.nullable() && b.nullable(),
            Rx::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Oracle matcher by direct Brzozowski derivation over the enum.
    fn matches(&self, s: &[u8]) -> bool {
        match s.split_first() {
            None => self.nullable(),
            Some((&c, rest)) => self.deriv(c).matches(rest),
        }
    }

    fn deriv(&self, c: u8) -> Rx {
        match self {
            Rx::Eps => Rx::Alt(Box::new(Rx::Chr(9)), Box::new(Rx::Chr(9))), // ∅ encoded as unmatchable
            Rx::Chr(k) if *k == c => Rx::Eps,
            Rx::Chr(_) => Rx::Alt(Box::new(Rx::Chr(9)), Box::new(Rx::Chr(9))),
            Rx::Cat(a, b) => {
                let first = Rx::Cat(Box::new(a.deriv(c)), b.clone());
                if a.nullable() {
                    Rx::Alt(Box::new(first), Box::new(b.deriv(c)))
                } else {
                    first
                }
            }
            Rx::Alt(a, b) => Rx::Alt(Box::new(a.deriv(c)), Box::new(b.deriv(c))),
            Rx::Star(a) => Rx::Cat(Box::new(a.deriv(c)), Box::new(self.clone())),
        }
    }

    /// Builds the same language as a PWD grammar.
    fn to_lang(&self, lang: &mut Language, terms: &[NodeId; 2]) -> NodeId {
        match self {
            Rx::Eps => lang.eps_node(),
            Rx::Chr(k) if *k < 2 => terms[*k as usize],
            Rx::Chr(_) => lang.empty_node(),
            Rx::Cat(a, b) => {
                let na = a.to_lang(lang, terms);
                let nb = b.to_lang(lang, terms);
                lang.cat(na, nb)
            }
            Rx::Alt(a, b) => {
                let na = a.to_lang(lang, terms);
                let nb = b.to_lang(lang, terms);
                lang.alt(na, nb)
            }
            Rx::Star(a) => {
                let na = a.to_lang(lang, terms);
                lang.star(na)
            }
        }
    }
}

fn rx_strategy() -> impl Strategy<Value = Rx> {
    let leaf = prop_oneof![Just(Rx::Eps), (0u8..2).prop_map(Rx::Chr)];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rx::Cat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rx::Alt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Rx::Star(Box::new(a))),
        ]
    })
}

fn setup(config: ParserConfig, rx: &Rx) -> (Language, NodeId, TermId, TermId) {
    let mut lang = Language::new(config);
    let ta = lang.terminal("a");
    let tb = lang.terminal("b");
    let na = lang.term_node(ta);
    let nb = lang.term_node(tb);
    let root = rx.to_lang(&mut lang, &[na, nb]);
    (lang, root, ta, tb)
}

fn tokens(lang: &mut Language, ta: TermId, tb: TermId, s: &[u8]) -> Vec<Token> {
    s.iter().map(|&c| if c == 0 { lang.token(ta, "a") } else { lang.token(tb, "b") }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// PWD recognition agrees with the regex oracle on random regular
    /// grammars and random inputs, for the improved configuration.
    #[test]
    fn pwd_matches_regex_oracle_improved(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..12)) {
        let (mut lang, root, ta, tb) = setup(ParserConfig::improved(), &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        let got = lang.recognize(root, &toks).unwrap();
        let want = rx.matches(&s);
        prop_assert_eq!(got, want, "rx={:?} s={:?}", rx, s);
    }

    /// …and for the original-2011 configuration.
    #[test]
    fn pwd_matches_regex_oracle_original(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..10)) {
        let (mut lang, root, ta, tb) = setup(ParserConfig::original_2011(), &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        let got = lang.recognize(root, &toks).unwrap();
        prop_assert_eq!(got, rx.matches(&s));
    }

    /// …and with compaction fully disabled.
    #[test]
    fn pwd_matches_regex_oracle_no_compaction(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..10)) {
        let cfg = ParserConfig { compaction: CompactionMode::None, ..ParserConfig::improved() };
        let (mut lang, root, ta, tb) = setup(cfg, &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        let got = lang.recognize(root, &toks).unwrap();
        prop_assert_eq!(got, rx.matches(&s));
    }

    /// Nullability strategies agree pairwise on random regular grammars.
    #[test]
    fn nullability_strategies_agree(rx in rx_strategy()) {
        let mut answers = Vec::new();
        for s in [NullStrategy::Naive, NullStrategy::Worklist, NullStrategy::Labeled] {
            let cfg = ParserConfig { nullability: s, ..ParserConfig::improved() };
            let (mut lang, root, _, _) = setup(cfg, &rx);
            answers.push(lang.nullable(root));
        }
        prop_assert_eq!(answers[0], answers[1]);
        prop_assert_eq!(answers[1], answers[2]);
        prop_assert_eq!(answers[0], rx.nullable());
    }

    /// Memo strategies yield identical accept/reject answers *and* identical
    /// parse counts (forgetfulness affects cost only, never results).
    #[test]
    fn memo_strategies_agree(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..10)) {
        let mut answers = Vec::new();
        for m in [MemoStrategy::FullHash, MemoStrategy::SingleEntry] {
            let cfg = ParserConfig { memo: m, ..ParserConfig::improved() };
            let (mut lang, root, ta, tb) = setup(cfg, &rx);
            let toks = tokens(&mut lang, ta, tb, &s);
            let ok = lang.recognize(root, &toks).unwrap();
            lang.reset();
            let count = if ok { lang.count_parses(root, &toks).unwrap() } else { TreeCount::Finite(0) };
            answers.push((ok, count));
        }
        prop_assert_eq!(answers[0].clone(), answers[1].clone());
    }

    /// Class keying is observationally identical to value keying even when
    /// every token occurrence carries a unique lexeme — the all-miss case
    /// for value keys and maximal sharing for class keys. Verdicts and
    /// parse counts must match byte for byte, and the value-keyed arm is
    /// additionally pinned to the regex oracle.
    #[test]
    fn memo_keyings_agree(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..10)) {
        let mut answers = Vec::new();
        for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
            let cfg = ParserConfig { keying, ..ParserConfig::improved() };
            let (mut lang, root, ta, tb) = setup(cfg, &rx);
            let toks: Vec<Token> = s.iter().enumerate()
                .map(|(i, &c)| {
                    let (t, n) = if c == 0 { (ta, "a") } else { (tb, "b") };
                    lang.token(t, &format!("{n}{i}"))
                })
                .collect();
            let ok = lang.recognize(root, &toks).unwrap();
            lang.reset();
            let count = if ok { lang.count_parses(root, &toks).unwrap() } else { TreeCount::Finite(0) };
            if keying == MemoKeying::ByValue {
                prop_assert_eq!(ok, rx.matches(&s), "oracle: rx={:?} s={:?}", rx, s);
            }
            answers.push((ok, count));
        }
        prop_assert_eq!(answers[0].clone(), answers[1].clone());
    }

    /// `w ∈ L ⇒` every parse tree's fringe equals `w` (soundness of ASTs).
    #[test]
    fn parse_tree_fringes_equal_input(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..8)) {
        let (mut lang, root, ta, tb) = setup(ParserConfig::improved(), &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        if let Ok(trees) = lang.parse_trees(root, &toks, pwd_core::EnumLimits { max_trees: 8, max_depth: 128 }) {
            let want: Vec<String> = toks.iter().map(|t| t.lexeme().to_string()).collect();
            for t in trees {
                prop_assert_eq!(t.fringe(), want.clone());
            }
        }
    }

    /// Reset + reparse is deterministic: same metrics, same outcome. The
    /// first-ever parse additionally pays the one-time §4.3.1 prepass (its
    /// output is cached warm state), so the comparison is between two warm
    /// rounds, with the cold round pinned to the same verdict.
    #[test]
    fn reset_reparse_is_deterministic(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..8)) {
        let (mut lang, root, ta, tb) = setup(ParserConfig::improved(), &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        let r0 = lang.recognize(root, &toks).unwrap();
        lang.reset();
        let toks1 = tokens(&mut lang, ta, tb, &s);
        let r1 = lang.recognize(root, &toks1).unwrap();
        let m1 = *lang.metrics();
        lang.reset();
        let toks2 = tokens(&mut lang, ta, tb, &s);
        let r2 = lang.recognize(root, &toks2).unwrap();
        let m2 = *lang.metrics();
        prop_assert_eq!(r0, r1);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(m1, m2);
    }

    /// Epoch reset is indistinguishable from a fresh compile: a `Language`
    /// that has parsed and been `reset()` answers recognition *and* parse
    /// counting identically to one that was never used, across random
    /// grammars, random inputs, and every configuration preset.
    #[test]
    fn reset_language_equals_fresh_language(
        rx in rx_strategy(),
        first in proptest::collection::vec(0u8..2, 0..10),
        inputs in proptest::collection::vec(proptest::collection::vec(0u8..2, 0..8), 1..4),
    ) {
        for config in [
            ParserConfig::improved(),
            ParserConfig::original_2011(),
            ParserConfig { compaction: CompactionMode::None, ..ParserConfig::improved() },
        ] {
            // The reused engine: dirty it with one parse, then epoch-reset
            // before every query.
            let (mut reused, root_r, ta_r, tb_r) = setup(config, &rx);
            let warmup = tokens(&mut reused, ta_r, tb_r, &first);
            let _ = reused.recognize(root_r, &warmup).unwrap();
            for s in &inputs {
                reused.reset();
                let toks = tokens(&mut reused, ta_r, tb_r, s);
                let got = reused.recognize(root_r, &toks).unwrap();

                let (mut fresh, root_f, ta_f, tb_f) = setup(config, &rx);
                let toks_f = tokens(&mut fresh, ta_f, tb_f, s);
                let want = fresh.recognize(root_f, &toks_f).unwrap();
                prop_assert_eq!(got, want, "recognize after reset: rx={:?} s={:?}", rx, s);

                reused.reset();
                let toks = tokens(&mut reused, ta_r, tb_r, s);
                let count_reused = match reused.parse_forest(root_r, &toks) {
                    Ok(f) => Some(reused.count_of(f)),
                    Err(_) => None,
                };
                let (mut fresh, root_f, ta_f, tb_f) = setup(config, &rx);
                let toks_f = tokens(&mut fresh, ta_f, tb_f, s);
                let count_fresh = match fresh.parse_forest(root_f, &toks_f) {
                    Ok(f) => Some(fresh.count_of(f)),
                    Err(_) => None,
                };
                prop_assert_eq!(count_reused, count_fresh, "count after reset: rx={:?} s={:?}", rx, s);
            }
        }
    }

    /// Reachable node count never decreases wrongly and nodes created is
    /// consistent with the arena growth.
    #[test]
    fn node_accounting_consistent(rx in rx_strategy(), s in proptest::collection::vec(0u8..2, 0..8)) {
        let (mut lang, root, ta, tb) = setup(ParserConfig::improved(), &rx);
        let toks = tokens(&mut lang, ta, tb, &s);
        let before = lang.node_count();
        lang.reset_metrics();
        let _ = lang.recognize(root, &toks).unwrap();
        let after = lang.node_count();
        let created = lang.metrics().nodes_created as usize;
        prop_assert_eq!(after - before, created);
    }
}
