//! Tests of the §3 complexity machinery: Definition-5 naming, Lemma 7,
//! Theorem 8's node-count bound, and the Figure-5 worst case.

use pwd_core::{Language, NodeId, ParserConfig, Token};

/// Builds the Figure-5 grammar `L = (L ◦ L) ∪ c` in the named-recognizer
/// configuration and returns `(lang, L, tokens c1…cn)`.
///
/// The paper's `c` "accepts any token"; we model that with a single terminal
/// kind whose lexemes `c1…cn` differ, so every token is unique — the
/// worst case for memoization, as §4.4 notes the complexity proof assumes.
fn figure5(n: usize) -> (Language, NodeId, Vec<Token>) {
    let mut lang = Language::new(ParserConfig::named_recognizer());
    let c = lang.terminal("c");
    let tc = lang.term_node(c);
    lang.set_label(tc, "N");
    let l = lang.forward();
    let ll = lang.cat(l, l);
    lang.set_label(ll, "M");
    let body = lang.alt(ll, tc);
    lang.set_label(body, "L");
    lang.define(l, body);
    let toks = (1..=n).map(|i| lang.token(c, &format!("c{i}"))).collect();
    (lang, l, toks)
}

#[test]
fn figure5_recognizes() {
    let (mut lang, l, toks) = figure5(4);
    assert!(lang.recognize(l, &toks).unwrap());
}

/// Lemma 7: every Definition-5 name contains at most one `•`.
#[test]
fn lemma7_at_most_one_bullet() {
    for n in 1..=6 {
        let (mut lang, l, toks) = figure5(n);
        assert!(lang.recognize(l, &toks).unwrap());
        let (_, _, max_bullets) = lang.name_stats();
        assert!(max_bullets <= 1, "n={n}: some name has {max_bullets} bullets");
    }
}

/// Memoization ⇒ names are unique: two nodes never share a name.
#[test]
fn names_are_unique_per_node() {
    for n in 1..=6 {
        let (mut lang, l, toks) = figure5(n);
        assert!(lang.recognize(l, &toks).unwrap());
        let (total, distinct, _) = lang.name_stats();
        assert_eq!(total, distinct, "n={n}: duplicate names exist");
    }
}

/// Theorem 8: the number of nodes constructed during parsing is O(G·n³).
/// We check the concrete bound G · (count of names of the form Nw or Nu•v):
/// names drop their base symbol to substrings of the input (O(n²) of them)
/// with an optional bullet position (O(n)).
#[test]
fn theorem8_node_count_within_cubic_bound() {
    for n in [2usize, 4, 6, 8, 10] {
        let (mut lang, l, toks) = figure5(n);
        assert!(lang.recognize(l, &toks).unwrap());
        let g_initial = 3u64; // L, M, N
                              // Substrings: n(n+1)/2 nonempty + 1 empty; bullet positions ≤ n+1.
        let substrings = (n as u64 * (n as u64 + 1)) / 2 + 1;
        let bound = g_initial * substrings * (n as u64 + 2);
        let created = lang.named_node_count() as u64;
        assert!(created <= bound, "n={n}: created {created} nodes, cubic bound {bound}");
    }
}

/// Node growth for the worst-case grammar must be polynomial (cubic), not
/// exponential: growing n by 2× must grow nodes by at most ~8×(1+slack).
#[test]
fn node_growth_is_polynomial_not_exponential() {
    let count_nodes = |n: usize| {
        let (mut lang, l, toks) = figure5(n);
        assert!(lang.recognize(l, &toks).unwrap());
        lang.named_node_count() as f64
    };
    let n8 = count_nodes(8);
    let n16 = count_nodes(16);
    let n32 = count_nodes(32);
    let ratio1 = n16 / n8;
    let ratio2 = n32 / n16;
    // Cubic growth gives ratios near 8; exponential would explode past this.
    assert!(ratio1 < 10.0, "n8={n8} n16={n16} ratio={ratio1}");
    assert!(ratio2 < 10.0, "n16={n16} n32={n32} ratio={ratio2}");
    // And the log-log slope should be ≥ 2: the worst case really is
    // superlinear (it would be ~1 for an easy grammar).
    let slope = (n32 / n8).log2() / 2.0;
    assert!((1.5..=3.5).contains(&slope), "log-log slope {slope}");
}

/// Figure 5's first derivative: deriving `L = (L∘L) ∪ c` by c1 produces
/// nodes named Lc1, Mc1, Nc1 (and the derivative accepts what it should).
#[test]
fn figure5_first_derivative_names() {
    let (mut lang, l, toks) = figure5(1);
    assert!(lang.recognize(l, &toks).unwrap());
    let names: Vec<String> = lang.all_node_names().into_iter().map(|(_, n)| n).collect();
    for expected in ["L", "M", "N", "Lc1", "Mc1", "Nc1"] {
        assert!(names.iter().any(|n| n == expected), "missing name {expected:?} in {names:?}");
    }
}

/// After two tokens the duplication kicks in: Mc1•c2 (Rule 5b) must exist,
/// alongside Lc2/Mc2/Nc2 (the duplicated right-child derivatives) and
/// Lc1c2/Mc1c2/Nc1c2.
#[test]
fn figure5_second_derivative_names() {
    let (mut lang, l, toks) = figure5(2);
    assert!(lang.recognize(l, &toks).unwrap());
    let names: Vec<String> = lang.all_node_names().into_iter().map(|(_, n)| n).collect();
    for expected in ["Mc1•c2", "Lc1c2", "Mc1c2", "Nc1c2", "Lc2", "Mc2", "Nc2"] {
        assert!(names.iter().any(|n| n == expected), "missing name {expected:?} in {names:?}");
    }
}

/// Every bullet-containing name in any run belongs to a ∪ node created from
/// a nullable-◦ derivative — it can never gain a second bullet in deeper
/// derivatives (the dynamic content of Lemma 7's proof).
#[test]
fn bullets_never_stack_across_derivatives() {
    let (mut lang, l, toks) = figure5(8);
    assert!(lang.recognize(l, &toks).unwrap());
    for (_, name) in lang.all_node_names() {
        let bullets = name.matches('•').count();
        assert!(bullets <= 1, "name {name} has {bullets} bullets");
    }
}

/// Name symbols (with base and • removed) must be *contiguous* substrings of
/// the input (the observation behind Lemma 6).
#[test]
fn name_symbols_are_input_substrings() {
    let n = 6;
    let (mut lang, l, toks) = figure5(n);
    assert!(lang.recognize(l, &toks).unwrap());
    let input: Vec<String> = toks.iter().map(|t| t.lexeme().to_string()).collect();
    for (_, rendered) in lang.all_node_names() {
        // Strip base (everything before the first 'c') and bullets.
        let stripped: String = rendered.replace('•', "");
        let Some(pos) = stripped.find('c') else { continue };
        let syms: Vec<String> = stripped[pos..]
            .split_inclusive(|ch: char| ch.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if syms.is_empty() {
            continue;
        }
        // Find the window in the input.
        let found = input.windows(syms.len()).any(|w| w == syms.as_slice());
        assert!(found, "name {rendered} symbols {syms:?} not contiguous in input");
    }
}
