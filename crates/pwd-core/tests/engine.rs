//! Behavioral tests of the PWD engine across every configuration axis.

use pwd_core::{
    AutomatonMode, CompactionMode, Language, MemoKeying, MemoStrategy, NodeId, NullStrategy,
    ParseMode, ParserConfig, PwdError, Reduce, TermId, Token, Tree, TreeCount,
    DEFAULT_AUTOMATON_MAX_ROWS,
};

/// Every meaningful engine configuration: 3 nullability × 3 compaction ×
/// 2 memo strategies × 2 memo keyings (prepass toggled with compaction).
/// All in parse mode, where the lazy automaton is inert by design — its
/// recognize-mode behavior gets dedicated differential coverage in
/// `tests/automaton_differential.rs` at the workspace root.
fn all_configs() -> Vec<ParserConfig> {
    let mut out = Vec::new();
    for nullability in [NullStrategy::Naive, NullStrategy::Worklist, NullStrategy::Labeled] {
        for compaction in
            [CompactionMode::None, CompactionMode::SeparatePass, CompactionMode::OnConstruction]
        {
            for memo in [MemoStrategy::FullHash, MemoStrategy::SingleEntry] {
                for keying in [MemoKeying::ByValue, MemoKeying::ByClass] {
                    for prepass in [false, true] {
                        out.push(ParserConfig {
                            nullability,
                            compaction,
                            memo,
                            keying,
                            mode: ParseMode::Parse,
                            naming: false,
                            prepass_right_children: prepass,
                            max_nodes: None,
                            automaton: AutomatonMode::Lazy,
                            automaton_max_rows: DEFAULT_AUTOMATON_MAX_ROWS,
                        });
                    }
                }
            }
        }
    }
    out
}

/// A tiny grammar workbench: builds a language over single-char terminals.
struct Bench {
    lang: Language,
    terms: Vec<(char, TermId)>,
}

impl Bench {
    fn new(config: ParserConfig) -> Bench {
        Bench { lang: Language::new(config), terms: Vec::new() }
    }

    fn t(&mut self, c: char) -> NodeId {
        let id = self.term(c);
        self.lang.term_node(id)
    }

    fn term(&mut self, c: char) -> TermId {
        if let Some(&(_, id)) = self.terms.iter().find(|(k, _)| *k == c) {
            return id;
        }
        let id = self.lang.terminal(&c.to_string());
        self.terms.push((c, id));
        id
    }

    fn toks(&mut self, s: &str) -> Vec<Token> {
        s.chars()
            .map(|c| {
                let id = self.term(c);
                self.lang.token(id, &c.to_string())
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Fixed grammars, all configurations
// ---------------------------------------------------------------------

/// Simple sequence `S = a b c`.
#[test]
fn sequence_all_configs() {
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let (a, bb, c) = (b.t('a'), b.t('b'), b.t('c'));
        let s = b.lang.seq(&[a, bb, c]);
        let good = b.toks("abc");
        let bad1 = b.toks("ab");
        let bad2 = b.toks("abcb");
        let bad3 = b.toks("xbc");
        assert!(b.lang.recognize(s, &good).unwrap(), "{cfg:?}");
        assert!(!b.lang.recognize(s, &bad1).unwrap(), "{cfg:?}");
        assert!(!b.lang.recognize(s, &bad2).unwrap(), "{cfg:?}");
        assert!(!b.lang.recognize(s, &bad3).unwrap(), "{cfg:?}");
    }
}

/// Left recursion `L = (L c) | c` accepts c⁺.
#[test]
fn left_recursion_all_configs() {
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let c = b.t('c');
        let l = b.lang.forward();
        let lc = b.lang.cat(l, c);
        let body = b.lang.alt(lc, c);
        b.lang.define(l, body);
        for n in 1..8usize {
            let toks = b.toks(&"c".repeat(n));
            assert!(b.lang.recognize(l, &toks).unwrap(), "{cfg:?} n={n}");
            b.lang.reset();
        }
        let empty: Vec<Token> = Vec::new();
        assert!(!b.lang.recognize(l, &empty).unwrap(), "{cfg:?} empty");
    }
}

/// Right recursion with ε: `S = ε | a S` accepts a*.
#[test]
fn right_recursion_with_epsilon_all_configs() {
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let a = b.t('a');
        let s = b.lang.forward();
        let as_ = b.lang.cat(a, s);
        let eps = b.lang.eps_node();
        let body = b.lang.alt(eps, as_);
        b.lang.define(s, body);
        for n in 0..6usize {
            let toks = b.toks(&"a".repeat(n));
            assert!(b.lang.recognize(s, &toks).unwrap(), "{cfg:?} n={n}");
            b.lang.reset();
        }
        let toks = b.toks("ab");
        assert!(!b.lang.recognize(s, &toks).unwrap(), "{cfg:?}");
    }
}

/// Ambiguous `S = S S | a`: number of parses of aⁿ is Catalan(n−1).
#[test]
fn catalan_parse_counts_all_configs() {
    let catalan = [1u128, 1, 2, 5, 14, 42];
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let a = b.t('a');
        let s = b.lang.forward();
        let ss = b.lang.cat(s, s);
        let body = b.lang.alt(ss, a);
        b.lang.define(s, body);
        for n in 1..=5usize {
            let toks = b.toks(&"a".repeat(n));
            let count = b.lang.count_parses(s, &toks).unwrap();
            assert_eq!(count, TreeCount::Finite(catalan[n - 1]), "{cfg:?} n={n}");
            b.lang.reset();
        }
    }
}

/// Paper's worst case `L = (L ◦ L) ∪ c` recognizes c⁺ and has Catalan
/// ambiguity.
#[test]
fn worst_case_grammar_all_configs() {
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let c = b.t('c');
        let l = b.lang.forward();
        let ll = b.lang.cat(l, l);
        let body = b.lang.alt(ll, c);
        b.lang.define(l, body);
        let toks = b.toks("cccc");
        assert_eq!(b.lang.count_parses(l, &toks).unwrap(), TreeCount::Finite(5), "{cfg:?}");
    }
}

/// Grammar with infinitely many null parses: `S = ε | S S`. Counting must
/// report None (infinite) on the empty input but recognition succeeds.
#[test]
fn infinite_null_parses() {
    for cfg in all_configs() {
        let mut b = Bench::new(cfg);
        let s = b.lang.forward();
        let ss = b.lang.cat(s, s);
        let eps = b.lang.eps_node();
        let body = b.lang.alt(eps, ss);
        b.lang.define(s, body);
        let empty: Vec<Token> = Vec::new();
        assert!(b.lang.recognize(s, &empty).unwrap(), "{cfg:?}");
        b.lang.reset();
        let count = b.lang.count_parses(s, &empty).unwrap();
        assert_eq!(count, TreeCount::Infinite, "{cfg:?}: infinitely many parses of ε");
    }
}

// ---------------------------------------------------------------------
// Parse trees and reductions
// ---------------------------------------------------------------------

#[test]
fn parse_tree_structure_pairs() {
    let mut b = Bench::new(ParserConfig::improved());
    let (a, bb) = (b.t('a'), b.t('b'));
    let s = b.lang.cat(a, bb);
    let toks = b.toks("ab");
    let tree = b.lang.parse_unique(s, &toks).unwrap().expect("unambiguous");
    assert_eq!(tree.to_string(), "(a . b)");
    assert_eq!(tree.fringe(), vec!["a", "b"]);
}

#[test]
fn user_reduction_builds_ast() {
    let mut b = Bench::new(ParserConfig::improved());
    let (a, bb) = (b.t('a'), b.t('b'));
    let ab = b.lang.cat(a, bb);
    let s = b.lang.reduce(ab, Reduce::func("mk", |t| Tree::node("pair", vec![t])));
    let toks = b.toks("ab");
    let tree = b.lang.parse_unique(s, &toks).unwrap().expect("unambiguous");
    assert_eq!(tree.to_string(), "(pair (a . b))");
}

/// The same grammar must yield the same parse-tree multiset in every
/// configuration — compaction preserves parse trees (its rules insert
/// compensating reductions).
#[test]
fn compaction_preserves_parse_trees() {
    let build = |cfg: ParserConfig| {
        let mut b = Bench::new(cfg);
        // S = (a | ε) (b | a b)
        let a = b.t('a');
        let bb = b.t('b');
        let eps = b.lang.eps_node();
        let left = b.lang.alt(a, eps);
        let ab = b.lang.cat(a, bb);
        let right = b.lang.alt(bb, ab);
        let s = b.lang.cat(left, right);
        (b, s)
    };
    let inputs = ["b", "ab", "aab", "a", ""];
    for input in inputs {
        let mut results: Vec<(bool, TreeCount)> = Vec::new();
        for cfg in all_configs() {
            let (mut b, s) = build(cfg);
            let toks = b.toks(input);
            let ok = b.lang.recognize(s, &toks).unwrap();
            b.lang.reset();
            let count =
                if ok { b.lang.count_parses(s, &toks).unwrap() } else { TreeCount::Finite(0) };
            results.push((ok, count));
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "configs disagree on {input:?}: {results:?}"
        );
    }
}

/// Tree shape must match the uncompacted reference shape: ((a.b).c) for a
/// left-nested grammar even though compaction reassociates internally.
#[test]
fn reassociation_preserves_tree_shape() {
    for cfg in [
        ParserConfig { compaction: CompactionMode::None, ..ParserConfig::improved() },
        ParserConfig::improved(),
        ParserConfig::original_2011(),
    ] {
        let mut b = Bench::new(cfg);
        let (a, bb, c) = (b.t('a'), b.t('b'), b.t('c'));
        let ab = b.lang.cat(a, bb);
        let abc = b.lang.cat(ab, c); // ((a ◦ b) ◦ c)
        let toks = b.toks("abc");
        let tree = b.lang.parse_unique(abc, &toks).unwrap().expect("unambiguous");
        assert_eq!(tree.to_string(), "((a . b) . c)", "{cfg:?}");
    }
}

/// ε_s ◦ p must pair the constant tree on the left.
#[test]
fn eps_cat_pairs_constant_left() {
    for cfg in [ParserConfig::improved(), ParserConfig::original_2011()] {
        let mut b = Bench::new(cfg);
        let a = b.t('a');
        let e = b.lang.eps_tree(Tree::node("k", vec![]));
        let s = b.lang.cat(e, a);
        let toks = b.toks("a");
        let tree = b.lang.parse_unique(s, &toks).unwrap().expect("unambiguous");
        assert_eq!(tree.to_string(), "((k) . a)", "{cfg:?}");
    }
}

/// p ◦ ε_s (right-child rule, §4.3.1) pairs the constant on the right.
#[test]
fn cat_eps_pairs_constant_right() {
    for cfg in [
        ParserConfig { compaction: CompactionMode::None, ..ParserConfig::improved() },
        ParserConfig::improved(),
    ] {
        let mut b = Bench::new(cfg);
        let a = b.t('a');
        let e = b.lang.eps_tree(Tree::node("k", vec![]));
        let s = b.lang.cat(a, e);
        let toks = b.toks("a");
        let tree = b.lang.parse_unique(s, &toks).unwrap().expect("unambiguous");
        assert_eq!(tree.to_string(), "(a . (k))", "{cfg:?}");
    }
}

// ---------------------------------------------------------------------
// Errors and edge cases
// ---------------------------------------------------------------------

#[test]
fn rejection_reports_position() {
    let mut b = Bench::new(ParserConfig::improved());
    let (a, bb, c) = (b.t('a'), b.t('b'), b.t('c'));
    let s = b.lang.seq(&[a, bb, c]);
    let toks = b.toks("abx");
    let err = b.lang.parse_forest(s, &toks).unwrap_err();
    match err {
        PwdError::Rejected { position, token } => {
            assert_eq!(position, 2);
            assert_eq!(token.unwrap().lexeme(), "x");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn rejection_at_end_of_input() {
    let mut b = Bench::new(ParserConfig::improved());
    let (a, bb) = (b.t('a'), b.t('b'));
    let s = b.lang.cat(a, bb);
    let toks = b.toks("a");
    let err = b.lang.parse_forest(s, &toks).unwrap_err();
    assert_eq!(err, PwdError::Rejected { position: 1, token: None });
}

#[test]
fn node_budget_trips() {
    let cfg = ParserConfig { max_nodes: Some(16), ..ParserConfig::improved() };
    let mut b = Bench::new(cfg);
    let c = b.t('c');
    let l = b.lang.forward();
    let ll = b.lang.cat(l, l);
    let body = b.lang.alt(ll, c);
    b.lang.define(l, body);
    let toks = b.toks(&"c".repeat(50));
    let err = b.lang.recognize(l, &toks).unwrap_err();
    assert!(matches!(err, PwdError::NodeBudgetExceeded { limit: 16, .. }), "{err:?}");
}

#[test]
fn undefined_forward_is_reported() {
    let mut lang = Language::default();
    let f = lang.forward();
    lang.set_label(f, "Expr");
    let a = lang.terminal("a");
    let tok = lang.token(a, "a");
    let err = lang.recognize(f, &[tok]).unwrap_err();
    assert_eq!(err, PwdError::UndefinedNonterminal { label: Some("Expr".into()) });
}

#[test]
fn empty_language_rejects_everything() {
    let mut b = Bench::new(ParserConfig::improved());
    let e = b.lang.empty_node();
    let toks = b.toks("a");
    assert!(!b.lang.recognize(e, &toks).unwrap());
    let empty: Vec<Token> = Vec::new();
    assert!(!b.lang.recognize(e, &empty).unwrap());
}

#[test]
fn epsilon_language_accepts_only_empty() {
    let mut b = Bench::new(ParserConfig::improved());
    let e = b.lang.eps_node();
    let empty: Vec<Token> = Vec::new();
    assert!(b.lang.recognize(e, &empty).unwrap());
    let toks = b.toks("a");
    assert!(!b.lang.recognize(e, &toks).unwrap());
}

#[test]
fn reset_allows_reparsing() {
    let mut b = Bench::new(ParserConfig::improved());
    let c = b.t('c');
    let l = b.lang.forward();
    let lc = b.lang.cat(l, c);
    let body = b.lang.alt(lc, c);
    b.lang.define(l, body);
    for round in 0..5 {
        let toks = b.toks("ccc");
        assert!(b.lang.recognize(l, &toks).unwrap(), "round {round}");
        let nodes_after = b.lang.node_count();
        b.lang.reset();
        assert!(b.lang.node_count() < nodes_after, "reset must shrink the arena");
        assert_eq!(b.lang.metrics().derive_calls, 0);
    }
}

#[test]
fn reset_is_idempotent_and_safe_before_parse() {
    let mut lang = Language::default();
    lang.reset(); // never parsed: no-op
    let a = lang.terminal("a");
    let ta = lang.term_node(a);
    let tok = lang.token(a, "a");
    assert!(lang.recognize(ta, std::slice::from_ref(&tok)).unwrap());
    lang.reset();
    lang.reset();
    assert!(lang.recognize(ta, &[tok]).unwrap());
}

/// Tokens of the same terminal but different lexemes are distinct values:
/// the single-entry memo can evict, but results must stay correct.
#[test]
fn distinct_lexemes_state_correct() {
    for cfg in [ParserConfig::improved(), ParserConfig::original_2011()] {
        let mut lang = Language::new(cfg);
        let num = lang.terminal("NUM");
        let plus = lang.terminal("+");
        let tn = lang.term_node(num);
        let tp = lang.term_node(plus);
        // E = NUM | E + NUM (left recursive)
        let e = lang.forward();
        let ep = lang.cat(e, tp);
        let epn = lang.cat(ep, tn);
        let body = lang.alt(epn, tn);
        lang.define(e, body);
        let toks = vec![
            lang.token(num, "1"),
            lang.token(plus, "+"),
            lang.token(num, "2"),
            lang.token(plus, "+"),
            lang.token(num, "1"), // repeated lexeme "1"
        ];
        let tree = lang.parse_unique(e, &toks).unwrap().expect("unambiguous");
        assert_eq!(tree.fringe(), vec!["1", "+", "2", "+", "1"], "{cfg:?}");
    }
}

/// Single-token inputs exercise the derive → parse-null pipeline minimally.
#[test]
fn single_token_parse_tree_is_leaf() {
    let mut b = Bench::new(ParserConfig::improved());
    let a = b.t('a');
    let toks = b.toks("a");
    let tree = b.lang.parse_unique(a, &toks).unwrap().expect("unambiguous");
    assert_eq!(tree, Tree::leaf("a", "a"));
}

// ---------------------------------------------------------------------
// Recognize mode vs parse mode agreement
// ---------------------------------------------------------------------

#[test]
fn recognizer_mode_agrees_with_parser_mode() {
    let inputs = ["", "c", "cc", "ccc", "cccc", "ccccc"];
    for input in inputs {
        let mut answers = Vec::new();
        for mode in [ParseMode::Recognize, ParseMode::Parse] {
            let cfg = ParserConfig { mode, ..ParserConfig::improved() };
            let mut b = Bench::new(cfg);
            let c = b.t('c');
            let l = b.lang.forward();
            let ll = b.lang.cat(l, l);
            let body = b.lang.alt(ll, c);
            b.lang.define(l, body);
            let toks = b.toks(input);
            answers.push(b.lang.recognize(l, &toks).unwrap());
        }
        assert_eq!(answers[0], answers[1], "modes disagree on {input:?}");
    }
}

// ---------------------------------------------------------------------
// Metrics sanity
// ---------------------------------------------------------------------

#[test]
fn metrics_accumulate_and_reset() {
    let mut b = Bench::new(ParserConfig::improved());
    let c = b.t('c');
    let l = b.lang.forward();
    let lc = b.lang.cat(l, c);
    let body = b.lang.alt(lc, c);
    b.lang.define(l, body);
    let toks = b.toks("cccc");
    assert!(b.lang.recognize(l, &toks).unwrap());
    let m = *b.lang.metrics();
    assert!(m.derive_calls > 0);
    assert!(m.derive_uncached > 0);
    assert!(m.derive_uncached <= m.derive_calls);
    assert!(m.nullable_calls > 0);
    assert!(m.nodes_created > 0);
    b.lang.reset_metrics();
    assert_eq!(b.lang.metrics().derive_calls, 0);
}

#[test]
fn full_hash_memo_caches_repeated_tokens() {
    // With FullHash, re-deriving by the same token value hits the cache;
    // SingleEntry may recompute. Both must parse correctly, and FullHash
    // must do no more uncached derives than SingleEntry.
    let build = |memo: MemoStrategy| {
        let cfg = ParserConfig { memo, ..ParserConfig::improved() };
        let mut b = Bench::new(cfg);
        let a = b.t('a');
        let bb = b.t('b');
        let inner = b.lang.alt(a, bb);
        let s = b.lang.star(inner);
        let toks = b.toks("abababab");
        assert!(b.lang.recognize(s, &toks).unwrap());
        b.lang.metrics().derive_uncached
    };
    let full = build(MemoStrategy::FullHash);
    let single = build(MemoStrategy::SingleEntry);
    assert!(full <= single, "full {full} vs single {single}");
}
