//! Engine configuration: the paper's ablation axes.
//!
//! The PLDI 2016 paper improves on Might et al. (2011) along three axes —
//! fixed-point computation (§4.2), compaction (§4.3), and memoization (§4.4).
//! [`ParserConfig`] exposes each axis as a strategy knob so that the
//! "original PWD" and "improved PWD" of the evaluation are two configurations
//! of one audited engine, and every figure's ablation is a config diff.

/// How the `nullable?` least fixed point is computed (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NullStrategy {
    /// Might et al. (2011): repeatedly re-traverse all reachable nodes until
    /// no nullability changes. Quadratic in the subgraph per query.
    Naive,
    /// Kildall-style data-flow worklist: track which nodes depend on which,
    /// and revisit only dependents when a node becomes nullable. Values that
    /// are still `false` at the end of a run remain *assumed*, so later
    /// queries must re-run the fixed point over them.
    Worklist,
    /// The paper's algorithm: worklist propagation **plus** promotion of
    /// assumed-not-nullable nodes to definitely-not-nullable when the run
    /// that examined them completes (run labels, §4.2). Subsequent queries
    /// on promoted nodes are O(1).
    #[default]
    Labeled,
}

/// When and how compaction rewrites are applied (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompactionMode {
    /// No compaction at all. Still cubic (§3 holds without compaction), but
    /// slow in practice. Required by the Figure-5 naming instrumentation.
    None,
    /// Might et al. (2011): a separate graph-rewriting pass between the
    /// `derive` calls for successive tokens (traverses nodes twice/token).
    SeparatePass,
    /// The paper's improvement (§4.3.3): compact locally as nodes are
    /// constructed by `derive`, never iterating to a fixed point and
    /// punting when a child is still mid-derivation (cycle).
    #[default]
    OnConstruction,
}

/// How `derive` results are memoized (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoStrategy {
    /// Might et al. (2011): nested hash tables — node → token → result.
    FullHash,
    /// The paper's improvement: two fields on each node acting as a
    /// one-entry cache that evicts on conflict. Forgetful (Figure 11) but on
    /// average 2.04× faster (Figure 12) in the paper's measurements.
    #[default]
    SingleEntry,
    /// The §4.4 extension the paper tried and abandoned: a two-entry
    /// per-node cache with last-recently-inserted eviction. Kept here so
    /// the ablation benches can re-run that experiment.
    DualEntry,
}

/// What identifies a token in the `derive` memo tables (the lexeme-sharing
/// axis; goes beyond the paper).
///
/// The paper keys the memo by token *value* — `(kind, lexeme)` — so on
/// identifier-heavy inputs where nearly every token is a fresh lexeme the
/// memo misses constantly and the engine re-derives the full grammar graph
/// per token. But a derivative depends on the lexeme only through the `ε`
/// leaf it embeds, so `D_tok(n)` is shareable across all lexemes of one
/// terminal class:
///
/// * in [`ParseMode::Recognize`] no forests are built and the derivative is
///   a pure function of the terminal kind, so class keying replaces the
///   [`TokKey`](crate::TokKey) memo key with the [`TermId`](crate::TermId)
///   outright — turning identifier-diverse inputs from all-miss to all-hit;
/// * in [`ParseMode::Parse`] the memo stays value-keyed (forests embed the
///   lexeme), and class keying instead adds a per-`(node, TermId)`
///   *template* slot that lets a repeat terminal share every
///   lexeme-independent subgraph of a previous derivative and re-derive
///   only the patch path down to the fresh `ε` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoKeying {
    /// The paper's scheme: key by token value `(kind, lexeme)`. Kept as the
    /// ablation baseline and for the faithful figure reproductions.
    ByValue,
    /// Share derivatives across lexemes of the same terminal class (full
    /// sharing in recognize mode, template sharing in parse mode).
    ///
    /// Automatically falls back to value keying while Definition-5
    /// [`naming`](ParserConfig::naming) is on, because names embed token
    /// values.
    #[default]
    ByClass,
}

/// Whether `derive` results are additionally compiled into a lazy automaton
/// (the third memoization tier, beyond the paper).
///
/// Class keying (tier two) made recognize-mode derivatives lexeme-independent,
/// but the steady-state loop still walks the derivative graph and probes the
/// memo for every token. The automaton takes the same step `pwd-regex` takes
/// from `deriv.rs` to `dfa.rs`: derivative roots are interned into *states*
/// by structural signature, each state caches a dense `TermId → state`
/// transition row plus its nullability, and the recognize loop becomes a
/// table walk — zero graph construction, memo probes, or hashing per token.
///
/// The automaton only engages where it is sound and free of observable
/// effect: recognize mode, class keying, Definition-5 naming off (the same
/// gate as the class-keyed memo — parse-mode derivatives embed lexemes, so
/// their states never recur). Outside that configuration the axis is
/// ignored, and results are byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AutomatonMode {
    /// Never build transition rows; always run the interpreted (class-keyed)
    /// derive loop. The ablation baseline.
    Off,
    /// Build states and rows lazily as inputs explore them, up to
    /// [`ParserConfig::automaton_max_rows`]; fall back to the interpreted
    /// path transparently beyond the budget.
    #[default]
    Lazy,
}

/// Whether to build parse forests or only recognize (§2 vs §3).
///
/// `Recognize` uses the paper's Figure-2 derivative for `◦` (two nodes per
/// nullable sequence derivative), which is what Definition 5's naming rules
/// and the Figure-5 worst case count. `Parse` additionally threads null-parse
/// forests through δ nodes to produce ASTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParseMode {
    /// Recognition only — no parse forests, Figure-2 derivative shapes.
    Recognize,
    /// Full parsing with ambiguity-node forests.
    #[default]
    Parse,
}

/// Full engine configuration.
///
/// # Examples
///
/// ```
/// use pwd_core::ParserConfig;
/// let orig = ParserConfig::original_2011();
/// let imp = ParserConfig::improved();
/// assert_ne!(orig.nullability, imp.nullability);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserConfig {
    /// Fixed-point strategy for `nullable?`.
    pub nullability: NullStrategy,
    /// Compaction scheduling.
    pub compaction: CompactionMode,
    /// Memoization strategy for `derive`.
    pub memo: MemoStrategy,
    /// What identifies a token in the `derive` memo (value vs class keying).
    pub keying: MemoKeying,
    /// Recognizer vs full parser.
    pub mode: ParseMode,
    /// Assign Definition-5 names to every node created by `derive`
    /// (§3.2 instrumentation; adds overhead, off by default).
    pub naming: bool,
    /// Apply the §4.3.1 right-child reduction rules to the initial grammar
    /// before parsing (they are never needed during parsing — Theorem 10).
    pub prepass_right_children: bool,
    /// Abort parsing if more than this many grammar nodes are created
    /// (failure-injection and runaway protection).
    pub max_nodes: Option<usize>,
    /// Lazily compile recognize-mode derivatives into a transition-table
    /// automaton (the third memoization tier; see [`AutomatonMode`]).
    pub automaton: AutomatonMode,
    /// State/row budget for the lazy automaton: once this many states have
    /// been interned, no further rows are built and unexplored transitions
    /// run on the interpreted class-keyed path (re-entering the table
    /// whenever the walk lands on an already-interned state).
    pub automaton_max_rows: usize,
}

impl ParserConfig {
    /// The configuration matching Might et al. (2011): naive fixed points,
    /// compaction as a separate pass, nested hash-table memoization.
    pub fn original_2011() -> Self {
        ParserConfig {
            nullability: NullStrategy::Naive,
            compaction: CompactionMode::SeparatePass,
            memo: MemoStrategy::FullHash,
            keying: MemoKeying::ByValue,
            mode: ParseMode::Parse,
            naming: false,
            prepass_right_children: false,
            max_nodes: None,
            automaton: AutomatonMode::Off,
            automaton_max_rows: DEFAULT_AUTOMATON_MAX_ROWS,
        }
    }

    /// Might et al. (2011) **without** compaction — the configuration their
    /// paper reports as taking three minutes for 31 lines of Python.
    pub fn original_2011_no_compaction() -> Self {
        ParserConfig { compaction: CompactionMode::None, ..Self::original_2011() }
    }

    /// The paper's improved configuration (the "Improved PWD" series of
    /// Figure 6): labeled fixed points, on-construction compaction,
    /// single-entry memoization, right-child prepass.
    pub fn improved() -> Self {
        ParserConfig {
            nullability: NullStrategy::Labeled,
            compaction: CompactionMode::OnConstruction,
            memo: MemoStrategy::SingleEntry,
            keying: MemoKeying::ByClass,
            mode: ParseMode::Parse,
            naming: false,
            prepass_right_children: true,
            max_nodes: None,
            automaton: AutomatonMode::Lazy,
            automaton_max_rows: DEFAULT_AUTOMATON_MAX_ROWS,
        }
    }

    /// The instrumented configuration used to reproduce Figure 5 and check
    /// Definition 5 / Lemma 7 / Theorem 8: recognizer-form derivatives, no
    /// compaction, naming on.
    pub fn named_recognizer() -> Self {
        ParserConfig {
            nullability: NullStrategy::Labeled,
            compaction: CompactionMode::None,
            memo: MemoStrategy::FullHash,
            keying: MemoKeying::ByValue,
            mode: ParseMode::Recognize,
            naming: true,
            prepass_right_children: false,
            max_nodes: None,
            automaton: AutomatonMode::Off,
            automaton_max_rows: DEFAULT_AUTOMATON_MAX_ROWS,
        }
    }
}

/// Budget and cost model for bounded-effort error recovery.
///
/// Recovery itself runs in the session layer (`derp::recover`) because it
/// drives checkpoints and trial feeds through the backend-agnostic session
/// interface; the budget lives here, next to the other engine knobs, so
/// every layer — core, API, serve — shares one vocabulary for "how hard to
/// try".
///
/// The cost model: each applied repair charges its kind's cost
/// (`skip_cost` / `insert_cost` / `substitute_cost`) against `max_cost`,
/// and the total number of applied repairs is additionally capped by
/// `max_repairs`. When either limit is reached the parse degrades to the
/// recovery-off behavior (the session goes dead on the next unrepairable
/// token) and a final `note`-severity diagnostic records the exhaustion.
/// Skipping is deliberately the most expensive repair: insertion and
/// substitution keep the token stream aligned, while a run of skips is
/// panic-mode recovery (discard input until a synchronizing terminal) and
/// should only win when nothing cheaper is viable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryBudget {
    /// Maximum number of repairs applied in one parse.
    pub max_repairs: u32,
    /// Maximum total repair cost in one parse.
    pub max_cost: u32,
    /// Cost of skipping one input token (panic-mode step).
    pub skip_cost: u32,
    /// Cost of inserting one expected token.
    pub insert_cost: u32,
    /// Cost of substituting an expected token for the input token.
    pub substitute_cost: u32,
    /// Maximum number of candidate repair tokens probed per failure point.
    pub max_candidates: usize,
    /// Tokens of real input a candidate repair must survive (when that much
    /// input remains) to be preferred; breaks ties toward repairs that keep
    /// the parse alive longest.
    pub lookahead: usize,
}

impl Default for RecoveryBudget {
    /// Generous defaults: enough for a handful of independent errors in one
    /// file (16 repairs, total cost 48) without letting an adversarial
    /// input degenerate into an unbounded repair search.
    fn default() -> Self {
        RecoveryBudget {
            max_repairs: 16,
            max_cost: 48,
            skip_cost: 2,
            insert_cost: 1,
            substitute_cost: 1,
            max_candidates: 16,
            lookahead: 4,
        }
    }
}

/// Default state/row budget for the lazy automaton. Real grammars settle
/// into a few dozen isomorphism classes of live derivatives; 4096 rows is
/// two orders of magnitude of headroom while still bounding memory on
/// adversarially state-rich grammars.
pub const DEFAULT_AUTOMATON_MAX_ROWS: usize = 4096;

impl Default for ParserConfig {
    fn default() -> Self {
        Self::improved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_on_all_axes() {
        let o = ParserConfig::original_2011();
        let i = ParserConfig::improved();
        assert_eq!(o.nullability, NullStrategy::Naive);
        assert_eq!(i.nullability, NullStrategy::Labeled);
        assert_eq!(o.compaction, CompactionMode::SeparatePass);
        assert_eq!(i.compaction, CompactionMode::OnConstruction);
        assert_eq!(o.memo, MemoStrategy::FullHash);
        assert_eq!(i.memo, MemoStrategy::SingleEntry);
        assert_eq!(o.keying, MemoKeying::ByValue);
        assert_eq!(i.keying, MemoKeying::ByClass);
    }

    #[test]
    fn default_is_improved() {
        assert_eq!(ParserConfig::default(), ParserConfig::improved());
    }

    #[test]
    fn automaton_axis_defaults() {
        assert_eq!(ParserConfig::improved().automaton, AutomatonMode::Lazy);
        assert_eq!(ParserConfig::original_2011().automaton, AutomatonMode::Off);
        assert_eq!(ParserConfig::named_recognizer().automaton, AutomatonMode::Off);
        assert_eq!(ParserConfig::improved().automaton_max_rows, DEFAULT_AUTOMATON_MAX_ROWS);
    }

    #[test]
    fn named_recognizer_disables_compaction() {
        let c = ParserConfig::named_recognizer();
        assert!(c.naming);
        assert_eq!(c.compaction, CompactionMode::None);
        assert_eq!(c.mode, ParseMode::Recognize);
    }
}
