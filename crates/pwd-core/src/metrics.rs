//! Instrumentation counters.
//!
//! Figures 7, 10, and 11 of the paper are counter-based (calls to
//! `nullable?`, memo-entry census, uncached calls to `derive`); this module
//! holds those counters. They are plain fields updated on the hot path with
//! no atomic or hashing cost.

/// Counters accumulated while parsing.
///
/// Reset with [`Language::reset_metrics`](crate::Language::reset_metrics) or
/// [`Language::reset`](crate::Language::reset).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Metrics {
    /// Total calls to `derive` (cached and uncached).
    pub derive_calls: u64,
    /// Calls to `derive` that missed the memo table and did real work.
    pub derive_uncached: u64,
    /// Total calls to `nullable?` (one per node visit, as in Figure 7).
    pub nullable_calls: u64,
    /// Number of fixed-point runs started by `nullable?` queries.
    pub nullable_runs: u64,
    /// Grammar nodes created (the paper's `g`).
    pub nodes_created: u64,
    /// Single-entry memo evictions (a second token displaced a first).
    pub memo_evictions: u64,
    /// Calls to `parse-null` (cached and uncached).
    pub parse_null_calls: u64,
    /// Separate compaction passes executed (original-2011 mode).
    pub compaction_passes: u64,
    /// Nodes rewritten to something smaller by a compaction rule.
    pub compactions_applied: u64,
    /// Nodes proven empty by the productivity pass and rewritten to `∅`.
    pub empty_prunes: u64,
    /// Class-template slots recorded (one per completed uncached `derive`
    /// under `MemoKeying::ByClass` in parse mode).
    pub templates_recorded: u64,
    /// Tainted template hits: the derivative of a repeat terminal class was
    /// re-instantiated along the patch path to its fresh `ε` leaves.
    pub template_instantiations: u64,
    /// Untainted template hits: a lexeme-independent derivative subgraph was
    /// shared verbatim with a new lexeme of the same terminal class.
    pub template_shares: u64,
    /// Lazy-automaton states interned (one dense transition row each).
    pub auto_rows_built: u64,
    /// Tokens consumed by a transition-table hit: `state = row[term]`, no
    /// derive call, no memo probe, no hashing.
    pub auto_table_hits: u64,
    /// Tokens consumed by the interpreted path while the automaton was
    /// active — cold-table misses plus post-budget fallback steps.
    pub auto_fallbacks: u64,
    /// Error-recovery trial derivatives: cloned session states fed one
    /// candidate repair token to test its viability (zero on clean input —
    /// recovery only probes after a dead feed).
    pub recovery_probes: u64,
}

impl Metrics {
    /// Calls to `derive` answered from the memo tables (including the
    /// class-template fast path).
    pub fn derive_hits(&self) -> u64 {
        self.derive_calls - self.derive_uncached
    }

    /// Fraction of `derive` calls that were uncached, in `[0, 1]`, or
    /// `None` when no `derive` calls ran — a ratio over an empty sample is
    /// not 0% or 100%, it is undefined, and callers must not fold it into
    /// averages as if it were data.
    pub fn uncached_ratio(&self) -> Option<f64> {
        (self.derive_calls != 0).then(|| self.derive_uncached as f64 / self.derive_calls as f64)
    }

    /// Fraction of automaton-active token steps served by a transition-table
    /// hit, in `[0, 1]`, or `None` when the automaton never engaged.
    pub fn auto_hit_ratio(&self) -> Option<f64> {
        let total = self.auto_table_hits + self.auto_fallbacks;
        (total != 0).then(|| self.auto_table_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_undefined_on_empty_samples() {
        let m = Metrics::default();
        assert_eq!(m.uncached_ratio(), None);
        assert_eq!(m.auto_hit_ratio(), None);
    }

    #[test]
    fn uncached_ratio_computes() {
        let m = Metrics { derive_calls: 10, derive_uncached: 4, ..Metrics::default() };
        assert!((m.uncached_ratio().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn auto_hit_ratio_computes() {
        let m = Metrics { auto_table_hits: 3, auto_fallbacks: 1, ..Metrics::default() };
        assert!((m.auto_hit_ratio().unwrap() - 0.75).abs() < 1e-12);
    }
}
