//! Nullability (`δ(L)` / `nullable?`) as a least fixed point (§2.4, §4.2).
//!
//! Three strategies are implemented behind
//! [`NullStrategy`](crate::NullStrategy):
//!
//! * **Naive** — Might et al. (2011): re-traverse everything reachable until
//!   a traversal changes nothing. Quadratic per query.
//! * **Worklist** — Kildall-style: record which parents depend on which
//!   children; when a node is discovered nullable, revisit only its
//!   dependents. Still must re-run over assumed-not-nullable nodes on the
//!   next query.
//! * **Labeled** — the paper's algorithm: Worklist *plus* the observation
//!   that when a fixed-point run completes, every node it examined that is
//!   still assumed-not-nullable is in fact **definitely** not nullable,
//!   because everything it depends on is at a fixed point (§4.2). Each run
//!   gets a fresh label; nodes visited under an older label short-circuit.
//!
//! In all strategies `true` is final the moment it is discovered (the
//! lattice is monotone), and constant nodes (`∅`, `ε`, tokens) are definite
//! from birth.
//!
//! All lattice values live in epoch-stamped node fields and the dependency
//! lists live in one pooled arena ([`Language::dep_pool`]), stamped with the
//! run label that recorded them: a [`Language::reset`] (epoch bump) or a new
//! fixed-point run invalidates them without any clearing sweep. Dependencies
//! recorded by an *earlier* run are deliberately dropped — under `Worklist`
//! nothing is definite so parents recompute on their next query anyway, and
//! under `Labeled` a completed run has promoted everything it examined, so a
//! cross-run wake-up can never fire.

use crate::config::NullStrategy;
use crate::expr::{DepEntry, ExprKind, Language, NodeId, NO_LINK};

impl Language {
    /// Is the language of `id` nullable (does it accept the empty word)?
    ///
    /// This is the engine's `nullable?`; every invocation (including
    /// recursive ones) increments
    /// [`Metrics::nullable_calls`](crate::Metrics::nullable_calls), which is
    /// exactly the quantity Figure 7 of the paper plots.
    pub fn nullable(&mut self, id: NodeId) -> bool {
        match self.config.nullability {
            NullStrategy::Naive => self.nullable_naive(id),
            NullStrategy::Worklist => self.nullable_fix(id, false),
            NullStrategy::Labeled => self.nullable_fix(id, true),
        }
    }

    /// Resolved current lattice value without recomputation.
    fn val(&self, id: NodeId) -> bool {
        self.null_state(self.resolve(id)).0
    }

    // ------------------------------------------------------------------
    // Naive strategy
    // ------------------------------------------------------------------

    fn nullable_naive(&mut self, id: NodeId) -> bool {
        let id = self.resolve(id);
        self.metrics.nullable_calls += 1;
        let (value, definite) = self.null_state(id);
        if definite {
            return value;
        }
        self.metrics.nullable_runs += 1;
        let span = self.obs_start();
        loop {
            self.run_label += 1;
            let mut changed = false;
            self.naive_visit(id, &mut changed);
            if !changed {
                break;
            }
        }
        self.obs_end(pwd_obs::Phase::Nullable, span);
        self.null_state(id).0
    }

    fn naive_visit(&mut self, id: NodeId, changed: &mut bool) -> bool {
        self.metrics.nullable_calls += 1;
        let id = self.resolve(id);
        let run = self.run_label;
        {
            let n = self.null_mut(id);
            if n.null_definite {
                return n.null_value;
            }
            if n.null_visited_run == run {
                return n.null_value;
            }
            n.null_visited_run = run;
        }
        let v = match self.node(id).kind.clone() {
            ExprKind::Empty | ExprKind::Term(_) | ExprKind::Pending | ExprKind::Forward => false,
            ExprKind::Eps(_) => true,
            ExprKind::Alt(a, b) => {
                // Evaluate both sides: the naive algorithm traverses the
                // whole reachable subgraph on every pass.
                let va = self.naive_visit(a, changed);
                let vb = self.naive_visit(b, changed);
                va || vb
            }
            ExprKind::Cat(a, b) => {
                let va = self.naive_visit(a, changed);
                let vb = self.naive_visit(b, changed);
                va && vb
            }
            ExprKind::Red(x, _) | ExprKind::Delta(x) => self.naive_visit(x, changed),
            ExprKind::Ref(_) => unreachable!("resolved"),
        };
        if v && !self.null_state(id).0 {
            let n = self.null_mut(id);
            n.null_value = true;
            n.null_definite = true; // monotone: true is final
            *changed = true;
        }
        self.null_state(id).0
    }

    // ------------------------------------------------------------------
    // Worklist / Labeled strategies
    // ------------------------------------------------------------------

    fn nullable_fix(&mut self, id: NodeId, promote: bool) -> bool {
        let id = self.resolve(id);
        self.metrics.nullable_calls += 1;
        let (value, definite) = self.null_state(id);
        if definite {
            return value;
        }
        self.metrics.nullable_runs += 1;
        let span = self.obs_start();
        self.run_label += 1;
        let mut queue: Vec<NodeId> = Vec::new();
        let mut visited: Vec<NodeId> = Vec::new();
        self.fix_visit(id, &mut queue, &mut visited);
        // Propagate discovered-nullable facts along recorded dependencies.
        while let Some(n) = queue.pop() {
            let mut cur = self.take_deps(n);
            while cur != NO_LINK {
                let entry = self.dep_pool[cur as usize];
                self.fix_recompute(entry.parent, &mut queue);
                cur = entry.next;
            }
        }
        if promote {
            // §4.2: the run is complete, so everything it examined is at a
            // fixed point; assumed-not-nullable becomes definitely-not.
            for v in visited {
                self.null_mut(v).null_definite = true;
            }
        }
        self.obs_end(pwd_obs::Phase::Nullable, span);
        self.null_state(id).0
    }

    fn fix_visit(
        &mut self,
        id: NodeId,
        queue: &mut Vec<NodeId>,
        visited: &mut Vec<NodeId>,
    ) -> bool {
        self.metrics.nullable_calls += 1;
        let id = self.resolve(id);
        let run = self.run_label;
        {
            let n = self.null_mut(id);
            if n.null_definite {
                return n.null_value;
            }
            if n.null_visited_run == run {
                // Already seen this run (possibly still on the DFS stack):
                // use the current assumption.
                return n.null_value;
            }
            n.null_visited_run = run;
        }
        visited.push(id);
        let v = match self.node(id).kind.clone() {
            ExprKind::Empty | ExprKind::Term(_) => false,
            ExprKind::Eps(_) => true,
            ExprKind::Pending | ExprKind::Forward => {
                debug_assert!(
                    false,
                    "nullability queried on an unpatched node; parse() should prevent this"
                );
                false
            }
            ExprKind::Alt(a, b) => {
                let va = self.fix_child(id, a, queue, visited);
                if va {
                    true
                } else {
                    self.fix_child(id, b, queue, visited)
                }
            }
            ExprKind::Cat(a, b) => {
                let va = self.fix_child(id, a, queue, visited);
                if va {
                    self.fix_child(id, b, queue, visited)
                } else {
                    false
                }
            }
            ExprKind::Red(x, _) | ExprKind::Delta(x) => self.fix_child(id, x, queue, visited),
            ExprKind::Ref(_) => unreachable!("resolved"),
        };
        if v {
            self.set_nullable(id, queue);
        }
        self.null_state(id).0
    }

    /// Visits a child and subscribes `parent` to it when the child's value
    /// is still an assumption that might change.
    fn fix_child(
        &mut self,
        parent: NodeId,
        child: NodeId,
        queue: &mut Vec<NodeId>,
        visited: &mut Vec<NodeId>,
    ) -> bool {
        let v = self.fix_visit(child, queue, visited);
        let c = self.resolve(child);
        if !v && !self.null_state(c).1 {
            self.push_dep(c, parent);
        }
        v
    }

    /// Records `parent` in `child`'s dependency list for the current run.
    fn push_dep(&mut self, child: NodeId, parent: NodeId) {
        let run = self.run_label;
        let head = {
            let n = self.null_mut(child);
            if n.deps_run != run {
                // A stale list from an earlier run: abandon it in the pool.
                n.deps_head = NO_LINK;
                n.deps_run = run;
            }
            n.deps_head
        };
        // Cheap de-duplication of immediate re-subscription.
        if head != NO_LINK && self.dep_pool[head as usize].parent == parent {
            return;
        }
        let idx = self.dep_pool.len() as u32;
        self.dep_pool.push(DepEntry { parent, next: head });
        self.null_mut(child).deps_head = idx;
    }

    /// Detaches and returns the head of `id`'s current-run dependency list
    /// (`NO_LINK` if it has none or the list is from an earlier run).
    fn take_deps(&mut self, id: NodeId) -> u32 {
        let run = self.run_label;
        let n = self.null_mut(id);
        if n.deps_run != run {
            return NO_LINK;
        }
        std::mem::replace(&mut n.deps_head, NO_LINK)
    }

    fn set_nullable(&mut self, id: NodeId, queue: &mut Vec<NodeId>) {
        let n = self.null_mut(id);
        if !n.null_value {
            n.null_value = true;
            n.null_definite = true;
            queue.push(id);
        }
    }

    /// Recomputes a node from its children's current values after one of
    /// them became nullable.
    fn fix_recompute(&mut self, id: NodeId, queue: &mut Vec<NodeId>) {
        self.metrics.nullable_calls += 1;
        let id = self.resolve(id);
        if self.null_state(id).0 {
            return;
        }
        let v = match self.node(id).kind.clone() {
            ExprKind::Alt(a, b) => self.val(a) || self.val(b),
            ExprKind::Cat(a, b) => self.val(a) && self.val(b),
            ExprKind::Red(x, _) | ExprKind::Delta(x) => self.val(x),
            _ => return,
        };
        if v {
            self.set_nullable(id, queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompactionMode, ParserConfig};

    fn with_strategy(s: NullStrategy) -> Language {
        Language::new(ParserConfig {
            nullability: s,
            compaction: CompactionMode::None,
            ..ParserConfig::improved()
        })
    }

    fn strategies() -> [NullStrategy; 3] {
        [NullStrategy::Naive, NullStrategy::Worklist, NullStrategy::Labeled]
    }

    #[test]
    fn constants() {
        for s in strategies() {
            let mut lang = with_strategy(s);
            let e = lang.empty_node();
            let eps = lang.eps_node();
            let a = lang.terminal("a");
            let ta = lang.term_node(a);
            assert!(!lang.nullable(e), "{s:?}: ∅ not nullable");
            assert!(lang.nullable(eps), "{s:?}: ε nullable");
            assert!(!lang.nullable(ta), "{s:?}: token not nullable");
        }
    }

    #[test]
    fn alt_and_cat() {
        for s in strategies() {
            let mut lang = with_strategy(s);
            let a = lang.terminal("a");
            let ta = lang.term_node(a);
            let eps = lang.eps_node();
            let u = lang.alt(ta, eps);
            let k1 = lang.cat(ta, eps);
            let k2 = lang.cat(eps, eps);
            assert!(lang.nullable(u), "{s:?}: a ∪ ε nullable");
            assert!(!lang.nullable(k1), "{s:?}: a ◦ ε not nullable");
            assert!(lang.nullable(k2), "{s:?}: ε ◦ ε nullable");
        }
    }

    /// The cyclic grammar `L = (L ◦ c) ∪ c` is not nullable; `S = ε ∪ (c ◦ S)`
    /// is. Both require the fixed point to handle cycles.
    #[test]
    fn cyclic_grammars() {
        for s in strategies() {
            let mut lang = with_strategy(s);
            let c = lang.terminal("c");
            let tc = lang.term_node(c);

            let l = lang.forward();
            let lc = lang.cat(l, tc);
            let lbody = lang.alt(lc, tc);
            lang.define(l, lbody);
            assert!(!lang.nullable(l), "{s:?}: left-recursive L not nullable");

            let st = lang.forward();
            let cs = lang.cat(tc, st);
            let eps = lang.eps_node();
            let sbody = lang.alt(eps, cs);
            lang.define(st, sbody);
            assert!(lang.nullable(st), "{s:?}: ε ∪ (c ◦ S) nullable");
        }
    }

    /// A nullability fact that needs propagation *through* a cycle:
    /// `A = B, B = ε ∪ (A ◦ A)` — A nullable via B.
    #[test]
    fn mutual_recursion() {
        for s in strategies() {
            let mut lang = with_strategy(s);
            let a = lang.forward();
            let b = lang.forward();
            lang.define(a, b);
            let aa = lang.cat(a, a);
            let eps = lang.eps_node();
            let bbody = lang.alt(eps, aa);
            lang.define(b, bbody);
            assert!(lang.nullable(a), "{s:?}");
            assert!(lang.nullable(b), "{s:?}");
        }
    }

    /// The three strategies must agree on randomized grammar graphs.
    #[test]
    fn strategies_agree_on_random_graphs() {
        // Deterministic pseudo-random graph built from a simple LCG so the
        // test needs no external crates here.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..50 {
            let n_nodes = 3 + (rng() % 20) as usize;
            let mut answers: Vec<Vec<bool>> = Vec::new();
            for s in strategies() {
                let mut lang = with_strategy(s);
                let t = lang.terminal("t");
                let tt = lang.term_node(t);
                let eps = lang.eps_node();
                let fwds: Vec<_> = (0..n_nodes).map(|_| lang.forward()).collect();
                // Rebuild the same structure for each strategy by replaying
                // the same RNG stream: stash choices first.
                let choices: Vec<(u32, usize, usize)> = {
                    // Derive choices deterministically from the case index
                    // and node index, not the shared RNG, so all three
                    // strategies see identical graphs.
                    (0..n_nodes)
                        .map(|i| {
                            let h = (_case as u64 * 31 + i as u64).wrapping_mul(0x2545F4914F6CDD1D);
                            (
                                (h >> 60) as u32 % 4,
                                (h as usize >> 8) % n_nodes,
                                (h as usize >> 24) % n_nodes,
                            )
                        })
                        .collect()
                };
                for (i, &(kind, x, y)) in choices.iter().enumerate() {
                    let body = match kind {
                        0 => lang.alt(fwds[x], fwds[y]),
                        1 => lang.cat(fwds[x], fwds[y]),
                        2 => lang.alt(tt, fwds[x]),
                        _ => {
                            let c = lang.cat(tt, fwds[x]);
                            lang.alt(eps, c)
                        }
                    };
                    lang.define(fwds[i], body);
                }
                answers.push(fwds.iter().map(|&f| lang.nullable(f)).collect());
            }
            assert_eq!(answers[0], answers[1], "naive vs worklist");
            assert_eq!(answers[1], answers[2], "worklist vs labeled");
        }
        let _ = rng();
    }

    /// Labeled strategy: the second query over the same region must be O(1)
    /// (far fewer calls), because assumed-not was promoted to definite.
    #[test]
    fn labeled_promotes_assumed_not_nullable() {
        let mut lang = with_strategy(NullStrategy::Labeled);
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);

        assert!(!lang.nullable(l));
        let after_first = lang.metrics().nullable_calls;
        assert!(!lang.nullable(l));
        let after_second = lang.metrics().nullable_calls;
        assert_eq!(after_second - after_first, 1, "promoted node answers in one call");
    }

    /// Worklist strategy re-runs the fixed point over still-assumed nodes.
    #[test]
    fn worklist_does_not_promote() {
        let mut lang = with_strategy(NullStrategy::Worklist);
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);

        assert!(!lang.nullable(l));
        let after_first = lang.metrics().nullable_calls;
        assert!(!lang.nullable(l));
        let after_second = lang.metrics().nullable_calls;
        assert!(after_second - after_first > 1, "worklist must revisit assumed-not-nullable nodes");
    }

    #[test]
    fn naive_costs_more_calls_than_labeled() {
        let build = |lang: &mut Language| {
            let c = lang.terminal("c");
            let tc = lang.term_node(c);
            let l = lang.forward();
            let lc = lang.cat(l, tc);
            let body = lang.alt(lc, tc);
            lang.define(l, body);
            l
        };
        let mut naive = with_strategy(NullStrategy::Naive);
        let l1 = build(&mut naive);
        let mut labeled = with_strategy(NullStrategy::Labeled);
        let l2 = build(&mut labeled);
        for _ in 0..10 {
            assert!(!naive.nullable(l1));
            assert!(!labeled.nullable(l2));
        }
        assert!(
            naive.metrics().nullable_calls > labeled.metrics().nullable_calls,
            "naive {} vs labeled {}",
            naive.metrics().nullable_calls,
            labeled.metrics().nullable_calls
        );
    }

    /// After an epoch reset, promoted lattice values must be forgotten: the
    /// same query re-runs the fixed point and answers identically.
    #[test]
    fn epoch_reset_forgets_promotions() {
        let mut lang = with_strategy(NullStrategy::Labeled);
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);

        let tok = lang.token(c, "c");
        assert!(lang.recognize(l, std::slice::from_ref(&tok)).unwrap());
        let epoch_before = lang.epoch();
        lang.reset();
        assert_eq!(lang.epoch(), epoch_before + 1);
        // The promoted "L not nullable" fact must have been invalidated, so
        // this query starts a fresh run (and still answers false).
        assert!(!lang.nullable(l));
        assert!(lang.metrics().nullable_runs > 0, "reset must force a fresh run");
    }
}
