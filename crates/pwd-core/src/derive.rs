//! The derivative (`derive`), the outer parse loop (`parse`), and AST
//! extraction (`parse-null`) — the paper's four core functions, minus
//! `nullable?` which lives in [`crate::nullable`].
//!
//! `derive` follows §2.5.2: before recurring into children it allocates a
//! placeholder node of the correct shape, memoizes it, and patches the
//! children afterwards, so cyclic grammars derive correctly. Compaction, if
//! configured on-construction, happens at patch time via the smart
//! constructors in [`crate::compact`] — and punts when a child is still
//! pending, exactly as §4.3.3 prescribes.

use crate::config::{CompactionMode, MemoKeying, ParseMode};
use crate::error::PwdError;
use crate::expr::{ExprKind, Language, NodeId};
use crate::token::{DeriveKey, Token};
use pwd_forest::{CanonError, EnumLimits, ForestId, ForestNode, ParseForest, Tree, TreeCount};

impl Language {
    // ------------------------------------------------------------------
    // Public parse API
    // ------------------------------------------------------------------

    /// Recognizes `tokens` against the language rooted at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`PwdError::UndefinedNonterminal`] for incomplete grammars
    /// and [`PwdError::NodeBudgetExceeded`] if the configured node budget
    /// trips. A simple non-match is `Ok(false)`, not an error.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_core::Language;
    /// # fn main() -> Result<(), pwd_core::PwdError> {
    /// let mut lang = Language::default();
    /// let a = lang.terminal("a");
    /// let ta = lang.term_node(a);
    /// let s = lang.star(ta);
    /// let tok = lang.token(a, "a");
    /// assert!(lang.recognize(s, &[tok.clone(), tok])?);
    /// assert!(lang.recognize(s, &[])?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn recognize(&mut self, start: NodeId, tokens: &[Token]) -> Result<bool, PwdError> {
        match self.run_derivatives(start, tokens)? {
            Err(_) => Ok(false),
            Ok(final_node) => Ok(self.accept_of(final_node)),
        }
    }

    /// Parses `tokens` and returns the root of the shared parse forest.
    ///
    /// # Errors
    ///
    /// [`PwdError::Rejected`] when the input is not in the language, plus
    /// the grammar/budget errors of [`recognize`](Language::recognize).
    pub fn parse_forest(&mut self, start: NodeId, tokens: &[Token]) -> Result<ForestId, PwdError> {
        match self.run_derivatives(start, tokens)? {
            Err(pos) => Err(PwdError::Rejected { position: pos, token: tokens.get(pos).cloned() }),
            Ok(final_node) => {
                if !self.nullable(final_node) {
                    return Err(PwdError::Rejected { position: tokens.len(), token: None });
                }
                let span = self.obs_start();
                let forest = self.parse_null(final_node);
                self.obs_end(pwd_obs::Phase::Forest, span);
                Ok(forest)
            }
        }
    }

    /// Parses `tokens` and enumerates up to `limits.max_trees` parse trees.
    ///
    /// # Errors
    ///
    /// Same as [`parse_forest`](Language::parse_forest).
    pub fn parse_trees(
        &mut self,
        start: NodeId,
        tokens: &[Token],
        limits: EnumLimits,
    ) -> Result<Vec<Tree>, PwdError> {
        let f = self.parse_forest(start, tokens)?;
        Ok(self.forests.trees(f, limits))
    }

    /// Parses `tokens` and returns the unique parse tree, or `None` if the
    /// parse is ambiguous.
    ///
    /// # Errors
    ///
    /// Same as [`parse_forest`](Language::parse_forest).
    pub fn parse_unique(
        &mut self,
        start: NodeId,
        tokens: &[Token],
    ) -> Result<Option<Tree>, PwdError> {
        let f = self.parse_forest(start, tokens)?;
        let mut ts = self.forests.trees(f, EnumLimits { max_trees: 2, max_depth: usize::MAX });
        if ts.len() == 1 {
            Ok(Some(ts.swap_remove(0)))
        } else {
            Ok(None)
        }
    }

    /// Parses `tokens` and counts the parse trees — exactly, without
    /// enumerating: [`TreeCount::Finite`] up to `u128`, an explicit
    /// [`TreeCount::Overflow`] beyond, [`TreeCount::Infinite`] for
    /// productive forest cycles.
    ///
    /// # Errors
    ///
    /// Same as [`parse_forest`](Language::parse_forest).
    pub fn count_parses(&mut self, start: NodeId, tokens: &[Token]) -> Result<TreeCount, PwdError> {
        let f = self.parse_forest(start, tokens)?;
        Ok(self.forests.count(f))
    }

    /// Enumerates trees out of a previously returned forest.
    pub fn trees_of(&self, forest: ForestId, limits: EnumLimits) -> Vec<Tree> {
        self.forests.trees(forest, limits)
    }

    /// Counts trees in a previously returned forest.
    pub fn count_of(&self, forest: ForestId) -> TreeCount {
        self.forests.count(forest)
    }

    /// The shared forest arena this language parses into. Forest ids
    /// returned by [`parse_forest`](Language::parse_forest) index into it.
    pub fn forest_store(&self) -> &pwd_forest::Forest {
        &self.forests
    }

    /// Normalizes a previously returned forest into an owned, canonical
    /// [`ParseForest`] — the cross-backend comparable form (see
    /// [`pwd_forest::Forest::extract_canonical`]).
    ///
    /// # Errors
    ///
    /// [`CanonError::Opaque`] for forests mapping an opaque
    /// [`Reduce`](crate::Reduce) function over a highly ambiguous
    /// subforest; grammars compiled from a CFG use structured labels and
    /// always canonicalize.
    pub fn canonical_forest(&self, forest: ForestId) -> Result<ParseForest, CanonError> {
        self.forests.extract_canonical(forest)
    }

    /// Does a previously returned forest contain at least one finite tree?
    pub fn has_tree(&self, forest: ForestId) -> bool {
        self.forests.has_tree(forest)
    }

    /// The derivative of the whole language by a token sequence:
    /// `D_w(L)`. Returns the final grammar node (the canonical `∅` node if
    /// the derivative collapsed early).
    ///
    /// # Errors
    ///
    /// Same grammar/budget errors as [`recognize`](Language::recognize).
    pub fn derivative(&mut self, start: NodeId, tokens: &[Token]) -> Result<NodeId, PwdError> {
        match self.run_derivatives(start, tokens)? {
            Ok(n) => Ok(n),
            Err(_) => Ok(self.empty_node()),
        }
    }

    // ------------------------------------------------------------------
    // The outer loop (the paper's `parse`)
    // ------------------------------------------------------------------

    /// Runs the per-token derivative loop. `Ok(Err(i))` means the derivative
    /// became syntactically `∅` after consuming token `i` (early reject).
    fn run_derivatives(
        &mut self,
        start: NodeId,
        tokens: &[Token],
    ) -> Result<Result<NodeId, usize>, PwdError> {
        self.validate(start)?;
        self.in_parse = false;
        let mut cur = start;
        // §4.3.1: apply the right-child rules (and the rest of the rule set)
        // to the initial grammar once — cached, and run *before* the initial
        // boundary is recorded so the compacted copy persists across resets.
        if self.config.prepass_right_children && self.config.compaction != CompactionMode::None {
            cur = self.prepass_root(cur);
        }
        self.mark_initial();
        if self.config.naming {
            self.assign_initial_names(cur);
        }
        let pruning = self.config.compaction != CompactionMode::None;
        if pruning {
            // Settle productivity for the initial grammar (and prepass
            // output) before the per-token passes build on it.
            self.prune_empty(0);
        }
        self.in_parse = true;
        // The lazy-automaton walk state: the interned state of `cur`, when
        // known. Interning the start node up front means a warm table serves
        // from token 0.
        let auto_active = self.automaton_active();
        let mut cur_state = if auto_active { self.auto_intern(cur) } else { None };
        for (i, tok) in tokens.iter().enumerate() {
            debug_assert_eq!(
                tok.lexeme(),
                self.interner.token_by_key(tok.key()).lexeme(),
                "token was interned by a different Language"
            );
            // Tier three: one dense-row lookup consumes the token — no
            // derive call, no memo probe, no hashing, no allocation.
            if let Some(st) = cur_state {
                if let Some((next, ns, dead)) = self.auto_try_step(st, tok.term()) {
                    if dead {
                        self.in_parse = false;
                        return Ok(Err(i));
                    }
                    cur = next;
                    cur_state = Some(ns);
                    continue;
                }
            }
            let generation_start = self.nodes.len();
            let span = self.obs_start();
            cur = self.derive_node(cur, tok);
            self.obs_end(pwd_obs::Phase::Derive, span);
            if self.config.compaction == CompactionMode::SeparatePass {
                let span = self.obs_start();
                cur = self.compact_pass(cur);
                self.obs_end(pwd_obs::Phase::Compact, span);
            }
            if pruning {
                let span = self.obs_start();
                self.prune_empty(generation_start);
                self.obs_end(pwd_obs::Phase::Compact, span);
            }
            if self.budget_hit {
                self.in_parse = false;
                return Err(PwdError::NodeBudgetExceeded {
                    limit: self.config.max_nodes.unwrap_or(0),
                    at_token: i,
                });
            }
            if auto_active {
                // Interpreted step under an active automaton: intern the new
                // derivative (post-prune, so its structure is final), record
                // the explored transition, and canonicalize the walk onto
                // the state's root so the next step reuses its caches.
                self.metrics.auto_fallbacks += 1;
                let ns = self.auto_intern(cur);
                if let (Some(from), Some(to)) = (cur_state, ns) {
                    self.auto_record(from, tok.term(), to);
                }
                if let Some(ns) = ns {
                    cur = self.auto.roots[ns as usize];
                }
                cur_state = ns;
            }
            if self.is_empty_node(cur) {
                self.in_parse = false;
                return Ok(Err(i));
            }
        }
        self.in_parse = false;
        Ok(Ok(cur))
    }

    // ------------------------------------------------------------------
    // derive
    // ------------------------------------------------------------------

    /// Is the derive memo keyed by terminal class outright? Only sound when
    /// no lexeme can reach the derivative: recognize mode (no forests) with
    /// Definition-5 naming off (names embed token values).
    #[inline]
    fn class_keyed(&self) -> bool {
        self.config.keying == MemoKeying::ByClass
            && self.config.mode == ParseMode::Recognize
            && !self.config.naming
    }

    /// Are the class-template slots active? In parse mode they carry the
    /// whole class-sharing scheme (memo entries stay value-keyed — forests
    /// embed lexemes); in recognize mode they back the class-keyed memo
    /// with an eviction-proof second level (the single-entry strategy
    /// otherwise thrashes when successive tokens of different classes
    /// revisit the same grammar node).
    #[inline]
    fn templates_enabled(&self) -> bool {
        self.config.keying == MemoKeying::ByClass && !self.config.naming
    }

    /// The memo key identifying `tok` under the configured keying.
    #[inline]
    fn derive_key(&self, tok: &Token) -> DeriveKey {
        if self.class_keyed() {
            DeriveKey::class(tok.term())
        } else {
            DeriveKey::value(tok.key())
        }
    }

    /// `D_tok(id)` with memoize-before-recurse cycle handling.
    pub(crate) fn derive_node(&mut self, id: NodeId, tok: &Token) -> NodeId {
        self.derive_node_t(id, tok).0
    }

    /// `D_tok(id)` plus its lexeme *taint*: does the derivative embed an `ε`
    /// leaf of `tok` (and therefore its lexeme)? Untainted derivatives are a
    /// pure function of `(id, tok.term())`, which is what lets the class
    /// templates share them verbatim with other lexemes of the class. Taint
    /// is over-approximated (any derived child's taint propagates even if
    /// compaction dropped that child; cycles and evicted slots read as
    /// tainted), which costs sharing, never soundness.
    fn derive_node_t(&mut self, id: NodeId, tok: &Token) -> (NodeId, bool) {
        self.metrics.derive_calls += 1;
        let id = self.resolve(id);
        let key = self.derive_key(tok);
        let templates = self.templates_enabled();
        if let Some(r) = self.memo_get(id, key) {
            // Taint only exists in parse mode (recognize builds no lexeme
            // -carrying leaves, so its derivatives are never tainted — and
            // skipping the row lookup keeps the class-keyed hit path to the
            // memo read alone). In parse mode, a mid-derivation placeholder
            // (cycle) or an absent template reads as tainted.
            let taint = templates
                && self.config.mode == ParseMode::Parse
                && self.template_taint(id, tok.term());
            return (r, taint);
        }
        if templates {
            match self.template_get(id, tok.term()) {
                // A lexeme-independent derivative of this class exists:
                // share it verbatim, skipping the recursive derive.
                Some((val, false)) => {
                    self.metrics.template_shares += 1;
                    self.memo_put(id, key, val);
                    return (val, false);
                }
                // Lexeme-dependent: fall through and re-derive. Untainted
                // subgraphs below still share, so allocation is confined to
                // the patch path reaching the fresh `ε` leaves.
                Some((_, true)) => self.metrics.template_instantiations += 1,
                None => {}
            }
        }
        self.metrics.derive_uncached += 1;
        let compact = self.config.compaction == CompactionMode::OnConstruction;
        let (r, taint) = match self.node(id).kind.clone() {
            // D_c(∅) = ∅, D_c(ε) = ∅, D_c(δ(L)) = ∅
            ExprKind::Empty | ExprKind::Eps(_) | ExprKind::Delta(_) => {
                let r = self.derived_empty(id, tok);
                self.memo_put(id, key, r);
                (r, false)
            }
            // D_c(c') = ε_c if c = c', else ∅
            ExprKind::Term(t) => {
                let (r, taint) = if t == tok.term() {
                    // The parse-mode ε leaf is the one lexeme carrier.
                    (self.derived_eps(id, tok), self.config.mode == ParseMode::Parse)
                } else {
                    (self.derived_empty(id, tok), false)
                };
                self.memo_put(id, key, r);
                (r, taint)
            }
            // D_c(L₁ ∪ L₂) = D_c(L₁) ∪ D_c(L₂)
            ExprKind::Alt(a, b) => {
                let ph = self.placeholder(id, tok, false);
                self.memo_put(id, key, ph);
                let (da, ta) = self.derive_node_t(a, tok);
                let (db, tb) = self.derive_node_t(b, tok);
                let built = self.alt_built(da, db, compact);
                self.patch(ph, built, ExprKind::Alt(da, db));
                (ph, ta || tb)
            }
            ExprKind::Cat(a, b) => {
                if self.nullable(a) {
                    // D_c(L₁ ◦ L₂) with ε ∈ L₁ (Rule 5b names the ∪ node).
                    let ph_alt = self.placeholder(id, tok, true);
                    self.memo_put(id, key, ph_alt);
                    let ph_cat = self.placeholder(id, tok, false);
                    let (da, ta) = self.derive_node_t(a, tok);
                    let (db, tb) = self.derive_node_t(b, tok);
                    let built_cat = self.cat_built_for_derive(da, b, compact);
                    self.patch(ph_cat, built_cat, ExprKind::Cat(da, b));
                    let second = match self.config.mode {
                        // Recognizer (Figure 2): … ∪ D_c(L₂)
                        ParseMode::Recognize => db,
                        // Parser (Might et al. 2011): … ∪ (δ(L₁) ◦ D_c(L₂))
                        ParseMode::Parse => {
                            let dl = if compact {
                                self.delta(a)
                            } else {
                                let built = self.delta_built(a, false);
                                self.build(built)
                            };
                            let built = self.cat_built_for_derive(dl, db, compact);
                            self.build(built)
                        }
                    };
                    let built_alt = self.alt_built(ph_cat, second, compact);
                    self.patch(ph_alt, built_alt, ExprKind::Alt(ph_cat, second));
                    (ph_alt, ta || tb)
                } else {
                    // D_c(L₁ ◦ L₂) = D_c(L₁) ◦ L₂ when ε ∉ L₁.
                    let ph = self.placeholder(id, tok, false);
                    self.memo_put(id, key, ph);
                    let (da, ta) = self.derive_node_t(a, tok);
                    let built = self.cat_built_for_derive(da, b, compact);
                    self.patch(ph, built, ExprKind::Cat(da, b));
                    (ph, ta)
                }
            }
            // D_c(L ↪ f) = D_c(L) ↪ f
            ExprKind::Red(x, f) => {
                let ph = self.placeholder(id, tok, false);
                self.memo_put(id, key, ph);
                let (dx, tx) = self.derive_node_t(x, tok);
                let built = self.red_built(dx, f.clone(), compact);
                self.patch(ph, built, ExprKind::Red(dx, f));
                (ph, tx)
            }
            ExprKind::Forward => {
                unreachable!("validate() rejects grammars with undefined nonterminals")
            }
            ExprKind::Pending => {
                unreachable!("derive is never called on a node of the current generation")
            }
            ExprKind::Ref(_) => unreachable!("resolved"),
        };
        if templates {
            self.template_put(id, tok.term(), r, taint);
        }
        (r, taint)
    }

    /// `cat_built` with the derive-time fuel; kept separate so the fuel
    /// constant stays private to the compaction module.
    fn cat_built_for_derive(
        &mut self,
        a: NodeId,
        b: NodeId,
        compact: bool,
    ) -> crate::compact::Built {
        self.cat_built(a, b, compact, 64)
    }

    /// A pending placeholder for a node being derived, named per Definition
    /// 5 when naming is enabled (`bullet` selects Rule 5b vs 5c).
    fn placeholder(&mut self, parent: NodeId, tok: &Token, bullet: bool) -> NodeId {
        let ph = self.alloc(ExprKind::Pending);
        if self.config.naming {
            if let Some(name) = self.names.get(parent).cloned() {
                let new_name =
                    if bullet { name.extend_bullet(tok.key()) } else { name.extend(tok.key()) };
                self.names.assign(ph, new_name);
            }
        }
        ph
    }

    /// The `∅` produced by a derivative: canonical normally, or a fresh
    /// named node under the Definition-5 instrumentation (the paper's
    /// Figure 5 counts `∅` nodes like any other constructed node).
    fn derived_empty(&mut self, parent: NodeId, tok: &Token) -> NodeId {
        if self.config.naming {
            let ph = self.placeholder(parent, tok, false);
            self.patch(ph, crate::compact::Built::New(ExprKind::Empty), ExprKind::Empty);
            ph
        } else {
            self.empty_node()
        }
    }

    /// The `ε` produced by deriving a matching token: carries the token's
    /// leaf forest in parse mode.
    fn derived_eps(&mut self, parent: NodeId, tok: &Token) -> NodeId {
        match self.config.mode {
            ParseMode::Parse => {
                let leaf = pwd_forest::Leaf {
                    kind: self.interner.term_name_arc(tok.term()),
                    text: tok.lexeme.clone(),
                };
                let f = self.forests.alloc(ForestNode::Leaf(leaf));
                let ph = self.placeholder(parent, tok, false);
                self.patch(ph, crate::compact::Built::New(ExprKind::Eps(f)), ExprKind::Eps(f));
                ph
            }
            ParseMode::Recognize => {
                if self.config.naming {
                    let f = self.forest_eps_tree; // canonical ε-tree forest
                    let ph = self.placeholder(parent, tok, false);
                    self.patch(ph, crate::compact::Built::New(ExprKind::Eps(f)), ExprKind::Eps(f));
                    ph
                } else {
                    self.eps_node()
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // parse-null
    // ------------------------------------------------------------------

    /// The null-parse forest of `id`: the ASTs it assigns to the empty word.
    /// Memoized per node; cyclic grammars produce cyclic forests, via the
    /// same placeholder discipline as `derive`.
    pub(crate) fn parse_null(&mut self, id: NodeId) -> ForestId {
        self.metrics.parse_null_calls += 1;
        let id = self.resolve(id);
        if let Some(f) = self.null_parse_get(id) {
            return f;
        }
        if !self.nullable(id) {
            let f = self.forest_nothing; // canonical no-parses forest
            self.null_parse_set(id, f);
            return f;
        }
        match self.node(id).kind.clone() {
            ExprKind::Eps(s) => {
                self.null_parse_set(id, s);
                s
            }
            ExprKind::Alt(a, b) => {
                let ph = self.forests.reserve();
                self.null_parse_set(id, ph);
                let pa = self.parse_null(a);
                let pb = self.parse_null(b);
                self.forests.set(ph, ForestNode::Amb(vec![pa, pb]));
                ph
            }
            ExprKind::Cat(a, b) => {
                let ph = self.forests.reserve();
                self.null_parse_set(id, ph);
                let pa = self.parse_null(a);
                let pb = self.parse_null(b);
                self.forests.set(ph, ForestNode::Pair(pa, pb));
                ph
            }
            ExprKind::Red(x, f) => {
                let ph = self.forests.reserve();
                self.null_parse_set(id, ph);
                let px = self.parse_null(x);
                self.forests.set(ph, ForestNode::Map(f, px));
                ph
            }
            ExprKind::Delta(x) => {
                let ph = self.forests.reserve();
                self.null_parse_set(id, ph);
                let px = self.parse_null(x);
                self.forests.set(ph, ForestNode::Amb(vec![px]));
                ph
            }
            // Not nullable, so handled by the guard above.
            ExprKind::Empty | ExprKind::Term(_) => unreachable!("not nullable"),
            ExprKind::Forward | ExprKind::Pending => {
                unreachable!("parse_null runs on a fully patched, validated graph")
            }
            ExprKind::Ref(_) => unreachable!("resolved"),
        }
    }

    // ------------------------------------------------------------------
    // Definition-5 naming support
    // ------------------------------------------------------------------

    /// Rule 5a: gives every node reachable from `root` a fresh base symbol.
    fn assign_initial_names(&mut self, root: NodeId) {
        let mut stack = vec![root];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            if !self.names.has_base(id) {
                let label = self
                    .node(id)
                    .label
                    .as_deref()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("N{}", self.names.base_count()));
                self.names.assign_base(id, label);
            }
            match self.node(id).kind.clone() {
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                ExprKind::Red(x, _) | ExprKind::Delta(x) => stack.push(x),
                _ => {}
            }
        }
    }

    /// Renders the Definition-5 name of a node, e.g. `Mc1•c2c3`.
    pub fn node_name(&self, id: NodeId) -> Option<String> {
        let name = self.names.get(id)?;
        Some(self.names.render(name, |k| self.interner.token_by_key(k).lexeme().to_string()))
    }

    /// Definition-5 statistics over every named node: `(named_nodes,
    /// distinct_names, max_bullets_per_name)`.
    pub fn name_stats(&self) -> (usize, usize, usize) {
        let mut distinct = std::collections::HashSet::new();
        let mut max_bullets = 0;
        let mut total = 0;
        for (_, name) in self.names.iter() {
            total += 1;
            max_bullets = max_bullets.max(name.bullets());
            distinct.insert((name.base, name.syms.clone(), name.bullet));
        }
        (total, distinct.len(), max_bullets)
    }

    /// All rendered node names (diagnostics and the Figure-5 regenerator).
    pub fn all_node_names(&self) -> Vec<(NodeId, String)> {
        let mut out: Vec<(NodeId, String)> = self
            .names
            .iter()
            .map(|(id, name)| {
                (
                    *id,
                    self.names.render(name, |k| self.interner.token_by_key(k).lexeme().to_string()),
                )
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}
