//! Tokens and interning.
//!
//! Terminals are interned to [`TermId`]s and whole tokens (terminal kind plus
//! lexeme) to [`TokKey`]s. Keying the `derive` memo tables by token *value*
//! (not input position) is what gives the paper's Figure 10–12 cache
//! dynamics: a token that recurs in the input can hit a full-hash memo entry
//! created at an earlier position, while the forgetful single-entry cache may
//! have evicted it.
//!
//! [`DeriveKey`] is the unit actually stored in the memo slots: depending on
//! the engine's [`MemoKeying`](crate::MemoKeying) it wraps either a [`TokKey`]
//! (the paper's value keying) or a [`TermId`] (class keying, which lets all
//! lexemes of one terminal share a recognize-mode derivative).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Interned identifier of a terminal (token kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index of this terminal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned identifier of a token value `(TermId, lexeme)`.
///
/// Two tokens with the same kind and lexeme — even at different input
/// positions — intern to the same key, and therefore the same memoized
/// derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokKey(pub(crate) u32);

impl TokKey {
    /// The raw index of this token value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The key a `derive` memo entry is stored under.
///
/// A parse uses one keying uniformly (it is fixed by the engine
/// configuration before the first token), so the wrapped `u32` is never
/// ambiguous: under value keying it is a [`TokKey`] index, under class
/// keying a [`TermId`] index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DeriveKey(u32);

impl DeriveKey {
    /// Value keying: one memo entry per distinct `(kind, lexeme)`.
    pub(crate) fn value(key: TokKey) -> DeriveKey {
        DeriveKey(key.0)
    }

    /// Class keying: one memo entry per terminal kind, shared by every
    /// lexeme of that kind.
    pub(crate) fn class(term: TermId) -> DeriveKey {
        DeriveKey(term.0)
    }
}

/// A concrete input token: a terminal kind plus its lexeme.
///
/// # Examples
///
/// ```
/// use pwd_core::Language;
/// let mut lang = Language::default();
/// let num = lang.terminal("NUM");
/// let tok = lang.token(num, "42");
/// assert_eq!(tok.lexeme(), "42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    pub(crate) term: TermId,
    pub(crate) key: TokKey,
    pub(crate) lexeme: Arc<str>,
}

impl Token {
    /// The terminal kind of this token.
    pub fn term(&self) -> TermId {
        self.term
    }

    /// The interned key of this token value.
    pub fn key(&self) -> TokKey {
        self.key
    }

    /// The lexeme text.
    pub fn lexeme(&self) -> &str {
        &self.lexeme
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexeme)
    }
}

/// Interner for terminal names and token values.
///
/// The token table is nested per terminal (`tok_keys[term] : lexeme → key`)
/// so the hot path — re-interning a token value already seen — is a single
/// `&str` lookup with **no allocation**; this is the memo boundary the
/// streaming lexer feeds borrowed text into, once per token.
#[derive(Debug, Default, Clone)]
pub(crate) struct Interner {
    term_names: Vec<Arc<str>>,
    term_ids: HashMap<Arc<str>, TermId>,
    /// Per-terminal lexeme → key maps (indexed by `TermId`).
    tok_keys: Vec<HashMap<Arc<str>, TokKey>>,
    toks: Vec<Token>,
}

impl Interner {
    pub(crate) fn terminal(&mut self, name: &str) -> TermId {
        if let Some(&id) = self.term_ids.get(name) {
            return id;
        }
        let rc: Arc<str> = Arc::from(name);
        let id = TermId(self.term_names.len() as u32);
        self.term_names.push(rc.clone());
        self.term_ids.insert(rc, id);
        self.tok_keys.push(HashMap::new());
        id
    }

    pub(crate) fn term_name(&self, id: TermId) -> &str {
        &self.term_names[id.0 as usize]
    }

    /// The interned (shared) name of a terminal — the allocation-free way
    /// to stamp forest leaves with their kind.
    pub(crate) fn term_name_arc(&self, id: TermId) -> Arc<str> {
        self.term_names[id.0 as usize].clone()
    }

    pub(crate) fn term_count(&self) -> usize {
        self.term_names.len()
    }

    pub(crate) fn token(&mut self, term: TermId, lexeme: &str) -> Token {
        assert!(
            (term.0 as usize) < self.term_names.len(),
            "terminal {term:?} does not belong to this language"
        );
        // Hit path: borrow-only lookup, no Arc allocated.
        if let Some(&key) = self.tok_keys[term.0 as usize].get(lexeme) {
            return self.toks[key.0 as usize].clone();
        }
        let rc: Arc<str> = Arc::from(lexeme);
        let key = TokKey(self.toks.len() as u32);
        let tok = Token { term, key, lexeme: rc.clone() };
        self.tok_keys[term.0 as usize].insert(rc, key);
        self.toks.push(tok.clone());
        tok
    }

    pub(crate) fn tok_count(&self) -> usize {
        self.toks.len()
    }

    pub(crate) fn token_by_key(&self, key: TokKey) -> &Token {
        &self.toks[key.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_deduplicated() {
        let mut i = Interner::default();
        let a = i.terminal("NUM");
        let b = i.terminal("NUM");
        let c = i.terminal("ID");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.term_name(a), "NUM");
        assert_eq!(i.term_count(), 2);
    }

    #[test]
    fn tokens_intern_by_value() {
        let mut i = Interner::default();
        let num = i.terminal("NUM");
        let id = i.terminal("ID");
        let a = i.token(num, "42");
        let b = i.token(num, "42");
        let c = i.token(num, "43");
        let d = i.token(id, "42");
        assert_eq!(a.key(), b.key(), "same kind+lexeme interns to same key");
        assert_ne!(a.key(), c.key(), "different lexeme, different key");
        assert_ne!(a.key(), d.key(), "different kind, different key");
        assert_eq!(i.tok_count(), 3);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_terminal_panics() {
        let mut i = Interner::default();
        i.token(TermId(7), "x");
    }

    #[test]
    fn token_display_is_lexeme() {
        let mut i = Interner::default();
        let num = i.terminal("NUM");
        let t = i.token(num, "99");
        assert_eq!(t.to_string(), "99");
    }
}
