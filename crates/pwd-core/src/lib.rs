//! Parsing with derivatives, made cubic and fast.
//!
//! This crate is the primary contribution of the `derp` reproduction of
//! *On the Complexity and Performance of Parsing with Derivatives*
//! (Adams, Hollenbeck & Might, PLDI 2016). It implements parsing with
//! derivatives (PWD) for arbitrary context-free grammars — including left
//! recursion and ambiguity — with the paper's three algorithmic
//! improvements, each independently switchable for ablation:
//!
//! * **Accelerated fixed points** for `nullable?` (§4.2) —
//!   [`NullStrategy`];
//! * **Improved compaction** applied locally at node-construction time
//!   (§4.3), including the associativity-canonicalization and
//!   reduction-floating rules — [`CompactionMode`];
//! * **Single-entry memoization** of `derive` stored in node fields instead
//!   of hash tables (§4.4) — [`MemoStrategy`].
//!
//! Beyond the paper, the memo can be keyed by terminal *class* instead of
//! token value ([`MemoKeying`]), sharing derivatives across distinct lexemes
//! — the difference between all-miss and all-hit caching on identifier-heavy
//! inputs — and recognize-mode derivatives can additionally be compiled into
//! a lazy transition-table automaton ([`AutomatonMode`]), making the
//! steady-state recognize loop a dense table walk with no graph
//! construction, memo probes, or hashing per token.
//!
//! It also carries the §3 complexity instrumentation: Definition-5 node
//! naming, node-census metrics, and the recognizer-form derivative used by
//! the cubic-bound proof.
//!
//! # Quick start
//!
//! The paper's running example, the left-recursive `L = (L ◦ L) ∪ c`:
//!
//! ```
//! use pwd_core::{EnumLimits, Language, TreeCount};
//!
//! # fn main() -> Result<(), pwd_core::PwdError> {
//! let mut lang = Language::default();
//! let c = lang.terminal("c");
//! let tc = lang.term_node(c);
//! let l = lang.forward();
//! let ll = lang.cat(l, l);
//! let body = lang.alt(ll, tc);
//! lang.define(l, body);
//!
//! let tok = lang.token(c, "c");
//! let input = vec![tok; 4];
//! assert!(lang.recognize(l, &input)?);
//!
//! // Highly ambiguous: 5 binary trees over 4 leaves (Catalan number C₃).
//! lang.reset();
//! assert_eq!(lang.count_parses(l, &input)?, TreeCount::Finite(5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod compact;
mod config;
mod derive;
mod dot;
mod error;
mod expr;
mod memo;
mod metrics;
mod names;
mod nullable;
mod obs;
mod prune;
mod session;
mod token;

pub use automaton::{AutomatonStats, StateSignature};
pub use config::{
    AutomatonMode, CompactionMode, MemoKeying, MemoStrategy, NullStrategy, ParseMode, ParserConfig,
    RecoveryBudget, DEFAULT_AUTOMATON_MAX_ROWS,
};
pub use error::PwdError;
pub use expr::{Language, NodeId};
pub use metrics::Metrics;
pub use names::Name;
pub use pwd_forest::Reduce;
pub use pwd_forest::{
    CanonError, EnumLimits, Forest, ForestId, ForestNode, ForestSummary, Leaf, ParseForest, Tree,
    TreeCount,
};
pub use pwd_obs::{Histogram, Phase, PhaseStats, TraceEvent};
pub use session::{FeedOutcome, ParseSession, SessionCheckpoint, SessionState};
pub use token::{TermId, TokKey, Token};

// Compile-time guarantee that the engine is thread-safe: a compiled
// `Language` (and everything reachable from it — reductions, tokens, parse
// trees) can be shared behind `Arc` and moved into worker threads. The
// serving layer (`pwd-serve`) builds its compiled-grammar cache and session
// pools on exactly this property, so losing it (e.g. by reintroducing an
// `Rc` in a node payload) must fail the build, not a test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Language>();
    assert_send_sync::<Token>();
    assert_send_sync::<Reduce>();
    assert_send_sync::<Tree>();
    assert_send_sync::<PwdError>();
    assert_send_sync::<Metrics>();
};
