//! Compaction (§4.3): reduction rules over grammar nodes.
//!
//! All node construction funnels through the `*_built` smart constructors in
//! this module. When compaction is active they apply, locally and without
//! iterating to a fixed point, the paper's rule set:
//!
//! ```text
//! ∅ ∪ p ⇒ p                       p ∪ ∅ ⇒ p
//! ∅ ◦ p ⇒ ∅                       ε_s ◦ p ⇒ p ↪ λu.(s,u)
//! ε_s ↪ f ⇒ ε_{f s}               (p ↪ f) ↪ g ⇒ p ↪ (g ∘ f)
//! ∅ ↪ f ⇒ ∅                       ε_s1 ∪ ε_s2 ⇒ ε_{s1 ∪ s2}      (new, §4.3)
//! (p1 ◦ p2) ◦ p3 ⇒ (p1 ◦ (p2 ◦ p3)) ↪ reassoc                    (§4.3.2)
//! (p1 ↪ f) ◦ p2 ⇒ (p1 ◦ p2) ↪ map-first f                        (§4.3.2)
//! p ◦ ε_s ⇒ p ↪ λu.(u,s)          p ◦ ∅ ⇒ ∅                      (§4.3.1, initial grammar only)
//! p1 ◦ (p2 ↪ f) ⇒ (p1 ◦ p2) ↪ map-second f                       (§4.3.1, initial grammar only)
//! ```
//!
//! Children that are still [`Pending`](crate::expr::ExprKind::Pending) (a
//! cycle mid-derivation) or [`Forward`](crate::expr::ExprKind::Forward)
//! (undefined) are treated as opaque, exactly as §4.3.3 prescribes: "if
//! inspecting a child would result in a cycle, `derive` does not attempt to
//! compact".

use crate::config::CompactionMode;
use crate::expr::{ExprKind, Language, NodeId};
use pwd_forest::{ForestNode, Reduce};
use std::collections::HashMap;

/// Fuel bound on the reassociation rule's recursion, which protects against
/// pathological left-spine cycles built through `Ref` chains. Beyond the
/// fuel, construction falls back to an uncompacted node (always sound).
const CAT_FUEL: u32 = 64;

/// Result of smart construction: either a brand-new kind to allocate/patch,
/// or an existing node to reuse.
#[derive(Debug, Clone)]
pub(crate) enum Built {
    New(ExprKind),
    Reuse(NodeId),
}

impl Language {
    fn construction_compacts(&self) -> bool {
        self.config.compaction == CompactionMode::OnConstruction
    }

    /// May the §4.3.1 right-child rules fire right now? During parsing they
    /// are unnecessary (Theorem 10) and the improved configuration skips
    /// them; the original configuration applied them in every pass.
    fn allow_right_rules(&self) -> bool {
        !self.in_parse || !self.config.prepass_right_children
    }

    /// Materializes a [`Built`], either reusing or allocating. (Freshly
    /// allocated nodes start with stale epoch stamps, so their nullability
    /// defaults are derived lazily from the kind on first access.)
    pub(crate) fn build(&mut self, built: Built) -> NodeId {
        match built {
            Built::Reuse(id) => id,
            Built::New(kind) => self.alloc(kind),
        }
    }

    /// Overwrites a `Pending` placeholder with the built result. If the
    /// result reuses a node that resolves back to the placeholder itself
    /// (a degenerate cycle), falls back to the uncompacted `raw` kind to
    /// avoid a self-referential `Ref`.
    pub(crate) fn patch(&mut self, ph: NodeId, built: Built, raw: ExprKind) {
        debug_assert!(
            matches!(self.node(ph).kind, ExprKind::Pending),
            "patch target must be pending"
        );
        match built {
            Built::Reuse(id) if self.resolve(id) == ph => {
                self.node_mut(ph).kind = raw;
            }
            Built::Reuse(id) => {
                self.node_mut(ph).kind = ExprKind::Ref(id);
            }
            Built::New(kind) => {
                self.node_mut(ph).kind = kind;
            }
        }
        // The kind changed; epoch-stamped state computed for `Pending` (if
        // any) must not survive into the patched node.
        self.invalidate_parse_state(ph);
    }

    // ------------------------------------------------------------------
    // Public builders
    // ------------------------------------------------------------------

    /// Builds `a ∪ b`, compacting per the engine configuration.
    pub fn alt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let compact = self.construction_compacts();
        let built = self.alt_built(a, b, compact);
        self.build(built)
    }

    /// Builds the union of any number of alternatives (`∅` when empty).
    pub fn alts(&mut self, items: &[NodeId]) -> NodeId {
        match items {
            [] => self.empty_node(),
            [x] => *x,
            [x, rest @ ..] => {
                let r = self.alts(rest);
                self.alt(*x, r)
            }
        }
    }

    /// Builds `a ◦ b`, compacting per the engine configuration.
    pub fn cat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let compact = self.construction_compacts();
        let built = self.cat_built(a, b, compact, CAT_FUEL);
        self.build(built)
    }

    /// Builds the concatenation of any number of parts (`ε` when empty),
    /// associated to the right.
    pub fn seq(&mut self, items: &[NodeId]) -> NodeId {
        match items {
            [] => self.eps_node(),
            [x] => *x,
            [x, rest @ ..] => {
                let r = self.seq(rest);
                self.cat(*x, r)
            }
        }
    }

    /// Builds `a ↪ f`, compacting per the engine configuration.
    pub fn reduce(&mut self, a: NodeId, f: Reduce) -> NodeId {
        let compact = self.construction_compacts();
        let built = self.red_built(a, f, compact);
        self.build(built)
    }

    /// Builds `ε ∪ a` (zero or one).
    pub fn opt(&mut self, a: NodeId) -> NodeId {
        let e = self.eps_node();
        self.alt(e, a)
    }

    /// Builds the Kleene star as the paper prescribes for CFG-land:
    /// `L* = ε ∪ (L ◦ L*)` (§2.2).
    pub fn star(&mut self, a: NodeId) -> NodeId {
        let s = self.forward();
        let rest = self.cat(a, s);
        let e = self.eps_node();
        let body = self.alt(e, rest);
        self.define(s, body);
        s
    }

    /// Builds `a ◦ a*` (one or more).
    pub fn plus(&mut self, a: NodeId) -> NodeId {
        let s = self.star(a);
        self.cat(a, s)
    }

    pub(crate) fn delta(&mut self, a: NodeId) -> NodeId {
        let compact = self.construction_compacts();
        let built = self.delta_built(a, compact);
        self.build(built)
    }

    // ------------------------------------------------------------------
    // Smart constructors
    // ------------------------------------------------------------------

    pub(crate) fn alt_built(&mut self, a: NodeId, b: NodeId, compact: bool) -> Built {
        let a = self.resolve(a);
        let b = self.resolve(b);
        if !compact {
            return Built::New(ExprKind::Alt(a, b));
        }
        enum AltRule {
            ReuseA,
            ReuseB,
            MergeEps(pwd_forest::ForestId, pwd_forest::ForestId),
            Keep,
        }
        let rule = match (&self.node(a).kind, &self.node(b).kind) {
            (ExprKind::Empty, _) => AltRule::ReuseB,
            (_, ExprKind::Empty) => AltRule::ReuseA,
            (ExprKind::Eps(s1), ExprKind::Eps(s2)) => AltRule::MergeEps(*s1, *s2),
            _ => AltRule::Keep,
        };
        match rule {
            // ∅ ∪ p ⇒ p
            AltRule::ReuseB => {
                self.metrics.compactions_applied += 1;
                Built::Reuse(b)
            }
            // p ∪ ∅ ⇒ p
            AltRule::ReuseA => {
                self.metrics.compactions_applied += 1;
                Built::Reuse(a)
            }
            // ε_s1 ∪ ε_s2 ⇒ ε_{s1 ∪ s2} (one of the paper's new rules)
            AltRule::MergeEps(s1, s2) => {
                self.metrics.compactions_applied += 1;
                let f = self.forests.alloc(ForestNode::Amb(vec![s1, s2]));
                Built::New(ExprKind::Eps(f))
            }
            AltRule::Keep => Built::New(ExprKind::Alt(a, b)),
        }
    }

    pub(crate) fn cat_built(&mut self, a: NodeId, b: NodeId, compact: bool, fuel: u32) -> Built {
        let a = self.resolve(a);
        let b = self.resolve(b);
        if !compact || fuel == 0 {
            return Built::New(ExprKind::Cat(a, b));
        }
        // Left-child rules (always allowed).
        match self.node(a).kind.clone() {
            // ∅ ◦ p ⇒ ∅
            ExprKind::Empty => {
                self.metrics.compactions_applied += 1;
                return Built::Reuse(self.empty_node());
            }
            // ε_s ◦ p ⇒ p ↪ λu.(s, u)
            ExprKind::Eps(s) => {
                self.metrics.compactions_applied += 1;
                return self.red_built(b, Reduce::pair_left(s), compact);
            }
            // (p1 ◦ p2) ◦ p3 ⇒ (p1 ◦ (p2 ◦ p3)) ↪ reassoc   (§4.3.2)
            ExprKind::Cat(a1, a2) => {
                self.metrics.compactions_applied += 1;
                let inner = self.cat_built(a2, b, compact, fuel - 1);
                let inner = self.build(inner);
                let outer = self.cat_built(a1, inner, compact, fuel - 1);
                let outer = self.build(outer);
                return self.red_built(outer, Reduce::reassoc(), compact);
            }
            // (p1 ↪ f) ◦ p2 ⇒ (p1 ◦ p2) ↪ map-first f      (§4.3.2)
            ExprKind::Red(x, f) => {
                self.metrics.compactions_applied += 1;
                let inner = self.cat_built(x, b, compact, fuel - 1);
                let inner = self.build(inner);
                return self.red_built(inner, Reduce::map_first(f), compact);
            }
            _ => {}
        }
        // Right-child rules (§4.3.1: initial grammar only, in the improved
        // configuration).
        if self.allow_right_rules() {
            match self.node(b).kind.clone() {
                // p ◦ ∅ ⇒ ∅
                ExprKind::Empty => {
                    self.metrics.compactions_applied += 1;
                    return Built::Reuse(self.empty_node());
                }
                // p ◦ ε_s ⇒ p ↪ λu.(u, s)
                ExprKind::Eps(s) => {
                    self.metrics.compactions_applied += 1;
                    return self.red_built(a, Reduce::pair_right(s), compact);
                }
                // p1 ◦ (p2 ↪ f) ⇒ (p1 ◦ p2) ↪ map-second f
                ExprKind::Red(y, g) => {
                    self.metrics.compactions_applied += 1;
                    let inner = self.cat_built(a, y, compact, fuel - 1);
                    let inner = self.build(inner);
                    return self.red_built(inner, Reduce::map_second(g), compact);
                }
                _ => {}
            }
        }
        Built::New(ExprKind::Cat(a, b))
    }

    pub(crate) fn red_built(&mut self, x: NodeId, f: Reduce, compact: bool) -> Built {
        let x = self.resolve(x);
        if !compact {
            return Built::New(ExprKind::Red(x, f));
        }
        match self.node(x).kind.clone() {
            // ∅ ↪ f ⇒ ∅ (the paper's other new rule)
            ExprKind::Empty => {
                self.metrics.compactions_applied += 1;
                Built::Reuse(self.empty_node())
            }
            // ε_s ↪ f ⇒ ε_{f s}
            ExprKind::Eps(s) => {
                self.metrics.compactions_applied += 1;
                let m = self.forests.alloc(ForestNode::Map(f, s));
                Built::New(ExprKind::Eps(m))
            }
            // (p ↪ f) ↪ g ⇒ p ↪ (g ∘ f)
            ExprKind::Red(y, g) => {
                self.metrics.compactions_applied += 1;
                Built::New(ExprKind::Red(y, f.compose(g)))
            }
            _ => Built::New(ExprKind::Red(x, f)),
        }
    }

    pub(crate) fn delta_built(&mut self, x: NodeId, compact: bool) -> Built {
        let x = self.resolve(x);
        if !compact {
            return Built::New(ExprKind::Delta(x));
        }
        match self.node(x).kind {
            // δ(∅) = ∅ and δ(c) = ∅ (a token has no null parses)
            ExprKind::Empty | ExprKind::Term(_) => {
                self.metrics.compactions_applied += 1;
                return Built::Reuse(self.empty_node());
            }
            // δ(ε_s) = ε_s, δ(δ(x)) = δ(x)
            ExprKind::Eps(_) | ExprKind::Delta(_) => {
                self.metrics.compactions_applied += 1;
                return Built::Reuse(x);
            }
            // Mid-derivation child: punt (§4.3.3).
            ExprKind::Pending | ExprKind::Forward => return Built::New(ExprKind::Delta(x)),
            _ => {}
        }
        // δ(L) for a fully built L: force it to ε_{parse-null(L)} or ∅ right
        // away. Without this rule, nullable sequence derivatives accumulate
        // unbounded δ-prefix chains (`Cat(δ(a₁), Cat(δ(a₂), …))`) and the
        // graph grows with every token; with it, the derivative graph stays
        // proportional to the grammar, which is what makes PWD linear in
        // practice (§2.6). L is from an earlier derivative generation, so
        // its nullability and null-parse forest are already final.
        self.metrics.compactions_applied += 1;
        if self.nullable(x) {
            let forest = self.parse_null(x);
            Built::New(ExprKind::Eps(forest))
        } else {
            Built::Reuse(self.empty_node())
        }
    }

    // ------------------------------------------------------------------
    // Separate-pass compaction (original 2011 mode) and the initial-grammar
    // prepass (§4.3.1).
    // ------------------------------------------------------------------

    /// The §4.3.1 prepass output for `start`, computed once and cached: the
    /// compacted initial grammar is a pure function of the immutable input
    /// graph, so repeated parses share one copy instead of re-running the
    /// pass per parse. When the first parse computes it before the initial
    /// boundary is recorded, the copy becomes part of the persistent grammar
    /// (template rows included) and survives [`Language::reset`].
    pub(crate) fn prepass_root(&mut self, start: NodeId) -> NodeId {
        if let Some(&(_, out)) = self.prepass_cache.iter().find(|&&(s, _)| s == start) {
            return out;
        }
        let out = self.compact_pass(start);
        self.prepass_cache.push((start, out));
        out
    }

    /// Rewrites the graph reachable from `root`, applying the full local
    /// rule set once per node (no fixed-point iteration), and returns the
    /// root of the rewritten graph.
    pub(crate) fn compact_pass(&mut self, root: NodeId) -> NodeId {
        self.metrics.compaction_passes += 1;
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        self.compact_node(root, &mut map)
    }

    fn compact_node(&mut self, id: NodeId, map: &mut HashMap<NodeId, NodeId>) -> NodeId {
        let id = self.resolve(id);
        if let Some(&m) = map.get(&id) {
            return m;
        }
        match self.node(id).kind.clone() {
            ExprKind::Empty
            | ExprKind::Eps(_)
            | ExprKind::Term(_)
            | ExprKind::Forward
            | ExprKind::Pending => {
                map.insert(id, id);
                id
            }
            ExprKind::Alt(a, b) => {
                let ph = self.alloc(ExprKind::Pending);
                map.insert(id, ph);
                let ca = self.compact_node(a, map);
                let cb = self.compact_node(b, map);
                let built = self.alt_built(ca, cb, true);
                self.patch(ph, built, ExprKind::Alt(ca, cb));
                ph
            }
            ExprKind::Cat(a, b) => {
                let ph = self.alloc(ExprKind::Pending);
                map.insert(id, ph);
                let ca = self.compact_node(a, map);
                let cb = self.compact_node(b, map);
                let built = self.cat_built(ca, cb, true, CAT_FUEL);
                self.patch(ph, built, ExprKind::Cat(ca, cb));
                ph
            }
            ExprKind::Red(x, f) => {
                let ph = self.alloc(ExprKind::Pending);
                map.insert(id, ph);
                let cx = self.compact_node(x, map);
                let built = self.red_built(cx, f.clone(), true);
                self.patch(ph, built, ExprKind::Red(cx, f));
                ph
            }
            ExprKind::Delta(x) => {
                let ph = self.alloc(ExprKind::Pending);
                map.insert(id, ph);
                let cx = self.compact_node(x, map);
                let built = self.delta_built(cx, true);
                self.patch(ph, built, ExprKind::Delta(cx));
                ph
            }
            ExprKind::Ref(_) => unreachable!("resolved above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParserConfig;
    use crate::Tree;
    use pwd_forest::EnumLimits;

    fn improved() -> Language {
        Language::new(ParserConfig::improved())
    }

    #[test]
    fn alt_identity_rules() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let e = lang.empty_node();
        assert_eq!(lang.alt(e, ta), ta, "∅ ∪ p ⇒ p");
        assert_eq!(lang.alt(ta, e), ta, "p ∪ ∅ ⇒ p");
    }

    #[test]
    fn eps_union_merges() {
        let mut lang = improved();
        let e1 = lang.eps_tree(Tree::node("x", vec![]));
        let e2 = lang.eps_tree(Tree::node("y", vec![]));
        let u = lang.alt(e1, e2);
        assert!(matches!(lang.kind(u), ExprKind::Eps(_)), "ε ∪ ε ⇒ ε");
    }

    #[test]
    fn cat_annihilator_and_eps() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let e = lang.empty_node();
        let k = lang.cat(e, ta);
        assert!(lang.is_empty_node(k), "∅ ◦ p ⇒ ∅");
        let eps = lang.eps_node();
        let r = lang.cat(eps, ta);
        assert!(matches!(lang.kind(r), ExprKind::Red(..)), "ε ◦ p ⇒ p ↪ f");
    }

    #[test]
    fn red_collapses() {
        let mut lang = improved();
        let e = lang.empty_node();
        let r = lang.reduce(e, Reduce::func("f", |t| t));
        assert!(lang.is_empty_node(r), "∅ ↪ f ⇒ ∅");

        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let r1 = lang.reduce(ta, Reduce::func("f", |t| t));
        let r2 = lang.reduce(r1, Reduce::func("g", |t| t));
        match lang.kind(r2) {
            ExprKind::Red(inner, _) => assert_eq!(lang.resolve(*inner), ta, "(p↪f)↪g ⇒ p↪(g∘f)"),
            other => panic!("expected Red, got {other:?}"),
        }
    }

    #[test]
    fn eps_red_folds_into_forest() {
        let mut lang = improved();
        let e = lang.eps_node();
        let r = lang.reduce(e, Reduce::func("wrap", |t| Tree::node("w", vec![t])));
        match lang.kind(r) {
            ExprKind::Eps(f) => {
                let trees = lang.forests.trees(*f, EnumLimits::default());
                assert_eq!(trees.len(), 1);
                assert_eq!(trees[0].to_string(), "(w ε)");
            }
            other => panic!("expected Eps, got {other:?}"),
        }
    }

    #[test]
    fn cat_reassociates_left_nesting() {
        let mut lang = improved();
        let (a, b, c) = ("a", "b", "c");
        let ta = lang.terminal(a);
        let tb = lang.terminal(b);
        let tc = lang.terminal(c);
        let (na, nb, nc) = (lang.term_node(ta), lang.term_node(tb), lang.term_node(tc));
        let ab = lang.cat(na, nb);
        let abc = lang.cat(ab, nc);
        // Result must be ((a ◦ (b ◦ c)) ↪ reassoc): a reduction on top of a
        // right-nested spine.
        match lang.kind(abc) {
            ExprKind::Red(inner, _) => match lang.kind(*inner) {
                ExprKind::Cat(l, r) => {
                    assert_eq!(lang.resolve(*l), na);
                    assert!(matches!(lang.kind(*r), ExprKind::Cat(..)));
                }
                other => panic!("expected Cat, got {other:?}"),
            },
            other => panic!("expected Red on top, got {other:?}"),
        }
    }

    #[test]
    fn right_child_rules_apply_outside_parse() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let e = lang.empty_node();
        let eps = lang.eps_node();
        let k = lang.cat(ta, e);
        assert!(lang.is_empty_node(k), "p ◦ ∅ ⇒ ∅ before parse");
        let r = lang.cat(ta, eps);
        assert!(matches!(lang.kind(r), ExprKind::Red(..)), "p ◦ ε ⇒ p ↪ f before parse");
    }

    #[test]
    fn right_child_rules_skipped_during_parse() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let eps = lang.eps_node();
        lang.in_parse = true;
        let r = lang.cat(ta, eps);
        assert!(
            matches!(lang.kind(r), ExprKind::Cat(..)),
            "§4.3.1: right-child rules are not applied during parsing"
        );
        lang.in_parse = false;
    }

    #[test]
    fn no_compaction_mode_builds_raw() {
        let mut lang = Language::new(ParserConfig {
            compaction: CompactionMode::None,
            ..ParserConfig::improved()
        });
        let e = lang.empty_node();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let u = lang.alt(e, ta);
        assert!(matches!(lang.kind(u), ExprKind::Alt(..)));
    }

    #[test]
    fn compact_pass_rewrites_graph() {
        let mut lang = Language::new(ParserConfig::original_2011());
        // Build (∅ ∪ a) uncompacted (original mode builds raw)…
        let e = lang.empty_node();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let u = lang.alt(e, ta);
        assert!(matches!(lang.kind(u), ExprKind::Alt(..)));
        // …then the separate pass collapses it.
        let c = lang.compact_pass(u);
        assert_eq!(lang.resolve(c), ta);
        assert_eq!(lang.metrics().compaction_passes, 1);
    }

    #[test]
    fn compact_pass_handles_cycles() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);
        let out = lang.compact_pass(l);
        // The pass must terminate and produce a graph that still contains a
        // cycle (reachable set is finite and nonempty).
        assert!(lang.reachable_count(out) >= 2);
    }

    #[test]
    fn star_builds_cyclic_structure() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        let s = lang.star(ta);
        assert!(lang.validate(s).is_ok());
        assert!(lang.reachable_count(s) >= 2);
    }

    #[test]
    fn seq_and_alts_helpers() {
        let mut lang = improved();
        let a = lang.terminal("a");
        let ta = lang.term_node(a);
        assert_eq!(lang.seq(&[]), lang.eps_node());
        assert_eq!(lang.seq(&[ta]), ta);
        assert_eq!(lang.alts(&[]), lang.empty_node());
        assert_eq!(lang.alts(&[ta]), ta);
        let two = lang.alts(&[ta, ta]);
        assert!(matches!(lang.kind(two), ExprKind::Alt(..)));
    }
}
