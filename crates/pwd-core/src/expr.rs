//! The grammar-node arena and the [`Language`] type.
//!
//! Grammars in PWD are *cyclic graphs* of parsing-expression nodes (§2.5.1:
//! non-terminals are represented by direct pointers, so `L = (L ◦ c) ∪ c`
//! contains an edge back to itself). In Rust we represent the graph as an
//! index-addressed arena owned by [`Language`]: nodes refer to children by
//! [`NodeId`]. The paper's "insert a partially constructed node into the
//! memo table before recursing" laziness trick (§2.5.2) becomes: allocate a
//! [`Pending`](ExprKind::Pending) placeholder, memoize its id, recurse, then
//! patch — no `Rc<RefCell<…>>` cycles anywhere.

use crate::config::ParserConfig;
use crate::error::PwdError;
use crate::forest::{ForestId, ForestNode, ForestStore, Tree};
use crate::metrics::Metrics;
use crate::names::NameStore;
use crate::reduce::Reduce;
use crate::token::{Interner, TermId, TokKey, Token};
use std::collections::HashMap;
use std::rc::Rc;

/// Index of a grammar node within a [`Language`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The parsing-expression forms of Figure 1, plus the δ node of Might et al.
/// (2011) and the arena-specific `Ref`/`Forward`/`Pending` plumbing.
#[derive(Debug, Clone)]
pub(crate) enum ExprKind {
    /// `∅` — the empty language.
    Empty,
    /// `ε_s` — the empty word, yielding the trees of the referenced forest.
    Eps(ForestId),
    /// `c` — a single terminal.
    Term(TermId),
    /// `L₁ ∪ L₂`.
    Alt(NodeId, NodeId),
    /// `L₁ ◦ L₂`.
    Cat(NodeId, NodeId),
    /// `L ↪ f`.
    Red(NodeId, Reduce),
    /// `δ(L)` — the null parses of `L` (derivative ∅, nullability of `L`).
    Delta(NodeId),
    /// Forwarding to another node (compaction collapse or a defined
    /// non-terminal). Transparent to all traversals.
    Ref(NodeId),
    /// A declared-but-not-yet-defined non-terminal.
    Forward,
    /// A node mid-derivation whose children have not been patched yet.
    Pending,
}

/// One grammar node plus its per-node mutable state: nullability lattice
/// value, single-entry derive memo, and parse-null memo. Storing memo state
/// *in the node* (not in hash tables) is the §4.4 optimization.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: ExprKind,
    pub(crate) label: Option<Rc<str>>,
    // --- nullability state (§4.2) ---
    pub(crate) null_value: bool,
    pub(crate) null_definite: bool,
    pub(crate) null_on_stack: bool,
    pub(crate) null_visited_run: u32,
    pub(crate) null_deps: Vec<NodeId>,
    // --- single-entry derive memo (§4.4) ---
    pub(crate) memo_key: Option<TokKey>,
    pub(crate) memo_val: NodeId,
    /// Second slot for the DualEntry strategy (§4.4's abandoned experiment).
    pub(crate) memo_key2: Option<TokKey>,
    pub(crate) memo_val2: NodeId,
    // --- parse-null memo ---
    pub(crate) null_parse: Option<ForestId>,
}

impl Node {
    fn new(kind: ExprKind) -> Node {
        Node {
            kind,
            label: None,
            null_value: false,
            null_definite: false,
            null_on_stack: false,
            null_visited_run: 0,
            null_deps: Vec::new(),
            memo_key: None,
            memo_val: NodeId(0),
            memo_key2: None,
            memo_val2: NodeId(0),
            null_parse: None,
        }
    }
}

/// A language: a (possibly cyclic) graph of parsing-expression nodes, an
/// interner for terminals and tokens, a parse-forest arena, and the engine
/// state required to take derivatives of it.
///
/// # Examples
///
/// Build the paper's left-recursive example `L = (L ◦ c) ∪ c` and parse:
///
/// ```
/// use pwd_core::Language;
///
/// # fn main() -> Result<(), pwd_core::PwdError> {
/// let mut lang = Language::default();
/// let c = lang.terminal("c");
/// let tc = lang.term_node(c);
/// let l = lang.forward();
/// let lc = lang.cat(l, tc);
/// let body = lang.alt(lc, tc);
/// lang.define(l, body);
///
/// let tok = lang.token(c, "c");
/// assert!(lang.recognize(l, &[tok.clone(), tok.clone(), tok])?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Language {
    pub(crate) nodes: Vec<Node>,
    pub(crate) forests: ForestStore,
    pub(crate) interner: Interner,
    pub(crate) config: ParserConfig,
    pub(crate) metrics: Metrics,
    /// Global table for the FullHash memo strategy, keyed by (node, token).
    pub(crate) full_memo: HashMap<(NodeId, TokKey), NodeId>,
    pub(crate) names: NameStore,
    /// Monotone counter labelling nullability fixed-point runs (§4.2).
    pub(crate) run_label: u32,
    /// True while `parse`/`derive` are running; gates the §4.3.1 right-child
    /// compaction rules, which are only valid on the initial grammar.
    pub(crate) in_parse: bool,
    /// Set by `alloc` when `max_nodes` is exceeded; checked per token.
    pub(crate) budget_hit: bool,
    /// Node/forest arena sizes at the start of the first parse, for `reset`.
    pub(crate) initial_nodes: Option<usize>,
    pub(crate) initial_forests: Option<usize>,
    /// Canonical `Term` nodes, one per terminal.
    term_nodes: HashMap<TermId, NodeId>,
    /// Productivity lattice per node (see [`crate::prune`]): parallel to
    /// `nodes`.
    pub(crate) productive: Vec<u8>,
}

impl Language {
    /// Creates a language with the given engine configuration.
    pub fn new(config: ParserConfig) -> Language {
        let mut forests = ForestStore::default();
        let nothing = forests.alloc(ForestNode::Nothing);
        let eps_tree = forests.alloc(ForestNode::EpsTree);
        debug_assert_eq!(nothing, ForestId(0));
        debug_assert_eq!(eps_tree, ForestId(1));
        let mut nodes = Vec::with_capacity(64);
        nodes.push(Node::new(ExprKind::Empty)); // NodeId(0): canonical ∅
        nodes.push(Node::new(ExprKind::Eps(eps_tree))); // NodeId(1): canonical ε
        let mut empty = Node::new(ExprKind::Empty);
        empty.null_definite = true;
        nodes[0] = empty;
        let mut eps = Node::new(ExprKind::Eps(eps_tree));
        eps.null_value = true;
        eps.null_definite = true;
        nodes[1] = eps;
        Language {
            nodes,
            forests,
            interner: Interner::default(),
            config,
            metrics: Metrics::default(),
            full_memo: HashMap::new(),
            names: NameStore::default(),
            run_label: 0,
            in_parse: false,
            budget_hit: false,
            initial_nodes: None,
            initial_forests: None,
            term_nodes: HashMap::new(),
            productive: vec![0, 0],
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &ParserConfig {
        &self.config
    }

    /// Accumulated instrumentation counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Clears the instrumentation counters.
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
    }

    /// Interns a terminal (token kind) by name.
    pub fn terminal(&mut self, name: &str) -> TermId {
        self.interner.terminal(name)
    }

    /// The display name of a terminal.
    pub fn terminal_name(&self, id: TermId) -> &str {
        self.interner.term_name(id)
    }

    /// Creates (and interns) a token of the given kind with the given lexeme.
    pub fn token(&mut self, term: TermId, lexeme: &str) -> Token {
        self.interner.token(term, lexeme)
    }

    /// Number of grammar nodes currently allocated (the paper's `G + g`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of interned terminals.
    pub fn terminal_count(&self) -> usize {
        self.interner.term_count()
    }

    /// Number of interned distinct token values.
    pub fn token_count(&self) -> usize {
        self.interner.tok_count()
    }

    /// Number of nodes carrying a Definition-5 name.
    pub fn named_node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of parse-forest nodes currently allocated.
    pub fn forest_count(&self) -> usize {
        self.forests.len()
    }

    pub(crate) fn alloc(&mut self, kind: ExprKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(kind));
        self.productive.push(0);
        self.metrics.nodes_created += 1;
        if let Some(limit) = self.config.max_nodes {
            if self.nodes.len() > limit {
                self.budget_hit = true;
            }
        }
        id
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Follows `Ref` forwarding to the representative node.
    pub(crate) fn resolve(&self, mut id: NodeId) -> NodeId {
        loop {
            match &self.node(id).kind {
                ExprKind::Ref(t) => id = *t,
                _ => return id,
            }
        }
    }

    /// The resolved kind of a node.
    pub(crate) fn kind(&self, id: NodeId) -> &ExprKind {
        &self.node(self.resolve(id)).kind
    }

    /// The canonical `∅` node.
    pub fn empty_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The canonical `ε` node (yielding the single empty tree).
    pub fn eps_node(&self) -> NodeId {
        NodeId(1)
    }

    /// An `ε_s` node yielding the given constant tree.
    pub fn eps_tree(&mut self, tree: Tree) -> NodeId {
        let f = self.forests.alloc(ForestNode::Const(tree));
        let id = self.alloc(ExprKind::Eps(f));
        let n = self.node_mut(id);
        n.null_value = true;
        n.null_definite = true;
        id
    }

    /// The canonical single-terminal node for `term`.
    pub fn term_node(&mut self, term: TermId) -> NodeId {
        if let Some(&id) = self.term_nodes.get(&term) {
            return id;
        }
        let id = self.alloc(ExprKind::Term(term));
        self.node_mut(id).null_definite = true; // a token is never nullable
        self.term_nodes.insert(term, id);
        id
    }

    /// Declares a non-terminal whose body will be supplied later with
    /// [`define`](Language::define) — the mechanism for building cyclic
    /// grammars.
    pub fn forward(&mut self) -> NodeId {
        self.alloc(ExprKind::Forward)
    }

    /// Defines a previously [`forward`](Language::forward)-declared node.
    ///
    /// # Panics
    ///
    /// Panics if `fwd` was not created by `forward` or is already defined.
    pub fn define(&mut self, fwd: NodeId, body: NodeId) {
        match self.node(fwd).kind {
            ExprKind::Forward => {}
            ref other => panic!("define() on a non-forward node {fwd:?} ({other:?})"),
        }
        self.node_mut(fwd).kind = ExprKind::Ref(body);
    }

    /// Attaches a display label (e.g. a non-terminal name) to a node.
    pub fn set_label(&mut self, id: NodeId, label: &str) {
        self.node_mut(id).label = Some(Rc::from(label));
    }

    /// The display label of a node, if any.
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.node(id).label.as_deref()
    }

    /// Is this node (after resolution) the empty language *syntactically*?
    ///
    /// With compaction enabled, a derivative that becomes `∅` collapses to
    /// the canonical empty node, so this is the paper's cheap early-reject
    /// check. Without compaction it may return `false` for semantically
    /// empty languages.
    pub fn is_empty_node(&self, id: NodeId) -> bool {
        matches!(self.kind(id), ExprKind::Empty)
    }

    /// Checks that every node reachable from `start` is fully defined (no
    /// [`forward`](Language::forward) declarations missing their
    /// [`define`](Language::define)).
    ///
    /// # Errors
    ///
    /// Returns [`PwdError::UndefinedNonterminal`] naming the first undefined
    /// node found.
    pub fn validate(&self, start: NodeId) -> Result<(), PwdError> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            match &self.node(id).kind {
                ExprKind::Forward => {
                    return Err(PwdError::UndefinedNonterminal {
                        label: self.node(id).label.as_deref().map(str::to_owned),
                    });
                }
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                ExprKind::Red(a, _) | ExprKind::Delta(a) => stack.push(*a),
                ExprKind::Empty | ExprKind::Eps(_) | ExprKind::Term(_) | ExprKind::Pending => {}
                ExprKind::Ref(_) => unreachable!("resolved"),
            }
        }
        Ok(())
    }

    /// Number of nodes reachable from `start` (following `Ref`s, counting
    /// representatives only).
    pub fn reachable_count(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            count += 1;
            match &self.node(id).kind {
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                ExprKind::Red(a, _) | ExprKind::Delta(a) => stack.push(*a),
                _ => {}
            }
        }
        count
    }

    /// Census of reachable node kinds from `start`: `(kind name, count)`,
    /// sorted descending. A diagnostic for graph-growth investigations.
    pub fn kind_census(&self, start: NodeId) -> Vec<(&'static str, usize)> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            let name = match &self.node(id).kind {
                ExprKind::Empty => "empty",
                ExprKind::Eps(_) => "eps",
                ExprKind::Term(_) => "term",
                ExprKind::Alt(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    "alt"
                }
                ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    "cat"
                }
                ExprKind::Red(a, _) => {
                    stack.push(*a);
                    "red"
                }
                ExprKind::Delta(a) => {
                    stack.push(*a);
                    "delta"
                }
                ExprKind::Forward => "forward",
                ExprKind::Pending => "pending",
                ExprKind::Ref(_) => unreachable!("resolved"),
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        let mut v: Vec<(&'static str, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v
    }

    /// Diagnostic: the most frequent structural patterns among nodes
    /// reachable from `start` (kind + labeled/original children), sorted by
    /// frequency. Used to investigate graph-growth pathologies.
    pub fn hot_patterns(&self, start: NodeId, top: usize) -> Vec<String> {
        let initial = self.initial_nodes.unwrap_or(usize::MAX);
        let describe_child = |id: NodeId| -> String {
            let id = self.resolve(id);
            let n = self.node(id);
            let age = if id.index() < initial { "orig" } else { "new" };
            let kind = match &n.kind {
                ExprKind::Empty => "∅",
                ExprKind::Eps(_) => "ε",
                ExprKind::Term(_) => "tok",
                ExprKind::Alt(..) => "∪",
                ExprKind::Cat(..) => "◦",
                ExprKind::Red(..) => "↪",
                ExprKind::Delta(_) => "δ",
                ExprKind::Forward => "fwd",
                ExprKind::Pending => "pend",
                ExprKind::Ref(_) => "ref",
            };
            match &n.label {
                Some(l) => format!("{age}:{kind}:{l}"),
                None => format!("{age}:{kind}"),
            }
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut counts: HashMap<String, usize> = HashMap::new();
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            let pat = match &self.node(id).kind {
                ExprKind::Alt(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    format!("∪({}, {})", describe_child(*a), describe_child(*b))
                }
                ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    format!("◦({}, {})", describe_child(*a), describe_child(*b))
                }
                ExprKind::Red(a, _) => {
                    stack.push(*a);
                    format!("↪({})", describe_child(*a))
                }
                ExprKind::Delta(a) => {
                    stack.push(*a);
                    format!("δ({})", describe_child(*a))
                }
                _ => continue,
            };
            *counts.entry(pat).or_insert(0) += 1;
        }
        let mut v: Vec<(String, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v.truncate(top);
        v.into_iter().map(|(p, c)| format!("{c:>6}  {p}")).collect()
    }

    /// Discards every node and forest created by parsing, clears all memo
    /// tables and counters, and returns the language to its pristine
    /// pre-parse state (the paper clears memo tables between benchmark
    /// rounds the same way).
    pub fn reset(&mut self) {
        let (Some(n), Some(f)) = (self.initial_nodes, self.initial_forests) else {
            return; // never parsed; nothing to reset
        };
        self.nodes.truncate(n);
        self.forests.truncate(f);
        // Productivity of initial nodes is language-determined and stays
        // valid across parses; just drop the derived suffix.
        self.productive.truncate(n);
        for node in &mut self.nodes {
            node.null_value = false;
            node.null_definite = false;
            node.null_on_stack = false;
            node.null_visited_run = 0;
            node.null_deps.clear();
            node.memo_key = None;
            node.memo_val = NodeId(0);
            node.memo_key2 = None;
            node.memo_val2 = NodeId(0);
            node.null_parse = None;
            // Constant kinds get their definite nullability back.
            match node.kind {
                ExprKind::Empty | ExprKind::Term(_) => node.null_definite = true,
                ExprKind::Eps(_) => {
                    node.null_value = true;
                    node.null_definite = true;
                }
                _ => {}
            }
        }
        self.full_memo.clear();
        self.names.clear_derived();
        self.metrics = Metrics::default();
        self.run_label = 0;
        self.in_parse = false;
        self.budget_hit = false;
    }

    /// Records the current arena sizes as the "initial grammar" boundary.
    /// Called automatically at the start of the first parse.
    pub(crate) fn mark_initial(&mut self) {
        if self.initial_nodes.is_none() {
            self.initial_nodes = Some(self.nodes.len());
            self.initial_forests = Some(self.forests.len());
        }
    }

    /// Size of the initial grammar (the paper's `G`), if a parse has run.
    pub fn initial_size(&self) -> Option<usize> {
        self.initial_nodes
    }

    /// Test-only hook to flip the compaction mode on an existing language.
    #[doc(hidden)]
    pub fn set_config_compaction_for_test(&mut self, mode: crate::config::CompactionMode) {
        self.config.compaction = mode;
    }

    /// Renders a node for debugging: kind, children ids, label.
    pub fn describe(&self, id: NodeId) -> String {
        let r = self.resolve(id);
        let n = self.node(r);
        let head = match &n.kind {
            ExprKind::Empty => "∅".to_string(),
            ExprKind::Eps(f) => format!("ε[{}]", f.0),
            ExprKind::Term(t) => format!("tok {}", self.interner.term_name(*t)),
            ExprKind::Alt(a, b) => format!("∪({}, {})", a.0, b.0),
            ExprKind::Cat(a, b) => format!("◦({}, {})", a.0, b.0),
            ExprKind::Red(a, f) => format!("↪({}, {f:?})", a.0),
            ExprKind::Delta(a) => format!("δ({})", a.0),
            ExprKind::Forward => "forward".to_string(),
            ExprKind::Pending => "pending".to_string(),
            ExprKind::Ref(_) => unreachable!("resolved"),
        };
        match &n.label {
            Some(l) => format!("{l}: {head}"),
            None => head,
        }
    }
}

impl Default for Language {
    fn default() -> Self {
        Language::new(ParserConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nodes() {
        let lang = Language::default();
        assert!(lang.is_empty_node(lang.empty_node()));
        assert!(matches!(lang.kind(lang.eps_node()), ExprKind::Eps(_)));
    }

    #[test]
    fn term_nodes_are_canonical() {
        let mut lang = Language::default();
        let a = lang.terminal("a");
        let n1 = lang.term_node(a);
        let n2 = lang.term_node(a);
        assert_eq!(n1, n2);
    }

    #[test]
    fn forward_define_resolves() {
        let mut lang = Language::default();
        let f = lang.forward();
        let a = lang.terminal("a");
        let body = lang.term_node(a);
        lang.define(f, body);
        assert_eq!(lang.resolve(f), body);
    }

    #[test]
    #[should_panic(expected = "non-forward")]
    fn double_define_panics() {
        let mut lang = Language::default();
        let f = lang.forward();
        let e = lang.eps_node();
        lang.define(f, e);
        lang.define(f, e);
    }

    #[test]
    fn validate_catches_undefined_forward() {
        let mut lang = Language::default();
        let f = lang.forward();
        lang.set_label(f, "Expr");
        let err = lang.validate(f).unwrap_err();
        assert_eq!(err, PwdError::UndefinedNonterminal { label: Some("Expr".into()) });
    }

    #[test]
    fn reachable_count_on_cycle() {
        let mut lang = Language::new(ParserConfig {
            compaction: crate::config::CompactionMode::None,
            ..ParserConfig::improved()
        });
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);
        // Nodes: Term(c), Cat, Alt — the forward resolves away.
        assert_eq!(lang.reachable_count(l), 3);
    }

    #[test]
    fn labels_render_in_describe() {
        let mut lang = Language::default();
        let f = lang.forward();
        lang.set_label(f, "S");
        assert!(lang.describe(f).starts_with("S:"));
    }
}
