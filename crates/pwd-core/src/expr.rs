//! The grammar-node arena and the [`Language`] type.
//!
//! Grammars in PWD are *cyclic graphs* of parsing-expression nodes (§2.5.1:
//! non-terminals are represented by direct pointers, so `L = (L ◦ c) ∪ c`
//! contains an edge back to itself). In Rust we represent the graph as an
//! index-addressed arena owned by [`Language`]: nodes refer to children by
//! [`NodeId`]. The paper's "insert a partially constructed node into the
//! memo table before recursing" laziness trick (§2.5.2) becomes: allocate a
//! [`Pending`](ExprKind::Pending) placeholder, memoize its id, recurse, then
//! patch — no `Rc<RefCell<…>>` cycles anywhere.

use crate::config::ParserConfig;
use crate::error::PwdError;
use crate::metrics::Metrics;
use crate::names::NameStore;
use crate::token::{DeriveKey, Interner, TermId, Token};
use pwd_forest::{Forest, ForestId, ForestNode, Reduce, Tree};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a grammar node within a [`Language`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The parsing-expression forms of Figure 1, plus the δ node of Might et al.
/// (2011) and the arena-specific `Ref`/`Forward`/`Pending` plumbing.
#[derive(Debug, Clone)]
pub(crate) enum ExprKind {
    /// `∅` — the empty language.
    Empty,
    /// `ε_s` — the empty word, yielding the trees of the referenced forest.
    Eps(ForestId),
    /// `c` — a single terminal.
    Term(TermId),
    /// `L₁ ∪ L₂`.
    Alt(NodeId, NodeId),
    /// `L₁ ◦ L₂`.
    Cat(NodeId, NodeId),
    /// `L ↪ f`.
    Red(NodeId, Reduce),
    /// `δ(L)` — the null parses of `L` (derivative ∅, nullability of `L`).
    Delta(NodeId),
    /// Forwarding to another node (compaction collapse or a defined
    /// non-terminal). Transparent to all traversals.
    Ref(NodeId),
    /// A declared-but-not-yet-defined non-terminal.
    Forward,
    /// A node mid-derivation whose children have not been patched yet.
    Pending,
}

/// Sentinel for "no entry" in the pooled linked lists ([`Language::dep_pool`]
/// and [`Language::memo_pool`]).
pub(crate) const NO_LINK: u32 = u32::MAX;

/// One entry of the pooled nullability-dependency lists: `parent` must be
/// recomputed when the owning node becomes nullable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DepEntry {
    pub(crate) parent: NodeId,
    pub(crate) next: u32,
}

/// One entry of the pooled `FullHash` memo overflow lists.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemoEntry {
    pub(crate) key: DeriveKey,
    pub(crate) val: NodeId,
    pub(crate) next: u32,
}

/// One entry of the pooled per-class template rows ([`Language::class_pool`]):
/// the derivative an initial-grammar node last produced for one terminal
/// class, plus its lexeme taint. Valid while `epoch` is current.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassEntry {
    pub(crate) epoch: u32,
    pub(crate) val: NodeId,
    pub(crate) taint: bool,
}

/// One grammar node plus its per-node mutable state: nullability lattice
/// value, derive memo, parse-null memo, productivity mark. Storing this state
/// *in the node* (not in hash tables) is the §4.4 optimization, generalized
/// here to every per-parse side table.
///
/// All per-parse fields are `Copy` and guarded by an epoch stamp: a field
/// group is only meaningful while its `*_epoch` equals the owning
/// [`Language`]'s current parse epoch. [`Language::reset`] therefore never
/// touches nodes — bumping the epoch invalidates everything at once.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: ExprKind,
    pub(crate) label: Option<Arc<str>>,
    /// Productivity lattice value (see [`crate::prune`]). Not epoch-stamped:
    /// for initial-grammar nodes productivity is a language-level fact that
    /// stays valid across parses, and derived nodes die at reset.
    pub(crate) productive: u8,
    // --- nullability state (§4.2), valid while `null_epoch` is current ---
    pub(crate) null_epoch: u32,
    pub(crate) null_value: bool,
    pub(crate) null_definite: bool,
    pub(crate) null_visited_run: u32,
    /// Head of this node's dependency list in [`Language::dep_pool`], valid
    /// while `deps_run` equals the current fixed-point run label.
    pub(crate) deps_head: u32,
    pub(crate) deps_run: u32,
    // --- derive memo (§4.4), valid while `memo_epoch` is current ---
    pub(crate) memo_epoch: u32,
    pub(crate) memo_key: Option<DeriveKey>,
    pub(crate) memo_val: NodeId,
    /// Second slot: the overflow entry for `DualEntry` (§4.4's abandoned
    /// experiment) and the second inline entry for `FullHash`.
    pub(crate) memo_key2: Option<DeriveKey>,
    pub(crate) memo_val2: NodeId,
    /// Head of this node's overflow list in [`Language::memo_pool`]
    /// (`FullHash` only; entries beyond the two inline slots).
    pub(crate) memo_over: u32,
    // --- class-template row (lexeme sharing), entries individually
    // --- epoch-stamped ---
    /// Start of this node's dense per-class template row in
    /// [`Language::class_pool`] (`NO_LINK` when the node has none).
    /// Initial-grammar nodes — the ones every token's derivation revisits —
    /// get a row on their first record, indexed by `TermId` and never
    /// evicted; derived nodes are transient and carry no template state.
    pub(crate) tmpl_row: u32,
    /// Length of the row (the terminal count at allocation time; terminals
    /// interned later are simply not templated).
    pub(crate) tmpl_row_len: u32,
    // --- parse-null memo, valid while `null_parse_epoch` is current ---
    pub(crate) null_parse_epoch: u32,
    pub(crate) null_parse: Option<ForestId>,
    /// The lazy-automaton state this node is interned as, `NO_LINK` if none.
    /// Not epoch-stamped: state identity is a structural fact, and interned
    /// roots survive [`Language::reset`] (the automaton boundary keeps them
    /// alive), so the mapping stays warm across parses. Cleared by
    /// [`Language::invalidate_parse_state`] on the rare in-place kind
    /// rewrite.
    pub(crate) auto_state: u32,
}

impl Node {
    fn new(kind: ExprKind) -> Node {
        Node {
            kind,
            label: None,
            productive: 0,
            null_epoch: 0,
            null_value: false,
            null_definite: false,
            null_visited_run: 0,
            deps_head: NO_LINK,
            deps_run: 0,
            memo_epoch: 0,
            memo_key: None,
            memo_val: NodeId(0),
            memo_key2: None,
            memo_val2: NodeId(0),
            memo_over: NO_LINK,
            tmpl_row: NO_LINK,
            tmpl_row_len: 0,
            null_parse_epoch: 0,
            null_parse: None,
            auto_state: NO_LINK,
        }
    }

    /// The nullability lattice values a node of this kind starts a parse
    /// with: constants (`∅`, tokens, `ε`) are definite from birth, everything
    /// else is assumed-not-nullable.
    pub(crate) fn null_defaults(kind: &ExprKind) -> (bool, bool) {
        match kind {
            ExprKind::Empty | ExprKind::Term(_) => (false, true),
            ExprKind::Eps(_) => (true, true),
            _ => (false, false),
        }
    }
}

/// A language: a (possibly cyclic) graph of parsing-expression nodes, an
/// interner for terminals and tokens, a parse-forest arena, and the engine
/// state required to take derivatives of it.
///
/// # Examples
///
/// Build the paper's left-recursive example `L = (L ◦ c) ∪ c` and parse:
///
/// ```
/// use pwd_core::Language;
///
/// # fn main() -> Result<(), pwd_core::PwdError> {
/// let mut lang = Language::default();
/// let c = lang.terminal("c");
/// let tc = lang.term_node(c);
/// let l = lang.forward();
/// let lc = lang.cat(l, tc);
/// let body = lang.alt(lc, tc);
/// lang.define(l, body);
///
/// let tok = lang.token(c, "c");
/// assert!(lang.recognize(l, &[tok.clone(), tok.clone(), tok])?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Language {
    pub(crate) nodes: Vec<Node>,
    pub(crate) forests: Forest,
    pub(crate) interner: Interner,
    pub(crate) config: ParserConfig,
    pub(crate) metrics: Metrics,
    pub(crate) names: NameStore,
    /// The current parse epoch. Every per-parse field on a [`Node`] is
    /// stamped with the epoch it was written under; [`reset`](Language::reset)
    /// bumps this counter and thereby invalidates all of them in O(1).
    pub(crate) epoch: u32,
    /// Monotone counter labelling nullability fixed-point runs (§4.2).
    pub(crate) run_label: u32,
    /// Pooled storage for per-run nullability dependency lists (replaces a
    /// per-node `Vec`, so dropping derived nodes frees no heap and clearing
    /// between parses is O(1)).
    pub(crate) dep_pool: Vec<DepEntry>,
    /// Pooled storage for `FullHash` memo overflow lists (replaces the global
    /// `(node, token)` hash map: the hot path never hashes).
    pub(crate) memo_pool: Vec<MemoEntry>,
    /// Pooled storage for the dense per-class template rows of
    /// initial-grammar nodes. Row *allocation* is warm state that survives
    /// [`reset`](Language::reset) (rows belong to initial nodes, which
    /// survive too); row *entries* are per-entry epoch-stamped, so the same
    /// O(1) epoch bump invalidates them.
    pub(crate) class_pool: Vec<ClassEntry>,
    /// Cached §4.3.1 prepass results, `(start, compacted root)`. The prepass
    /// is a pure function of the immutable input graph, so one copy serves
    /// every parse; entries whose nodes die at [`reset`](Language::reset)
    /// are dropped there.
    pub(crate) prepass_cache: Vec<(NodeId, NodeId)>,
    /// The lazy derivative automaton (see [`crate::automaton`]): interned
    /// derivative states with dense transition rows and cached accept bits.
    /// Like `class_pool`, warm state that survives [`reset`](Language::reset).
    pub(crate) auto: crate::automaton::Automaton,
    /// The observability sink (see [`crate::obs`]): `None` — the cheap,
    /// default state — means every span hook is a single branch; installed
    /// via [`enable_obs`](Language::enable_obs), it carries per-phase
    /// duration histograms and an optional trace buffer. Boxed so the
    /// disabled engine pays one word.
    pub(crate) obs: Option<Box<crate::obs::LangObs>>,
    /// True while `parse`/`derive` are running; gates the §4.3.1 right-child
    /// compaction rules, which are only valid on the initial grammar.
    pub(crate) in_parse: bool,
    /// Set by `alloc` when `max_nodes` is exceeded; checked per token.
    pub(crate) budget_hit: bool,
    /// Node/forest arena sizes at the start of the first parse, for `reset`.
    pub(crate) initial_nodes: Option<usize>,
    pub(crate) initial_forests: Option<usize>,
    /// Canonical `Term` nodes, one per terminal.
    term_nodes: HashMap<TermId, NodeId>,
    /// Canonical forest nodes: the no-parses forest and the `ε`-tree forest.
    pub(crate) forest_nothing: ForestId,
    pub(crate) forest_eps_tree: ForestId,
}

impl Language {
    /// Creates a language with the given engine configuration.
    pub fn new(config: ParserConfig) -> Language {
        let mut forests = Forest::new();
        let forest_nothing = forests.alloc(ForestNode::Empty);
        let forest_eps_tree = forests.alloc(ForestNode::Eps);
        let mut nodes = Vec::with_capacity(64);
        nodes.push(Node::new(ExprKind::Empty)); // NodeId(0): canonical ∅
        nodes.push(Node::new(ExprKind::Eps(forest_eps_tree))); // NodeId(1): canonical ε
        Language {
            nodes,
            forests,
            interner: Interner::default(),
            config,
            metrics: Metrics::default(),
            names: NameStore::default(),
            epoch: 1,
            run_label: 0,
            dep_pool: Vec::new(),
            memo_pool: Vec::new(),
            class_pool: Vec::new(),
            prepass_cache: Vec::new(),
            auto: crate::automaton::Automaton::default(),
            obs: None,
            in_parse: false,
            budget_hit: false,
            initial_nodes: None,
            initial_forests: None,
            term_nodes: HashMap::new(),
            forest_nothing,
            forest_eps_tree,
        }
    }

    /// The current parse epoch (bumped by [`reset`](Language::reset); useful
    /// for diagnostics and for asserting that reuse actually resets).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The engine configuration.
    pub fn config(&self) -> &ParserConfig {
        &self.config
    }

    /// Accumulated instrumentation counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Counts `n` recovery trial derivatives — cloned session states fed a
    /// candidate repair token to test its viability. The session layer
    /// drives the probing (it owns checkpoints and the repair search); the
    /// counter lives here with the other derive accounting so one snapshot
    /// describes the whole engine.
    pub fn note_recovery_probes(&mut self, n: u64) {
        self.metrics.recovery_probes += n;
    }

    /// Clears the instrumentation counters (and any accumulated
    /// observability phase data; an installed obs sink stays installed).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
        self.clear_obs_data();
    }

    /// Interns a terminal (token kind) by name.
    pub fn terminal(&mut self, name: &str) -> TermId {
        self.interner.terminal(name)
    }

    /// The display name of a terminal.
    pub fn terminal_name(&self, id: TermId) -> &str {
        self.interner.term_name(id)
    }

    /// Creates (and interns) a token of the given kind with the given lexeme.
    pub fn token(&mut self, term: TermId, lexeme: &str) -> Token {
        self.interner.token(term, lexeme)
    }

    /// Number of grammar nodes currently allocated (the paper's `G + g`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Has the configured node budget tripped? Once hit, the arena is full
    /// and no further derivation can run until [`reset`](Language::reset)
    /// (which clears the flag along with the derived nodes).
    pub fn budget_exhausted(&self) -> bool {
        self.budget_hit
    }

    /// Number of interned terminals.
    pub fn terminal_count(&self) -> usize {
        self.interner.term_count()
    }

    /// Number of interned distinct token values.
    pub fn token_count(&self) -> usize {
        self.interner.tok_count()
    }

    /// Number of nodes carrying a Definition-5 name.
    pub fn named_node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of parse-forest nodes currently allocated.
    pub fn forest_count(&self) -> usize {
        self.forests.len()
    }

    pub(crate) fn alloc(&mut self, kind: ExprKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(kind));
        self.metrics.nodes_created += 1;
        if let Some(limit) = self.config.max_nodes {
            if self.nodes.len() > limit {
                self.budget_hit = true;
            }
        }
        id
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// The node's nullability lattice values `(value, definite)`, reading
    /// epoch-stale state as the kind-determined start-of-parse defaults.
    #[inline]
    pub(crate) fn null_state(&self, id: NodeId) -> (bool, bool) {
        let n = &self.nodes[id.index()];
        if n.null_epoch == self.epoch {
            (n.null_value, n.null_definite)
        } else {
            Node::null_defaults(&n.kind)
        }
    }

    /// Mutable access to a node's nullability state, re-initializing it for
    /// the current epoch first if it is stale. This is the only write path
    /// for nullability fields, so stale state can never leak across parses.
    #[inline]
    pub(crate) fn null_mut(&mut self, id: NodeId) -> &mut Node {
        let epoch = self.epoch;
        let n = &mut self.nodes[id.index()];
        if n.null_epoch != epoch {
            n.null_epoch = epoch;
            n.null_visited_run = 0;
            n.deps_head = NO_LINK;
            n.deps_run = 0;
            let (value, definite) = Node::null_defaults(&n.kind);
            n.null_value = value;
            n.null_definite = definite;
        }
        n
    }

    /// The node's memoized null-parse forest, if computed this epoch.
    #[inline]
    pub(crate) fn null_parse_get(&self, id: NodeId) -> Option<ForestId> {
        let n = &self.nodes[id.index()];
        if n.null_parse_epoch == self.epoch {
            n.null_parse
        } else {
            None
        }
    }

    /// Memoizes the node's null-parse forest for the current epoch.
    #[inline]
    pub(crate) fn null_parse_set(&mut self, id: NodeId, f: ForestId) {
        let epoch = self.epoch;
        let n = &mut self.nodes[id.index()];
        n.null_parse_epoch = epoch;
        n.null_parse = Some(f);
    }

    /// Invalidates every epoch-stamped field of one node. Called whenever a
    /// node's `kind` is rewritten in place (placeholder patching, `define`,
    /// emptiness pruning) so derived state is recomputed for the new kind.
    #[inline]
    pub(crate) fn invalidate_parse_state(&mut self, id: NodeId) {
        let n = &mut self.nodes[id.index()];
        n.null_epoch = 0;
        n.memo_epoch = 0;
        n.null_parse_epoch = 0;
        let auto_state = n.auto_state;
        n.auto_state = NO_LINK;
        let (row, len) = (n.tmpl_row, n.tmpl_row_len);
        if row != NO_LINK {
            // Kind rewrites are rare (placeholder patching, pruning), so an
            // O(classes) row sweep here keeps the hot-path reads stamp-only.
            for e in &mut self.class_pool[row as usize..(row + len) as usize] {
                e.epoch = 0;
            }
        }
        if auto_state != NO_LINK {
            // States are interned post-prune on frozen structure, so a kind
            // rewrite on an interned root should be impossible — but if one
            // ever happens, drop the automaton rather than serve stale rows.
            self.auto_node_invalidated(id, auto_state);
        }
        // Cached signature digests of this node's ancestors embed the old
        // kind; drop them all rather than track reachability.
        self.auto.digests.clear();
    }

    /// Follows `Ref` forwarding to the representative node.
    pub(crate) fn resolve(&self, mut id: NodeId) -> NodeId {
        loop {
            match &self.node(id).kind {
                ExprKind::Ref(t) => id = *t,
                _ => return id,
            }
        }
    }

    /// The resolved kind of a node.
    pub(crate) fn kind(&self, id: NodeId) -> &ExprKind {
        &self.node(self.resolve(id)).kind
    }

    /// The canonical `∅` node.
    pub fn empty_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The canonical `ε` node (yielding the single empty tree).
    pub fn eps_node(&self) -> NodeId {
        NodeId(1)
    }

    /// An `ε_s` node yielding the given constant tree. (Its definite
    /// nullability follows from its kind; see [`Node::null_defaults`].)
    pub fn eps_tree(&mut self, tree: Tree) -> NodeId {
        let f = self.forests.alloc(ForestNode::Const(tree));
        self.alloc(ExprKind::Eps(f))
    }

    /// The canonical single-terminal node for `term`.
    pub fn term_node(&mut self, term: TermId) -> NodeId {
        if let Some(&id) = self.term_nodes.get(&term) {
            return id;
        }
        let id = self.alloc(ExprKind::Term(term));
        self.term_nodes.insert(term, id);
        id
    }

    /// Declares a non-terminal whose body will be supplied later with
    /// [`define`](Language::define) — the mechanism for building cyclic
    /// grammars.
    pub fn forward(&mut self) -> NodeId {
        self.alloc(ExprKind::Forward)
    }

    /// Defines a previously [`forward`](Language::forward)-declared node.
    ///
    /// # Panics
    ///
    /// Panics if `fwd` was not created by `forward` or is already defined.
    pub fn define(&mut self, fwd: NodeId, body: NodeId) {
        match self.node(fwd).kind {
            ExprKind::Forward => {}
            ref other => panic!("define() on a non-forward node {fwd:?} ({other:?})"),
        }
        self.node_mut(fwd).kind = ExprKind::Ref(body);
        self.invalidate_parse_state(fwd);
    }

    /// Attaches a display label (e.g. a non-terminal name) to a node.
    pub fn set_label(&mut self, id: NodeId, label: &str) {
        self.node_mut(id).label = Some(Arc::from(label));
    }

    /// The display label of a node, if any.
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.node(id).label.as_deref()
    }

    /// Is this node (after resolution) the empty language *syntactically*?
    ///
    /// With compaction enabled, a derivative that becomes `∅` collapses to
    /// the canonical empty node, so this is the paper's cheap early-reject
    /// check. Without compaction it may return `false` for semantically
    /// empty languages.
    pub fn is_empty_node(&self, id: NodeId) -> bool {
        matches!(self.kind(id), ExprKind::Empty)
    }

    /// Checks that every node reachable from `start` is fully defined (no
    /// [`forward`](Language::forward) declarations missing their
    /// [`define`](Language::define)).
    ///
    /// # Errors
    ///
    /// Returns [`PwdError::UndefinedNonterminal`] naming the first undefined
    /// node found.
    pub fn validate(&self, start: NodeId) -> Result<(), PwdError> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            match &self.node(id).kind {
                ExprKind::Forward => {
                    return Err(PwdError::UndefinedNonterminal {
                        label: self.node(id).label.as_deref().map(str::to_owned),
                    });
                }
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                ExprKind::Red(a, _) | ExprKind::Delta(a) => stack.push(*a),
                ExprKind::Empty | ExprKind::Eps(_) | ExprKind::Term(_) | ExprKind::Pending => {}
                ExprKind::Ref(_) => unreachable!("resolved"),
            }
        }
        Ok(())
    }

    /// Number of nodes reachable from `start` (following `Ref`s, counting
    /// representatives only).
    pub fn reachable_count(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            count += 1;
            match &self.node(id).kind {
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                ExprKind::Red(a, _) | ExprKind::Delta(a) => stack.push(*a),
                _ => {}
            }
        }
        count
    }

    /// Census of reachable node kinds from `start`: `(kind name, count)`,
    /// sorted descending. A diagnostic for graph-growth investigations.
    pub fn kind_census(&self, start: NodeId) -> Vec<(&'static str, usize)> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            let name = match &self.node(id).kind {
                ExprKind::Empty => "empty",
                ExprKind::Eps(_) => "eps",
                ExprKind::Term(_) => "term",
                ExprKind::Alt(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    "alt"
                }
                ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    "cat"
                }
                ExprKind::Red(a, _) => {
                    stack.push(*a);
                    "red"
                }
                ExprKind::Delta(a) => {
                    stack.push(*a);
                    "delta"
                }
                ExprKind::Forward => "forward",
                ExprKind::Pending => "pending",
                ExprKind::Ref(_) => unreachable!("resolved"),
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        let mut v: Vec<(&'static str, usize)> = counts.into_iter().collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v
    }

    /// Diagnostic: the most frequent structural patterns among nodes
    /// reachable from `start` (kind + labeled/original children), sorted by
    /// frequency. Used to investigate graph-growth pathologies.
    pub fn hot_patterns(&self, start: NodeId, top: usize) -> Vec<String> {
        let initial = self.initial_nodes.unwrap_or(usize::MAX);
        let describe_child = |id: NodeId| -> String {
            let id = self.resolve(id);
            let n = self.node(id);
            let age = if id.index() < initial { "orig" } else { "new" };
            let kind = match &n.kind {
                ExprKind::Empty => "∅",
                ExprKind::Eps(_) => "ε",
                ExprKind::Term(_) => "tok",
                ExprKind::Alt(..) => "∪",
                ExprKind::Cat(..) => "◦",
                ExprKind::Red(..) => "↪",
                ExprKind::Delta(_) => "δ",
                ExprKind::Forward => "fwd",
                ExprKind::Pending => "pend",
                ExprKind::Ref(_) => "ref",
            };
            match &n.label {
                Some(l) => format!("{age}:{kind}:{l}"),
                None => format!("{age}:{kind}"),
            }
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut counts: HashMap<String, usize> = HashMap::new();
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            let pat = match &self.node(id).kind {
                ExprKind::Alt(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    format!("∪({}, {})", describe_child(*a), describe_child(*b))
                }
                ExprKind::Cat(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                    format!("◦({}, {})", describe_child(*a), describe_child(*b))
                }
                ExprKind::Red(a, _) => {
                    stack.push(*a);
                    format!("↪({})", describe_child(*a))
                }
                ExprKind::Delta(a) => {
                    stack.push(*a);
                    format!("δ({})", describe_child(*a))
                }
                _ => continue,
            };
            *counts.entry(pat).or_insert(0) += 1;
        }
        let mut v: Vec<(String, usize)> = counts.into_iter().collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v.truncate(top);
        v.into_iter().map(|(p, c)| format!("{c:>6}  {p}")).collect()
    }

    /// Returns the language to its pristine pre-parse state: discards the
    /// nodes and forests created by parsing and invalidates every memo table
    /// and lattice value.
    ///
    /// This is a **single epoch bump**, not a sweep: per-node parse state
    /// (derive memos, nullability values, null-parse forests) is stamped
    /// with the epoch it was written under, so bumping the counter
    /// invalidates all of it at once. No per-node clearing loop runs, no
    /// hash table is rehashed, and no buffer is deallocated — arenas and
    /// pools keep their capacity for the next parse. (The paper clears its
    /// memo hash tables between benchmark rounds; this achieves the same
    /// effect in O(1).)
    pub fn reset(&mut self) {
        let (Some(n), Some(f)) = (self.initial_nodes, self.initial_forests) else {
            return; // never parsed; nothing to reset
        };
        // Roll the arenas back to the initial grammar — extended to the
        // automaton boundary (the arena length at the last state intern),
        // so interned state roots and their reachable subgraphs stay alive
        // and every transition row built so far remains warm for the next
        // parse. Their productivity marks are settled, so the
        // start-of-parse prune pass never rewrites them, and their
        // epoch-stamped memo state dies with the bump below like any other
        // node's. With the automaton idle both boundaries are 0 and this is
        // the plain initial-grammar truncation. Capacity is retained;
        // derived nodes own no per-parse heap (their dependency and memo
        // lists live in the shared pools below), so this drops only
        // reference counts on shared grammar structure.
        self.nodes.truncate(n.max(self.auto.boundary));
        self.forests.truncate(f.max(self.auto.forest_boundary));
        // Truncation reuses node ids, so cached signature digests must die
        // with the nodes they described.
        self.auto.digests.clear();
        // O(1): the pool entries are `Copy`, so `clear` is a length store.
        self.dep_pool.clear();
        self.memo_pool.clear();
        // `class_pool` is intentionally NOT cleared: template rows belong to
        // initial-grammar nodes, which survive the truncation, and their
        // entries are epoch-stamped. Prepass results whose nodes just died
        // are dropped; the first-parse entry (inside the boundary) survives.
        self.prepass_cache.retain(|&(s, out)| s.index() < n && out.index() < n);
        if self.epoch == u32::MAX {
            // Epoch wrap (once every 2³² resets): hard-invalidate all stamps
            // so no node from epoch 1 can alias the new epoch 1.
            for node in &mut self.nodes {
                node.null_epoch = 0;
                node.memo_epoch = 0;
                node.null_parse_epoch = 0;
            }
            for entry in &mut self.class_pool {
                entry.epoch = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.run_label = 0;
        self.names.clear_derived();
        self.metrics = Metrics::default();
        self.in_parse = false;
        self.budget_hit = false;
    }

    /// Records the current arena sizes as the "initial grammar" boundary.
    /// Called automatically at the start of the first parse.
    pub(crate) fn mark_initial(&mut self) {
        if self.initial_nodes.is_none() {
            self.initial_nodes = Some(self.nodes.len());
            self.initial_forests = Some(self.forests.len());
        }
    }

    /// Size of the initial grammar (the paper's `G`), if a parse has run.
    pub fn initial_size(&self) -> Option<usize> {
        self.initial_nodes
    }

    /// Test-only hook to flip the compaction mode on an existing language.
    #[doc(hidden)]
    pub fn set_config_compaction_for_test(&mut self, mode: crate::config::CompactionMode) {
        self.config.compaction = mode;
    }

    /// Renders a node for debugging: kind, children ids, label.
    pub fn describe(&self, id: NodeId) -> String {
        let r = self.resolve(id);
        let n = self.node(r);
        let head = match &n.kind {
            ExprKind::Empty => "∅".to_string(),
            ExprKind::Eps(f) => format!("ε[{}]", f.index()),
            ExprKind::Term(t) => format!("tok {}", self.interner.term_name(*t)),
            ExprKind::Alt(a, b) => format!("∪({}, {})", a.0, b.0),
            ExprKind::Cat(a, b) => format!("◦({}, {})", a.0, b.0),
            ExprKind::Red(a, f) => format!("↪({}, {f:?})", a.0),
            ExprKind::Delta(a) => format!("δ({})", a.0),
            ExprKind::Forward => "forward".to_string(),
            ExprKind::Pending => "pending".to_string(),
            ExprKind::Ref(_) => unreachable!("resolved"),
        };
        match &n.label {
            Some(l) => format!("{l}: {head}"),
            None => head,
        }
    }
}

impl Default for Language {
    fn default() -> Self {
        Language::new(ParserConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nodes() {
        let lang = Language::default();
        assert!(lang.is_empty_node(lang.empty_node()));
        assert!(matches!(lang.kind(lang.eps_node()), ExprKind::Eps(_)));
    }

    #[test]
    fn term_nodes_are_canonical() {
        let mut lang = Language::default();
        let a = lang.terminal("a");
        let n1 = lang.term_node(a);
        let n2 = lang.term_node(a);
        assert_eq!(n1, n2);
    }

    #[test]
    fn forward_define_resolves() {
        let mut lang = Language::default();
        let f = lang.forward();
        let a = lang.terminal("a");
        let body = lang.term_node(a);
        lang.define(f, body);
        assert_eq!(lang.resolve(f), body);
    }

    #[test]
    #[should_panic(expected = "non-forward")]
    fn double_define_panics() {
        let mut lang = Language::default();
        let f = lang.forward();
        let e = lang.eps_node();
        lang.define(f, e);
        lang.define(f, e);
    }

    #[test]
    fn validate_catches_undefined_forward() {
        let mut lang = Language::default();
        let f = lang.forward();
        lang.set_label(f, "Expr");
        let err = lang.validate(f).unwrap_err();
        assert_eq!(err, PwdError::UndefinedNonterminal { label: Some("Expr".into()) });
    }

    #[test]
    fn reachable_count_on_cycle() {
        let mut lang = Language::new(ParserConfig {
            compaction: crate::config::CompactionMode::None,
            ..ParserConfig::improved()
        });
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        let lc = lang.cat(l, tc);
        let body = lang.alt(lc, tc);
        lang.define(l, body);
        // Nodes: Term(c), Cat, Alt — the forward resolves away.
        assert_eq!(lang.reachable_count(l), 3);
    }

    #[test]
    fn labels_render_in_describe() {
        let mut lang = Language::default();
        let f = lang.forward();
        lang.set_label(f, "S");
        assert!(lang.describe(f).starts_with("S:"));
    }
}
