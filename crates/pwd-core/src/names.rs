//! Definition-5 node naming (§3.2).
//!
//! The paper's cubic bound is proved by assigning each node a *unique name*:
//!
//! * **Rule 5a** — initial grammar nodes get a single fresh symbol;
//! * **Rule 5b** — the `∪` node produced by deriving a `◦` node with a
//!   nullable left child by token `c` is named `w•c` (where `w` names the
//!   `◦` node);
//! * **Rule 5c** — every other node created by `derive` is named `wc`.
//!
//! Lemma 7 shows every name has at most one `•`; Theorem 8 bounds the number
//! of possible names — and therefore nodes — by `O(G·n³)`. This module
//! implements the naming so tests and the Figure-5 regenerator can check
//! those statements on real executions.

use crate::expr::NodeId;
use crate::token::TokKey;
use std::collections::HashMap;

/// A Definition-5 node name: an initial symbol, a sequence of token symbols,
/// and at most one `•` position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Name {
    /// Index of the Rule-5a initial symbol.
    pub base: u32,
    /// Token symbols appended by successive derivations (Rules 5b/5c).
    pub syms: Vec<TokKey>,
    /// If present, the `•` sits immediately before `syms[i]` for `bullet ==
    /// Some(i)` (Rule 5b appends `•c`, so the bullet always precedes the
    /// token it was created with).
    pub bullet: Option<usize>,
}

impl Name {
    /// Number of `•` symbols in the name (0 or 1 by construction; tests use
    /// this to check Lemma 7 holds dynamically).
    pub fn bullets(&self) -> usize {
        usize::from(self.bullet.is_some())
    }

    /// Rule 5c: the name `wc`.
    pub fn extend(&self, c: TokKey) -> Name {
        let mut syms = self.syms.clone();
        syms.push(c);
        Name { base: self.base, syms, bullet: self.bullet }
    }

    /// Rule 5b: the name `w•c`.
    pub fn extend_bullet(&self, c: TokKey) -> Name {
        debug_assert!(self.bullet.is_none(), "Lemma 7: a second • can never be added");
        let mut syms = self.syms.clone();
        let bullet = Some(syms.len());
        syms.push(c);
        Name { base: self.base, syms, bullet }
    }
}

/// Storage of node names plus the base-symbol labels used for display.
#[derive(Debug, Default, Clone)]
pub(crate) struct NameStore {
    names: HashMap<NodeId, Name>,
    base_labels: Vec<String>,
}

impl NameStore {
    /// Rule 5a: mint a fresh base symbol for an initial-grammar node.
    pub(crate) fn assign_base(&mut self, node: NodeId, label: String) {
        let base = self.base_labels.len() as u32;
        self.base_labels.push(label);
        self.names.insert(node, Name { base, syms: Vec::new(), bullet: None });
    }

    pub(crate) fn assign(&mut self, node: NodeId, name: Name) {
        self.names.insert(node, name);
    }

    pub(crate) fn get(&self, node: NodeId) -> Option<&Name> {
        self.names.get(&node)
    }

    pub(crate) fn has_base(&self, node: NodeId) -> bool {
        self.names.get(&node).is_some_and(|n| n.syms.is_empty())
    }

    pub(crate) fn base_count(&self) -> usize {
        self.base_labels.len()
    }

    /// Render a name like `Mc1•c2c3`, with token symbols shown via `show`.
    pub(crate) fn render(&self, name: &Name, show: impl Fn(TokKey) -> String) -> String {
        let mut s = self.base_labels[name.base as usize].clone();
        for (i, k) in name.syms.iter().enumerate() {
            if name.bullet == Some(i) {
                s.push('•');
            }
            s.push_str(&show(*k));
        }
        s
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&NodeId, &Name)> {
        self.names.iter()
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }

    pub(crate) fn clear_derived(&mut self) {
        self.names.retain(|_, n| n.syms.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> TokKey {
        TokKey(i)
    }

    #[test]
    fn extend_appends_symbols() {
        let mut store = NameStore::default();
        store.assign_base(NodeId(0), "L".into());
        let n = store.get(NodeId(0)).unwrap().clone();
        let n1 = n.extend(k(1));
        let n2 = n1.extend_bullet(k(2));
        let n3 = n2.extend(k(3));
        assert_eq!(n3.syms, vec![k(1), k(2), k(3)]);
        assert_eq!(n3.bullet, Some(1));
        assert_eq!(n3.bullets(), 1);
    }

    #[test]
    fn render_places_bullet() {
        let mut store = NameStore::default();
        store.assign_base(NodeId(0), "M".into());
        let n = store.get(NodeId(0)).unwrap().clone().extend(k(1)).extend_bullet(k(2)).extend(k(3));
        let s = store.render(&n, |t| format!("c{}", t.0 + 1));
        assert_eq!(s, "Mc2•c3c4");
    }

    #[test]
    #[should_panic(expected = "Lemma 7")]
    #[cfg(debug_assertions)]
    fn second_bullet_is_rejected() {
        let n = Name { base: 0, syms: vec![], bullet: None };
        let n = n.extend_bullet(k(0));
        let _ = n.extend_bullet(k(1));
    }

    #[test]
    fn clear_derived_keeps_bases() {
        let mut store = NameStore::default();
        store.assign_base(NodeId(0), "L".into());
        let derived = store.get(NodeId(0)).unwrap().clone().extend(k(0));
        store.assign(NodeId(1), derived);
        assert_eq!(store.len(), 2);
        store.clear_derived();
        assert_eq!(store.len(), 1);
        assert!(store.has_base(NodeId(0)));
    }
}
