//! The lazy derivative automaton: tier three of the derive cache.
//!
//! # Why a third tier
//!
//! Tier one memoizes `derive` by token value (§4.4); tier two keys it by
//! terminal class, making recognize-mode derivatives lexeme-independent.
//! Both still *walk the derivative graph* for every token: even an all-hit
//! token costs one memo probe per visited node. Worse, the graph nodes a
//! parse flows through do not recur — each token's derivative is a fresh
//! root — so per-node caches alone can never turn the outer loop into a
//! constant-time step.
//!
//! What recurs is *structure*: on real inputs the live derivative settles
//! into a small set of shapes (one per "parser mode" the grammar can be in,
//! LR-state-like), revisited over and over with different node identities.
//! This module interns those shapes. Every derivative root is canonicalized
//! by a structural signature (a canonical DFS of its reachable subgraph);
//! isomorphic roots map to one **state**, and each state owns a dense
//! `TermId → state` transition row plus a cached nullability bit. Once the
//! reachable states are explored, the recognize loop is
//! `state = row[term]` — zero graph construction, memo probes, or hashing —
//! exactly the step `pwd-regex` takes from `deriv.rs` (derivatives
//! interpreted) to `dfa.rs` (derivatives compiled).
//!
//! # Soundness
//!
//! Two facts carry the construction:
//!
//! 1. **Frozen structure.** Within a parse epoch the graph is append-only
//!    below the current token's generation: placeholder patching and
//!    emptiness pruning only rewrite nodes of the generation being built
//!    (and `reset()` preserves interned roots across epochs — their
//!    productivity marks are settled, so the start-of-parse prune pass never
//!    touches them again). States are interned at end-of-step, after the
//!    pruning pass, so a state's signature can never go stale.
//! 2. **Isomorphism ⇒ same language.** The signature ignores exactly the
//!    payloads that cannot affect a recognize-mode verdict: `ε` forests
//!    (every `ε_s` accepts the empty word) and reduction functions (`L ↪ f`
//!    and `L` accept the same strings). Structurally isomorphic roots
//!    therefore denote the same language, so jumping the walk to a state's
//!    canonical root preserves every verdict, reject position, and
//!    [`FeedOutcome`](crate::FeedOutcome) — byte-identically.
//!
//! The automaton only engages under the class-keyed recognize gate
//! ([`AutomatonMode`]'s docs spell it out); everywhere else the axis is
//! inert.
//!
//! # Budget and fallback
//!
//! Rows are built lazily and capped by
//! [`ParserConfig::automaton_max_rows`](crate::ParserConfig::automaton_max_rows).
//! At the cap the automaton freezes: existing rows keep serving table hits,
//! unexplored transitions fall back to the interpreted class-keyed path
//! (counted in [`Metrics::auto_fallbacks`](crate::Metrics::auto_fallbacks)),
//! and the walk re-enters the table whenever a memo hit lands it back on an
//! already-interned node. Freezing loses speed, never answers.

use crate::config::{AutomatonMode, MemoKeying, ParseMode};
use crate::expr::{ExprKind, Language, NodeId, NO_LINK};
use crate::token::TermId;
use std::collections::HashMap;

/// Sentinel for an unexplored transition-row slot.
const UNEXPLORED: u32 = u32::MAX;

/// State flag bits.
const F_DEAD: u8 = 1 << 0;
const F_ACCEPT_KNOWN: u8 = 1 << 1;
const F_ACCEPT: u8 = 1 << 2;

/// Signature-stream marker for a back-reference to an already-visited node
/// (high bit set; the low bits carry the visit index).
const SIG_BACKREF: u32 = 1 << 31;

/// The lazy automaton layer of a [`Language`]: interned derivative states,
/// their dense transition rows, and cached accept bits.
///
/// Everything here is a language-level fact about immortal nodes (interned
/// roots survive `reset()`), so nothing is epoch-stamped: the automaton —
/// and every row already built — stays warm across parses, sessions, and
/// pooled-service checkouts of the same engine.
#[derive(Debug, Clone, Default)]
pub(crate) struct Automaton {
    /// Canonical root node of each state (index = state id).
    pub(crate) roots: Vec<NodeId>,
    /// Per-state flag bits (`F_DEAD`, `F_ACCEPT_KNOWN`, `F_ACCEPT`).
    flags: Vec<u8>,
    /// Dense transition rows, `stride` entries per state, indexed by
    /// `TermId`; `UNEXPLORED` marks a transition not yet taken.
    trans: Vec<u32>,
    /// Row width: the terminal count when the first state was interned
    /// (terminals interned later simply never table-walk).
    stride: usize,
    /// Canonical signature stream of each state, for exact collision checks.
    sigs: Vec<Box<[u32]>>,
    /// Signature hash → candidate states.
    intern: HashMap<u64, Vec<u32>>,
    /// Node-arena length at the last intern; [`Language::reset`] truncates
    /// to at least this, keeping every canonical root *and its reachable
    /// subgraph* (allocated after the root, placeholder-then-patch) alive.
    pub(crate) boundary: usize,
    /// Forest-arena high-water mark at the last intern; retained alongside
    /// the node boundary so no surviving node can reference a dead forest.
    pub(crate) forest_boundary: usize,
    /// The row budget tripped: serve existing rows, intern nothing new.
    frozen: bool,
    /// Scratch buffer for signature streams (reused across interns).
    scratch: Vec<u32>,
    /// Digest cache for [`Language::state_signature`]'s interpreted path,
    /// keyed by resolved node id. Sound because a node's *language* never
    /// changes in place during a parse (kind rewrites are language-
    /// preserving pruning/merging), so a cached digest keeps witnessing
    /// language equality; cleared on arena truncation ([`Language::reset`])
    /// where node ids are reused, and on any in-place kind rewrite, where
    /// ancestors' streams go structurally stale (a missed-convergence cost,
    /// but cheap to rule out entirely since rewrites are rare).
    pub(crate) digests: HashMap<u32, (u64, u32)>,
}

impl Automaton {
    fn step(&self, state: u32, term: TermId) -> Option<u32> {
        if term.index() >= self.stride {
            return None;
        }
        let t = self.trans[state as usize * self.stride + term.index()];
        (t != UNEXPLORED).then_some(t)
    }

    fn dead(&self, state: u32) -> bool {
        self.flags[state as usize] & F_DEAD != 0
    }

    /// Number of explored (non-sentinel) transition entries.
    fn explored(&self) -> usize {
        self.trans.iter().filter(|&&t| t != UNEXPLORED).count()
    }
}

/// A public snapshot of the automaton layer: how many states exist, how full
/// their rows are, and whether the budget froze construction. The
/// diagnostic surface behind `probe --automaton` and the serve-layer
/// table-hit reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct AutomatonStats {
    /// States interned (= transition rows built).
    pub states: usize,
    /// Width of each row (terminal count at first intern).
    pub stride: usize,
    /// Explored transition entries across all rows.
    pub explored_transitions: usize,
    /// States whose accept (nullability) bit has been computed and cached.
    pub accept_cached: usize,
    /// States that are the dead (`∅`) language.
    pub dead_states: usize,
    /// Did construction hit `automaton_max_rows` and freeze?
    pub frozen: bool,
}

impl AutomatonStats {
    /// Fraction of row slots explored, in `[0, 1]` (0 with no states).
    pub fn occupancy(&self) -> f64 {
        let slots = self.states * self.stride;
        if slots == 0 {
            0.0
        } else {
            self.explored_transitions as f64 / slots as f64
        }
    }
}

/// A comparable identity of a derivative state, for detecting that two
/// parse positions carry the *same language* — the convergence test behind
/// incremental edit splicing (equal signatures at the same token alignment
/// mean the suffix refeed can stop early).
///
/// Two representations, never equal across each other:
///
/// - [`State`](StateSignature::State): the interned automaton state id —
///   exact (interning is backed by a full canonical-stream comparison) and
///   `O(1)` to obtain when the lazy automaton is active and the node is
///   interned.
/// - [`Digest`](StateSignature::Digest): the 64-bit FNV-1a hash of the
///   node's canonical signature stream plus the stream length. Equal
///   digests are equal languages up to a ~2⁻⁶⁴ hash collision; callers use
///   this as a *fast path*, never as the source of truth for verdicts (a
///   wrong jump is caught by nothing, so the risk budget is the same one
///   already accepted for the automaton's intern hash pre-filter — which
///   additionally verifies streams; here the stream-length check narrows
///   collisions to same-length streams).
///
/// Mixed representations across an edit (one side interned, the other not)
/// simply never compare equal — a lost fast-path opportunity, never an
/// unsoundness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateSignature {
    /// An interned lazy-automaton state id (exact).
    State(u32),
    /// FNV-1a digest of the canonical signature stream, plus stream length.
    Digest(u64, u32),
}

impl Language {
    /// Is the lazy automaton engaged for this configuration? Exactly the
    /// class-keyed recognize gate: derivatives must be lexeme-independent
    /// (class keying, recognize mode) and anonymous (naming embeds token
    /// values into nodes, breaking structural recurrence).
    #[inline]
    pub(crate) fn automaton_active(&self) -> bool {
        self.config.automaton == AutomatonMode::Lazy
            && self.config.mode == ParseMode::Recognize
            && self.config.keying == MemoKeying::ByClass
            && !self.config.naming
    }

    /// The interned state a node (after `Ref` resolution) is known to belong
    /// to, if any.
    #[inline]
    pub(crate) fn auto_state_of(&self, id: NodeId) -> Option<u32> {
        let st = self.node(self.resolve(id)).auto_state;
        (st != NO_LINK).then_some(st)
    }

    /// One table-walk step: the cached transition of `state` by `term`, as
    /// `(canonical next root, next state, next is dead)`. `None` is a miss
    /// (unexplored edge, or a terminal wider than the rows) — the caller
    /// runs the interpreted path and records the result.
    #[inline]
    pub(crate) fn auto_try_step(
        &mut self,
        state: u32,
        term: TermId,
    ) -> Option<(NodeId, u32, bool)> {
        let ns = self.auto.step(state, term)?;
        self.metrics.auto_table_hits += 1;
        Some((self.auto.roots[ns as usize], ns, self.auto.dead(ns)))
    }

    /// Interns the derivative rooted at `id` as an automaton state,
    /// returning its id — an existing state when an isomorphic root was
    /// interned before, a fresh state (and transition row) otherwise, or
    /// `None` once the row budget has frozen construction.
    ///
    /// Must be called at end-of-step only (after the token's pruning pass),
    /// when the root's reachable subgraph is final for this epoch.
    pub(crate) fn auto_intern(&mut self, id: NodeId) -> Option<u32> {
        let id = self.resolve(id);
        if let Some(st) = self.auto_state_of(id) {
            return Some(st);
        }
        if self.auto.frozen {
            return None;
        }
        if self.auto.stride == 0 {
            // First intern fixes the row width. A grammar with no terminals
            // never takes a token step, so rows would be useless anyway.
            let terms = self.interner.term_count();
            if terms == 0 {
                return None;
            }
            self.auto.stride = terms;
        }
        let span = self.obs_start();
        let hash = self.auto_signature(id);
        // Exact collision check: candidate states under this hash must match
        // the canonical stream, not just the 64-bit digest.
        let mut found = None;
        if let Some(cands) = self.auto.intern.get(&hash) {
            for &cand in cands {
                if *self.auto.sigs[cand as usize] == self.auto.scratch[..] {
                    found = Some(cand);
                    break;
                }
            }
        }
        if let Some(st) = found {
            self.nodes[id.index()].auto_state = st;
            self.obs_end(pwd_obs::Phase::AutoRow, span);
            return Some(st);
        }
        if self.auto.roots.len() >= self.config.automaton_max_rows {
            self.auto.frozen = true;
            self.obs_end(pwd_obs::Phase::AutoRow, span);
            return None;
        }
        let st = self.auto.roots.len() as u32;
        let dead = matches!(self.node(id).kind, ExprKind::Empty);
        // A dead state never accepts, so its bit is known at birth.
        let flags = if dead { F_DEAD | F_ACCEPT_KNOWN } else { 0 };
        self.auto.roots.push(id);
        self.auto.flags.push(flags);
        self.auto.sigs.push(self.auto.scratch.clone().into_boxed_slice());
        self.auto.trans.extend(std::iter::repeat_n(UNEXPLORED, self.auto.stride));
        self.auto.intern.entry(hash).or_default().push(st);
        // The root is allocated *first* in its generation (placeholder-then-
        // patch), so its reachable subgraph sits at higher indices — the
        // boundary must cover the whole arena as of now, not just the root.
        self.auto.boundary = self.auto.boundary.max(self.nodes.len());
        self.auto.forest_boundary = self.auto.forest_boundary.max(self.forests.len());
        self.nodes[id.index()].auto_state = st;
        self.metrics.auto_rows_built += 1;
        self.obs_end(pwd_obs::Phase::AutoRow, span);
        Some(st)
    }

    /// Records the explored transition `from --term--> to`.
    #[inline]
    pub(crate) fn auto_record(&mut self, from: u32, term: TermId, to: u32) {
        if term.index() < self.auto.stride {
            self.auto.trans[from as usize * self.auto.stride + term.index()] = to;
        }
    }

    /// The accept (nullability) bit of a state: computed once per state via
    /// the ordinary `nullable?` fixed point, O(1) ever after. Nullability is
    /// a pure function of the root's frozen structure, so the cached bit is
    /// valid for the lifetime of the state — across parses and resets.
    pub(crate) fn auto_accept(&mut self, state: u32) -> bool {
        let f = self.auto.flags[state as usize];
        if f & F_ACCEPT_KNOWN != 0 {
            return f & F_ACCEPT != 0;
        }
        let root = self.auto.roots[state as usize];
        let accept = self.nullable(root);
        self.auto.flags[state as usize] |= F_ACCEPT_KNOWN | if accept { F_ACCEPT } else { 0 };
        accept
    }

    /// The accept verdict of a final derivative node, via the state cache
    /// when the node is an interned state, via `nullable?` otherwise.
    #[inline]
    pub(crate) fn accept_of(&mut self, id: NodeId) -> bool {
        if self.automaton_active() {
            if let Some(st) = self.auto_state_of(id) {
                return self.auto_accept(st);
            }
        }
        self.nullable(id)
    }

    /// Canonical signature of the subgraph reachable from `id`, written to
    /// `self.auto.scratch`; returns its 64-bit FNV-1a digest.
    ///
    /// The stream is a pre-order DFS with back-references: first visit of a
    /// node emits its kind tag (plus `TermId` payload for terminals),
    /// revisits emit the node's visit index. `ε` forests and reduction
    /// functions are deliberately *not* emitted — they cannot affect a
    /// recognize verdict — so states merge across those payloads. Two roots
    /// produce equal streams iff their reachable graphs are isomorphic as
    /// ordered, shared-structure-preserving graphs, which implies equal
    /// languages.
    fn auto_signature(&mut self, id: NodeId) -> u64 {
        let mut scratch = std::mem::take(&mut self.auto.scratch);
        scratch.clear();
        let mut index: HashMap<u32, u32> = HashMap::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let n = self.resolve(n);
            if let Some(&i) = index.get(&n.0) {
                scratch.push(SIG_BACKREF | i);
                continue;
            }
            index.insert(n.0, index.len() as u32);
            match &self.node(n).kind {
                ExprKind::Empty => scratch.push(1),
                ExprKind::Eps(_) => scratch.push(2),
                ExprKind::Term(t) => {
                    scratch.push(3);
                    scratch.push(t.index() as u32);
                }
                ExprKind::Alt(a, b) => {
                    scratch.push(4);
                    stack.push(*b);
                    stack.push(*a);
                }
                ExprKind::Cat(a, b) => {
                    scratch.push(5);
                    stack.push(*b);
                    stack.push(*a);
                }
                ExprKind::Red(x, _) => {
                    scratch.push(6);
                    stack.push(*x);
                }
                ExprKind::Delta(x) => {
                    scratch.push(7);
                    stack.push(*x);
                }
                // States are interned on validated graphs at end-of-step,
                // where neither form can be reachable.
                ExprKind::Forward | ExprKind::Pending => {
                    debug_assert!(false, "signature over an unfinished node");
                    scratch.push(8);
                }
                ExprKind::Ref(_) => unreachable!("resolved"),
            }
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &scratch {
            hash ^= u64::from(w);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.auto.scratch = scratch;
        hash
    }

    /// The [`StateSignature`] of the derivative rooted at `id`: the interned
    /// automaton state id when the lazy automaton is active and the node is
    /// interned (`O(1)`), the canonical-stream digest otherwise.
    ///
    /// Only meaningful as an equality witness between two positions of the
    /// *same* `Language` within one epoch (state ids and node structure are
    /// engine-local). Callers gate on recognize mode themselves: equal
    /// signatures witness equal *languages*, not equal forests, so parse
    /// mode must not use them to skip work.
    pub fn state_signature(&mut self, id: NodeId) -> StateSignature {
        if self.automaton_active() {
            if let Some(st) = self.auto_state_of(id) {
                return StateSignature::State(st);
            }
        }
        // Derivative states are memoized nodes, so the same id recurs at
        // every aligned reparse position — cache the DFS so incremental
        // refeeds over already-digested territory are O(1) per token.
        let id = self.resolve(id);
        if let Some(&(hash, len)) = self.auto.digests.get(&id.0) {
            return StateSignature::Digest(hash, len);
        }
        let hash = self.auto_signature(id);
        let len = self.auto.scratch.len() as u32;
        self.auto.digests.insert(id.0, (hash, len));
        StateSignature::Digest(hash, len)
    }

    /// Clears the automaton and every node's state mapping. The correctness
    /// escape hatch for the (never expected) case of an interned root's kind
    /// being rewritten in place; rows are rebuilt lazily afterwards.
    pub(crate) fn auto_clear(&mut self) {
        for node in &mut self.nodes {
            node.auto_state = NO_LINK;
        }
        self.auto = Automaton::default();
    }

    /// Reacts to a node's kind being rewritten in place: drops the node's
    /// state mapping, and — should the node be a state's canonical root —
    /// discards the automaton wholesale rather than serve stale rows.
    #[inline]
    pub(crate) fn auto_node_invalidated(&mut self, id: NodeId, state: u32) {
        if self.auto.roots.get(state as usize) == Some(&id) {
            self.auto_clear();
        }
    }

    /// A snapshot of the automaton layer (states, row occupancy, cached
    /// accept bits, freeze status) — see [`AutomatonStats`].
    pub fn automaton_stats(&self) -> AutomatonStats {
        AutomatonStats {
            states: self.auto.roots.len(),
            stride: self.auto.stride,
            explored_transitions: self.auto.explored(),
            accept_cached: self.auto.flags.iter().filter(|&&f| f & F_ACCEPT_KNOWN != 0).count(),
            dead_states: self.auto.flags.iter().filter(|&&f| f & F_DEAD != 0).count(),
            frozen: self.auto.frozen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParserConfig;
    use crate::token::Token;

    fn recognizer_config() -> ParserConfig {
        ParserConfig { mode: ParseMode::Recognize, ..ParserConfig::improved() }
    }

    /// S = a b | a S b, the matched-pairs language.
    fn ab_language(config: ParserConfig) -> (Language, NodeId, Token, Token) {
        let mut lang = Language::new(config);
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let (ta, tb) = (lang.term_node(a), lang.term_node(b));
        let s = lang.forward();
        let ab = lang.cat(ta, tb);
        let asb = lang.seq(&[ta, s, tb]);
        let body = lang.alt(ab, asb);
        lang.define(s, body);
        let tok_a = lang.token(a, "a");
        let tok_b = lang.token(b, "b");
        (lang, s, tok_a, tok_b)
    }

    #[test]
    fn activity_gate() {
        assert!(Language::new(recognizer_config()).automaton_active());
        // Parse mode, naming, value keying, and Off each disarm it.
        assert!(!Language::new(ParserConfig::improved()).automaton_active());
        assert!(!Language::new(ParserConfig::named_recognizer()).automaton_active());
        let off = ParserConfig { automaton: AutomatonMode::Off, ..recognizer_config() };
        assert!(!Language::new(off).automaton_active());
        let by_value = ParserConfig { keying: MemoKeying::ByValue, ..recognizer_config() };
        assert!(!Language::new(by_value).automaton_active());
    }

    #[test]
    fn states_recur_across_runs_and_resets() {
        let (mut lang, s, a, b) = ab_language(recognizer_config());
        let input: Vec<Token> = vec![a.clone(), a.clone(), b.clone(), b.clone()];
        assert!(lang.recognize(s, &input).unwrap());
        let cold = *lang.metrics();
        let built_cold = cold.auto_rows_built;
        assert!(built_cold > 0, "first run must intern states: {cold:?}");

        // Same input again after reset: the table is warm, every step hits.
        lang.reset();
        assert!(lang.recognize(s, &input).unwrap());
        let warm = *lang.metrics();
        assert_eq!(warm.auto_rows_built, 0, "no new rows on a warm run: {warm:?}");
        assert_eq!(warm.auto_table_hits, input.len() as u64, "all steps from the table: {warm:?}");
        assert_eq!(warm.derive_calls, 0, "table hits bypass derive entirely: {warm:?}");
    }

    #[test]
    fn rejection_positions_match_interpreted() {
        let on = recognizer_config();
        let off = ParserConfig { automaton: AutomatonMode::Off, ..on };
        let (mut lang_on, s_on, a, b) = ab_language(on);
        let (mut lang_off, s_off, _, _) = ab_language(off);
        let cases: Vec<Vec<Token>> = vec![
            vec![],
            vec![a.clone()],
            vec![b.clone()],
            vec![a.clone(), b.clone()],
            vec![a.clone(), b.clone(), b.clone()],
            vec![a.clone(), a.clone(), b.clone(), b.clone()],
            vec![b.clone(), a.clone()],
            vec![a.clone(), a.clone(), a.clone(), b.clone(), b.clone(), b.clone()],
        ];
        // Run the whole case list twice without interleaved resets per case,
        // so the automaton-on engine crosses cold and warm regimes.
        for round in 0..2 {
            for toks in &cases {
                lang_on.reset();
                lang_off.reset();
                let v_on = lang_on.recognize(s_on, toks).unwrap();
                let v_off = lang_off.recognize(s_off, toks).unwrap();
                assert_eq!(v_on, v_off, "round {round}, input {toks:?}");
                let d_on = lang_on.derivative(s_on, toks).unwrap();
                let d_off = lang_off.derivative(s_off, toks).unwrap();
                assert_eq!(
                    lang_on.is_empty_node(d_on),
                    lang_off.is_empty_node(d_off),
                    "round {round}, input {toks:?}"
                );
                lang_on.reset();
                lang_off.reset();
            }
        }
    }

    #[test]
    fn tiny_budget_freezes_and_falls_back() {
        let config = ParserConfig { automaton_max_rows: 2, ..recognizer_config() };
        let (mut lang, s, a, b) = ab_language(config);
        let input: Vec<Token> =
            std::iter::repeat_n(a.clone(), 6).chain(std::iter::repeat_n(b.clone(), 6)).collect();
        assert!(lang.recognize(s, &input).unwrap());
        let stats = lang.automaton_stats();
        assert!(stats.frozen, "budget of 2 must freeze on this input: {stats:?}");
        assert!(stats.states <= 2, "{stats:?}");
        assert!(lang.metrics().auto_fallbacks > 0, "{:?}", lang.metrics());
        // Frozen ≠ wrong: verdicts still agree with the interpreted engine.
        let off = ParserConfig { automaton: AutomatonMode::Off, ..config };
        let (mut lang_off, s_off, _, _) = ab_language(off);
        for n in 0..5 {
            lang.reset();
            lang_off.reset();
            let toks: Vec<Token> = std::iter::repeat_n(a.clone(), n)
                .chain(std::iter::repeat_n(b.clone(), n))
                .collect();
            assert_eq!(
                lang.recognize(s, &toks).unwrap(),
                lang_off.recognize(s_off, &toks).unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn stats_report_occupancy() {
        let (mut lang, s, a, b) = ab_language(recognizer_config());
        let input = vec![a.clone(), b.clone()];
        assert!(lang.recognize(s, &input).unwrap());
        let stats = lang.automaton_stats();
        assert!(stats.states > 0);
        assert_eq!(stats.stride, 2, "two terminals");
        assert!(stats.occupancy() > 0.0 && stats.occupancy() <= 1.0);
        assert!(!stats.frozen);
        let empty = AutomatonStats::default();
        assert_eq!(empty.occupancy(), 0.0);
    }

    #[test]
    fn signature_merges_isomorphic_roots_only() {
        let mut lang = Language::new(recognizer_config());
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let (ta, tb) = (lang.term_node(a), lang.term_node(b));
        let cat1 = lang.cat(ta, tb);
        let cat2 = lang.cat(ta, tb); // isomorphic to cat1 (may hash-cons)
        let cat3 = lang.cat(tb, ta); // different structure
        lang.mark_initial();
        let s1 = lang.auto_intern(cat1).unwrap();
        let s2 = lang.auto_intern(cat2).unwrap();
        let s3 = lang.auto_intern(cat3).unwrap();
        assert_eq!(s1, s2, "isomorphic roots intern to one state");
        assert_ne!(s1, s3, "order matters: a◦b is not b◦a");
    }

    #[test]
    fn accept_bits_cache_nullability() {
        let (mut lang, s, a, b) = ab_language(recognizer_config());
        let input = vec![a.clone(), b.clone()];
        assert!(lang.recognize(s, &input).unwrap());
        let stats = lang.automaton_stats();
        assert!(stats.accept_cached > 0, "final-node accept checks must cache: {stats:?}");
        // The cached bits answer without new nullable runs on a warm rerun.
        lang.reset();
        assert!(lang.recognize(s, &input).unwrap());
        assert_eq!(lang.metrics().nullable_runs, 0, "{:?}", lang.metrics());
    }
}
