//! Graphviz export of grammar graphs and parse forests.
//!
//! The paper's Figures 4 and 5 are drawings of grammar graphs before and
//! after derivation; this module renders the same pictures from live
//! engines (`dot -Tsvg` ready), which is invaluable when studying how
//! compaction reshapes derivatives.

use crate::expr::{ExprKind, Language, NodeId};
use pwd_forest::ForestId;
use std::fmt::Write as _;

impl Language {
    /// Renders the grammar graph reachable from `start` in Graphviz DOT
    /// format. Node labels show the expression form, any attached label,
    /// and the Definition-5 name when naming is enabled.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_core::Language;
    /// let mut lang = Language::default();
    /// let a = lang.terminal("a");
    /// let ta = lang.term_node(a);
    /// let s = lang.star(ta);
    /// let dot = lang.to_dot(s);
    /// assert!(dot.starts_with("digraph grammar"));
    /// assert!(dot.contains("∪"));
    /// ```
    pub fn to_dot(&self, start: NodeId) -> String {
        let mut out =
            String::from("digraph grammar {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n");
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            let id = self.resolve(id);
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            let node = self.node(id);
            let (shape, text) = match &node.kind {
                ExprKind::Empty => ("plaintext", "∅".to_string()),
                ExprKind::Eps(f) => ("plaintext", format!("ε[f{}]", f.index())),
                ExprKind::Term(t) => ("box", format!("tok {}", self.terminal_name(*t))),
                ExprKind::Alt(..) => ("circle", "∪".to_string()),
                ExprKind::Cat(..) => ("circle", "◦".to_string()),
                ExprKind::Red(_, f) => ("diamond", format!("↪ {f:?}")),
                ExprKind::Delta(_) => ("circle", "δ".to_string()),
                ExprKind::Forward => ("plaintext", "forward?".to_string()),
                ExprKind::Pending => ("plaintext", "pending…".to_string()),
                ExprKind::Ref(_) => unreachable!("resolved"),
            };
            let mut label = text;
            if let Some(l) = &node.label {
                label = format!("{l}: {label}");
            }
            if let Some(name) = self.node_name(id) {
                let _ = write!(label, "\\n{name}");
            }
            let _ = writeln!(
                out,
                "  n{} [shape={shape} label=\"{}\"];",
                id.index(),
                label.replace('"', "\\\"")
            );
            let mut edge = |child: NodeId, tag: &str, out: &mut String| {
                let child = self.resolve(child);
                let _ = writeln!(out, "  n{} -> n{} [label=\"{tag}\"];", id.index(), child.index());
                stack.push(child);
            };
            match &node.kind {
                ExprKind::Alt(a, b) | ExprKind::Cat(a, b) => {
                    edge(*a, "L", &mut out);
                    edge(*b, "R", &mut out);
                }
                ExprKind::Red(x, _) | ExprKind::Delta(x) => edge(*x, "", &mut out),
                _ => {}
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders a parse forest in DOT format (ambiguity nodes as double
    /// circles) — a thin delegate to the shared [`pwd_forest::Forest::to_dot`]
    /// export, so every backend's forests draw identically.
    pub fn forest_to_dot(&self, root: ForestId) -> String {
        self.forests.to_dot(root)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Language, ParserConfig};

    fn sample() -> (Language, crate::NodeId, Vec<crate::Token>) {
        let mut lang = Language::new(ParserConfig::improved());
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        let l = lang.forward();
        lang.set_label(l, "L");
        let ll = lang.cat(l, l);
        let body = lang.alt(ll, tc);
        lang.define(l, body);
        let tok = lang.token(c, "c");
        (lang, l, vec![tok; 3])
    }

    #[test]
    fn grammar_dot_is_wellformed() {
        let (lang, l, _) = sample();
        let dot = lang.to_dot(l);
        assert!(dot.starts_with("digraph grammar {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("tok c"));
        assert!(dot.matches("->").count() >= 3);
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn forest_dot_includes_ambiguity() {
        let (mut lang, l, toks) = sample();
        let forest = lang.parse_forest(l, &toks).unwrap();
        let dot = lang.forest_to_dot(forest);
        assert!(dot.starts_with("digraph forest {"));
        assert!(dot.contains("doublecircle"), "aⁿ parse of L=(L∘L)∪c is ambiguous:\n{dot}");
        assert!(dot.contains("\\\"c\\\""), "escaped leaf lexeme present:\n{dot}");
    }

    #[test]
    fn dot_with_names() {
        let mut lang = Language::new(ParserConfig::named_recognizer());
        let c = lang.terminal("c");
        let tc = lang.term_node(c);
        lang.set_label(tc, "N");
        let tok = lang.token(c, "c1");
        assert!(lang.recognize(tc, &[tok]).unwrap());
        let dot = lang.to_dot(tc);
        assert!(dot.contains("\\nN\""), "base name rendered: {dot}");
    }
}
