//! Error types for the PWD engine.

use crate::token::Token;
use std::fmt;

/// Errors produced by parsing with derivatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PwdError {
    /// The input is not in the language. `position` is the index of the
    /// first token at which the parse became impossible (or the input
    /// length, when every token was consumed but the final language was not
    /// nullable).
    Rejected {
        /// Token index where the derivative became the empty language, or
        /// the input length if rejection was only detected at the end.
        position: usize,
        /// The offending token, if rejection happened mid-input.
        token: Option<Token>,
    },
    /// The configured [`max_nodes`](crate::ParserConfig::max_nodes) budget
    /// was exceeded while deriving.
    NodeBudgetExceeded {
        /// The configured budget.
        limit: usize,
        /// Index of the token being derived when the budget tripped.
        at_token: usize,
    },
    /// A grammar node created with [`Language::forward`](crate::Language::forward)
    /// was never defined with [`Language::define`](crate::Language::define).
    UndefinedNonterminal {
        /// The label attached to the undefined node, if any.
        label: Option<String>,
    },
}

impl fmt::Display for PwdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PwdError::Rejected { position, token: Some(t) } => {
                write!(f, "input rejected at token {position} ({:?})", t.lexeme())
            }
            PwdError::Rejected { position, token: None } => {
                write!(f, "input rejected at end of input (position {position})")
            }
            PwdError::NodeBudgetExceeded { limit, at_token } => {
                write!(f, "node budget of {limit} exceeded while deriving token {at_token}")
            }
            PwdError::UndefinedNonterminal { label: Some(l) } => {
                write!(f, "nonterminal {l:?} was declared with forward() but never defined")
            }
            PwdError::UndefinedNonterminal { label: None } => {
                write!(f, "a nonterminal was declared with forward() but never defined")
            }
        }
    }
}

impl std::error::Error for PwdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PwdError::Rejected { position: 3, token: None };
        assert!(e.to_string().contains("position 3"));
        let e = PwdError::NodeBudgetExceeded { limit: 10, at_token: 2 };
        assert!(e.to_string().contains("budget of 10"));
        let e = PwdError::UndefinedNonterminal { label: Some("Expr".into()) };
        assert!(e.to_string().contains("Expr"));
    }
}
