//! Engine-side observability: per-[`Language`] span timing and trace
//! capture, behind the zero-overhead-when-off contract.
//!
//! The contract has two layers (see the `pwd-obs` crate docs):
//!
//! * **Compile time** — with the `obs` cargo feature off (the crate builds
//!   with `--no-default-features`), every hook body below compiles to
//!   nothing: no `Instant::now()`, no branch on the hot path.
//! * **Run time** — with the feature on (the default), each hook first
//!   checks the per-engine sink ([`Language::enable_obs`] installs it;
//!   engines start with none). Until a sink is installed the only cost is
//!   one branch on an `Option` discriminant the engine already has in
//!   cache; in particular **no clock is read**. The `obs_overhead` bench
//!   gates this at ≤2% recognize-throughput regression.
//!
//! What gets recorded, when enabled: per-phase duration histograms
//! ([`Phase::Derive`], [`Phase::Compact`], [`Phase::Nullable`],
//! [`Phase::AutoRow`], [`Phase::Forest`]) with exact count/sum, and —
//! when tracing is requested too — one Chrome `trace_event` span per
//! recorded phase, exportable via [`pwd_obs::chrome_trace_json`].

use crate::expr::Language;
use pwd_obs::{Phase, PhaseStats, TraceEvent};
use std::time::Instant;

/// The installed sink: phase histograms, plus an optional trace buffer.
#[derive(Debug, Clone)]
pub(crate) struct LangObs {
    pub(crate) phases: PhaseStats,
    pub(crate) trace: Option<TraceState>,
}

/// Trace capture state: a clock zero and the recorded spans.
// With the feature off, `enable_obs` never constructs this, so `zero` is
// only read from feature-gated code.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
#[derive(Debug, Clone)]
pub(crate) struct TraceState {
    zero: Instant,
    events: Vec<TraceEvent>,
}

impl Language {
    /// Installs (or reinstalls, clearing previous data) the observability
    /// sink: subsequent parses record per-phase duration histograms, and —
    /// with `trace` — individual Chrome-trace spans retrievable via
    /// [`take_trace`](Language::take_trace).
    ///
    /// Phase data accumulates across parses and [`reset`](Language::reset)s
    /// (like the automaton, it is engine-lifetime state);
    /// [`reset_metrics`](Language::reset_metrics) clears it alongside the
    /// counters. Compiled with the `obs` feature off, this is a no-op and
    /// [`obs_enabled`](Language::obs_enabled) stays `false`.
    pub fn enable_obs(&mut self, trace: bool) {
        #[cfg(feature = "obs")]
        {
            self.obs = Some(Box::new(LangObs {
                phases: PhaseStats::new(),
                trace: trace.then(|| TraceState { zero: Instant::now(), events: Vec::new() }),
            }));
        }
        #[cfg(not(feature = "obs"))]
        let _ = trace;
    }

    /// Removes the sink; hooks fall back to the single disabled-check.
    pub fn disable_obs(&mut self) {
        self.obs = None;
    }

    /// Is a sink installed (and the `obs` feature compiled in)?
    #[inline]
    pub fn obs_enabled(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.obs.is_some()
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// The accumulated per-phase histograms, if observability is enabled.
    pub fn obs_phases(&self) -> Option<&PhaseStats> {
        self.obs.as_ref().map(|o| &o.phases)
    }

    /// Records an externally timed span under `phase` — for layers above
    /// the engine (e.g. error recovery in `derp::api`) whose work spans
    /// several engine calls. Histogram-only: no trace event is emitted,
    /// because the caller's clock zero is not this engine's. A no-op until
    /// [`enable_obs`](Language::enable_obs) installs a sink.
    pub fn note_phase(&mut self, phase: Phase, nanos: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.phases.record(phase, nanos);
        }
    }

    /// Drains the captured trace spans (empty unless
    /// [`enable_obs`](Language::enable_obs) was called with `trace`).
    /// Timestamps are nanoseconds since tracing was enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.obs
            .as_deref_mut()
            .and_then(|o| o.trace.as_mut())
            .map(|t| std::mem::take(&mut t.events))
            .unwrap_or_default()
    }

    /// Approximate resident bytes of the engine's arenas: grammar nodes,
    /// forest nodes, and the pooled memo/dependency/template storage. An
    /// O(1) estimate from arena lengths (not a malloc census), intended for
    /// session-size accounting and capacity dashboards.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<crate::expr::Node>()
            + self.forests.len() * size_of::<pwd_forest::ForestNode>()
            + self.dep_pool.len() * size_of::<crate::expr::DepEntry>()
            + self.memo_pool.len() * size_of::<crate::expr::MemoEntry>()
            + self.class_pool.len() * size_of::<crate::expr::ClassEntry>()
    }

    /// Starts a span clock — `None` (and no clock read) when observability
    /// is off. Pair with [`obs_end`](Language::obs_end).
    #[inline]
    pub(crate) fn obs_start(&self) -> Option<Instant> {
        if self.obs_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started by [`obs_start`](Language::obs_start), recording
    /// its duration under `phase` (and as a trace span when tracing).
    #[inline]
    pub(crate) fn obs_end(&mut self, phase: Phase, started: Option<Instant>) {
        #[cfg(feature = "obs")]
        if let Some(t0) = started {
            let dur = t0.elapsed().as_nanos() as u64;
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.phases.record(phase, dur);
                if let Some(tr) = obs.trace.as_mut() {
                    let ts = t0.duration_since(tr.zero).as_nanos() as u64;
                    tr.events.push(TraceEvent::new(phase.as_str(), ts, dur));
                }
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = (phase, started);
    }

    /// Clears accumulated phase data (keeping the sink installed).
    pub(crate) fn clear_obs_data(&mut self) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.phases = PhaseStats::new();
            if let Some(tr) = obs.trace.as_mut() {
                tr.events.clear();
            }
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use crate::{Language, ParserConfig};
    use pwd_obs::Phase;

    fn ab_language() -> (Language, crate::NodeId, crate::Token, crate::Token) {
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let (ta, tb) = (lang.term_node(a), lang.term_node(b));
        let s = lang.forward();
        let ab = lang.cat(ta, tb);
        let asb = lang.seq(&[ta, s, tb]);
        let body = lang.alt(ab, asb);
        lang.define(s, body);
        let tok_a = lang.token(a, "a");
        let tok_b = lang.token(b, "b");
        (lang, s, tok_a, tok_b)
    }

    #[test]
    fn disabled_by_default_and_enable_records() {
        let (mut lang, s, a, b) = ab_language();
        assert!(!lang.obs_enabled());
        assert!(lang.obs_phases().is_none());
        let input = vec![a.clone(), a, b.clone(), b];
        assert!(lang.recognize(s, &input).unwrap());
        assert!(lang.obs_phases().is_none(), "no sink, nothing recorded");

        lang.enable_obs(false);
        lang.reset();
        assert!(lang.recognize(s, &input).unwrap());
        let phases = lang.obs_phases().unwrap();
        assert!(phases.get(Phase::Derive).count() > 0, "derive spans recorded");
        assert_eq!(phases.get(Phase::Lex).count(), 0, "engine never lexes");
        assert!(lang.take_trace().is_empty(), "tracing was not requested");
    }

    #[test]
    fn trace_spans_cover_phases() {
        let (mut lang, s, a, b) = ab_language();
        lang.enable_obs(true);
        assert!(lang.recognize(s, &[a.clone(), b.clone()]).unwrap());
        lang.reset();
        lang.parse_forest(s, &[a, b]).unwrap();
        let events = lang.take_trace();
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e.name == "derive"), "{events:?}");
        assert!(events.iter().any(|e| e.name == "forest"), "{events:?}");
        assert!(lang.take_trace().is_empty(), "drained");
    }

    #[test]
    fn arena_bytes_grows_with_parsing() {
        let (mut lang, s, a, b) = ab_language();
        let before = lang.arena_bytes();
        assert!(before > 0);
        assert!(lang.recognize(s, &[a.clone(), a, b.clone(), b]).unwrap());
        assert!(lang.arena_bytes() > before, "derived nodes occupy arena bytes");
    }

    #[test]
    fn reset_metrics_clears_phase_data() {
        let (mut lang, s, a, b) = ab_language();
        lang.enable_obs(false);
        assert!(lang.recognize(s, &[a, b]).unwrap());
        assert!(!lang.obs_phases().unwrap().is_empty());
        lang.reset_metrics();
        assert!(lang.obs_phases().unwrap().is_empty(), "cleared with the counters");
        assert!(lang.obs_enabled(), "sink survives the clear");
    }
}
