//! Memoization of `derive` (§4.4).
//!
//! Two strategies:
//!
//! * [`MemoStrategy::FullHash`](crate::MemoStrategy::FullHash) — the nested
//!   hash tables of Might et al. (2011), realized here as one global map
//!   keyed by `(node, token)`.
//! * [`MemoStrategy::SingleEntry`](crate::MemoStrategy::SingleEntry) — the
//!   paper's improvement: two fields on each node acting as a one-entry
//!   cache that evicts on conflict. Forgetful (Figure 11), but avoids all
//!   hashing on the hot path (Figure 12).
//!
//! The memo is keyed by token *value* ([`TokKey`]), not input position, so a
//! recurring token can hit an entry created earlier in the input — the exact
//! effect Figures 10–12 measure.

use crate::config::MemoStrategy;
use crate::expr::{Language, NodeId};
use crate::token::TokKey;
use std::collections::HashMap;

impl Language {
    /// Looks up the memoized derivative of `id` by token `key`.
    pub(crate) fn memo_get(&self, id: NodeId, key: TokKey) -> Option<NodeId> {
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                let n = self.node(id);
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else {
                    None
                }
            }
            MemoStrategy::DualEntry => {
                let n = self.node(id);
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else if n.memo_key2 == Some(key) {
                    Some(n.memo_val2)
                } else {
                    None
                }
            }
            MemoStrategy::FullHash => self.full_memo.get(&(id, key)).copied(),
        }
    }

    /// Records the derivative of `id` by token `key`.
    pub(crate) fn memo_put(&mut self, id: NodeId, key: TokKey, val: NodeId) {
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                let evicted = {
                    let n = self.node_mut(id);
                    let evicted = n.memo_key.is_some() && n.memo_key != Some(key);
                    n.memo_key = Some(key);
                    n.memo_val = val;
                    evicted
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::DualEntry => {
                let evicted = {
                    let n = self.node_mut(id);
                    if n.memo_key == Some(key) {
                        n.memo_val = val;
                        false
                    } else {
                        // Demote the newest entry to the second slot,
                        // dropping the oldest.
                        let evicted = n.memo_key2.is_some() && n.memo_key2 != Some(key);
                        n.memo_key2 = n.memo_key;
                        n.memo_val2 = n.memo_val;
                        n.memo_key = Some(key);
                        n.memo_val = val;
                        evicted
                    }
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::FullHash => {
                self.full_memo.insert((id, key), val);
            }
        }
    }

    /// Census of derive-memo entries per node (Figure 10): for every node
    /// holding at least one memo entry, how many entries it holds.
    ///
    /// Under `SingleEntry` every occupied node reports exactly 1 by
    /// construction, so the census is only informative under `FullHash`.
    pub fn memo_entry_counts(&self) -> Vec<u32> {
        match self.config.memo {
            MemoStrategy::SingleEntry => self
                .nodes
                .iter()
                .filter(|n| n.memo_key.is_some())
                .map(|_| 1)
                .collect(),
            MemoStrategy::DualEntry => self
                .nodes
                .iter()
                .filter(|n| n.memo_key.is_some())
                .map(|n| if n.memo_key2.is_some() { 2 } else { 1 })
                .collect(),
            MemoStrategy::FullHash => {
                let mut per_node: HashMap<NodeId, u32> = HashMap::new();
                for (node, _) in self.full_memo.keys() {
                    *per_node.entry(*node).or_insert(0) += 1;
                }
                per_node.into_values().collect()
            }
        }
    }

    /// Fraction of memoized nodes holding exactly one entry (the quantity
    /// Figure 10 plots), or `None` when nothing is memoized yet.
    pub fn single_entry_fraction(&self) -> Option<f64> {
        let counts = self.memo_entry_counts();
        if counts.is_empty() {
            return None;
        }
        let singles = counts.iter().filter(|&&c| c == 1).count();
        Some(singles as f64 / counts.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParserConfig;

    #[test]
    fn single_entry_evicts() {
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2) = (TokKey(0), TokKey(1));
        let (v1, v2) = (NodeId(0), NodeId(1));
        lang.memo_put(n, k1, v1);
        assert_eq!(lang.memo_get(n, k1), Some(v1));
        lang.memo_put(n, k2, v2);
        assert_eq!(lang.memo_get(n, k2), Some(v2));
        assert_eq!(lang.memo_get(n, k1), None, "first entry evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
    }

    #[test]
    fn full_hash_remembers_everything() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2) = (TokKey(0), TokKey(1));
        lang.memo_put(n, k1, NodeId(0));
        lang.memo_put(n, k2, NodeId(1));
        assert_eq!(lang.memo_get(n, k1), Some(NodeId(0)));
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn census_counts_entries_per_node() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n1 = lang.term_node(a);
        let b = lang.terminal("b");
        let n2 = lang.term_node(b);
        lang.memo_put(n1, TokKey(0), NodeId(0));
        lang.memo_put(n1, TokKey(1), NodeId(0));
        lang.memo_put(n2, TokKey(0), NodeId(0));
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
        let frac = lang.single_entry_fraction().unwrap();
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dual_entry_keeps_two() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2, k3) = (TokKey(0), TokKey(1), TokKey(2));
        lang.memo_put(n, k1, NodeId(0));
        lang.memo_put(n, k2, NodeId(1));
        assert_eq!(lang.memo_get(n, k1), Some(NodeId(0)), "both entries retained");
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
        lang.memo_put(n, k3, NodeId(2));
        assert_eq!(lang.memo_get(n, k3), Some(NodeId(2)));
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)), "newest demoted, kept");
        assert_eq!(lang.memo_get(n, k1), None, "oldest evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn dual_entry_update_in_place() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        lang.memo_put(n, TokKey(0), NodeId(0));
        lang.memo_put(n, TokKey(0), NodeId(1));
        assert_eq!(lang.memo_get(n, TokKey(0)), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn empty_census() {
        let lang = Language::new(ParserConfig::improved());
        assert!(lang.memo_entry_counts().is_empty());
        assert_eq!(lang.single_entry_fraction(), None);
    }
}
