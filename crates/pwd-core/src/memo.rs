//! Memoization of `derive` (§4.4).
//!
//! Strategies:
//!
//! * [`MemoStrategy::FullHash`](crate::MemoStrategy::FullHash) — the
//!   remember-everything semantics of Might et al. (2011)'s nested hash
//!   tables, realized here **without a hash table**: two inline slots on
//!   each node plus a pooled per-node overflow list. Figure 10's observation
//!   (nearly every node holds exactly one entry) is what makes the linear
//!   overflow scan cheap.
//! * [`MemoStrategy::SingleEntry`](crate::MemoStrategy::SingleEntry) — the
//!   paper's improvement: fields on each node acting as a one-entry cache
//!   that evicts on conflict. Forgetful (Figure 11), but avoids all hashing
//!   on the hot path (Figure 12).
//! * [`MemoStrategy::DualEntry`](crate::MemoStrategy::DualEntry) — the §4.4
//!   extension the paper tried and abandoned; kept for the ablation benches.
//!
//! Every entry is guarded by the node's `memo_epoch` stamp, so
//! [`Language::reset`] invalidates all strategies' state with one counter
//! bump — no strategy re-hashes, clears, or walks anything between parses.
//!
//! The memo is keyed by token *value* ([`TokKey`]), not input position, so a
//! recurring token can hit an entry created earlier in the input — the exact
//! effect Figures 10–12 measure.

use crate::config::MemoStrategy;
use crate::expr::{Language, MemoEntry, Node, NodeId, NO_LINK};
use crate::token::TokKey;

impl Language {
    /// Mutable access to a node's memo state, re-initializing it for the
    /// current epoch first if it is stale.
    #[inline]
    fn memo_mut(&mut self, id: NodeId) -> &mut Node {
        let epoch = self.epoch;
        let n = &mut self.nodes[id.index()];
        if n.memo_epoch != epoch {
            n.memo_epoch = epoch;
            n.memo_key = None;
            n.memo_key2 = None;
            n.memo_over = NO_LINK;
        }
        n
    }

    /// Looks up the memoized derivative of `id` by token `key`.
    pub(crate) fn memo_get(&self, id: NodeId, key: TokKey) -> Option<NodeId> {
        let n = self.node(id);
        if n.memo_epoch != self.epoch {
            return None;
        }
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else {
                    None
                }
            }
            MemoStrategy::DualEntry => {
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else if n.memo_key2 == Some(key) {
                    Some(n.memo_val2)
                } else {
                    None
                }
            }
            MemoStrategy::FullHash => {
                if n.memo_key == Some(key) {
                    return Some(n.memo_val);
                }
                if n.memo_key2 == Some(key) {
                    return Some(n.memo_val2);
                }
                let mut cur = n.memo_over;
                while cur != NO_LINK {
                    let e = &self.memo_pool[cur as usize];
                    if e.key == key {
                        return Some(e.val);
                    }
                    cur = e.next;
                }
                None
            }
        }
    }

    /// Records the derivative of `id` by token `key`.
    pub(crate) fn memo_put(&mut self, id: NodeId, key: TokKey, val: NodeId) {
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                let evicted = {
                    let n = self.memo_mut(id);
                    let evicted = n.memo_key.is_some() && n.memo_key != Some(key);
                    n.memo_key = Some(key);
                    n.memo_val = val;
                    evicted
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::DualEntry => {
                let evicted = {
                    let n = self.memo_mut(id);
                    if n.memo_key == Some(key) {
                        n.memo_val = val;
                        false
                    } else {
                        // Demote the newest entry to the second slot,
                        // dropping the oldest.
                        let evicted = n.memo_key2.is_some() && n.memo_key2 != Some(key);
                        n.memo_key2 = n.memo_key;
                        n.memo_val2 = n.memo_val;
                        n.memo_key = Some(key);
                        n.memo_val = val;
                        evicted
                    }
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::FullHash => {
                let over_head = {
                    let n = self.memo_mut(id);
                    if n.memo_key.is_none() || n.memo_key == Some(key) {
                        n.memo_key = Some(key);
                        n.memo_val = val;
                        return;
                    }
                    if n.memo_key2.is_none() || n.memo_key2 == Some(key) {
                        n.memo_key2 = Some(key);
                        n.memo_val2 = val;
                        return;
                    }
                    n.memo_over
                };
                // Update in place if present; otherwise push a new entry.
                let mut cur = over_head;
                while cur != NO_LINK {
                    let e = &mut self.memo_pool[cur as usize];
                    if e.key == key {
                        e.val = val;
                        return;
                    }
                    cur = e.next;
                }
                let idx = self.memo_pool.len() as u32;
                self.memo_pool.push(MemoEntry { key, val, next: over_head });
                self.nodes[id.index()].memo_over = idx;
            }
        }
    }

    /// Number of memo entries a node currently holds (0 if its state is from
    /// an earlier epoch).
    fn memo_entries_of(&self, n: &Node) -> u32 {
        if n.memo_epoch != self.epoch {
            return 0;
        }
        let mut count = u32::from(n.memo_key.is_some()) + u32::from(n.memo_key2.is_some());
        if self.config.memo == MemoStrategy::FullHash {
            let mut cur = n.memo_over;
            while cur != NO_LINK {
                count += 1;
                cur = self.memo_pool[cur as usize].next;
            }
        }
        count
    }

    /// Census of derive-memo entries per node (Figure 10): for every node
    /// holding at least one memo entry, how many entries it holds.
    ///
    /// Under `SingleEntry` every occupied node reports exactly 1 by
    /// construction, so the census is only informative under `FullHash`.
    pub fn memo_entry_counts(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| self.memo_entries_of(n)).filter(|&c| c > 0).collect()
    }

    /// Fraction of memoized nodes holding exactly one entry (the quantity
    /// Figure 10 plots), or `None` when nothing is memoized yet.
    pub fn single_entry_fraction(&self) -> Option<f64> {
        let counts = self.memo_entry_counts();
        if counts.is_empty() {
            return None;
        }
        let singles = counts.iter().filter(|&&c| c == 1).count();
        Some(singles as f64 / counts.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParserConfig;

    #[test]
    fn single_entry_evicts() {
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2) = (TokKey(0), TokKey(1));
        let (v1, v2) = (NodeId(0), NodeId(1));
        lang.memo_put(n, k1, v1);
        assert_eq!(lang.memo_get(n, k1), Some(v1));
        lang.memo_put(n, k2, v2);
        assert_eq!(lang.memo_get(n, k2), Some(v2));
        assert_eq!(lang.memo_get(n, k1), None, "first entry evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
    }

    #[test]
    fn full_hash_remembers_everything() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        // Enough keys to overflow both inline slots into the pool.
        for k in 0..6u32 {
            lang.memo_put(n, TokKey(k), NodeId(k));
        }
        for k in 0..6u32 {
            assert_eq!(lang.memo_get(n, TokKey(k)), Some(NodeId(k)), "key {k}");
        }
        assert_eq!(lang.memo_get(n, TokKey(99)), None);
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn full_hash_updates_in_place() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        for k in 0..4u32 {
            lang.memo_put(n, TokKey(k), NodeId(k));
        }
        // Overwrite an inline and an overflow entry.
        lang.memo_put(n, TokKey(0), NodeId(40));
        lang.memo_put(n, TokKey(3), NodeId(43));
        assert_eq!(lang.memo_get(n, TokKey(0)), Some(NodeId(40)));
        assert_eq!(lang.memo_get(n, TokKey(3)), Some(NodeId(43)));
        assert_eq!(lang.memo_entry_counts(), vec![4], "no duplicate entries");
    }

    #[test]
    fn census_counts_entries_per_node() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n1 = lang.term_node(a);
        let b = lang.terminal("b");
        let n2 = lang.term_node(b);
        lang.memo_put(n1, TokKey(0), NodeId(0));
        lang.memo_put(n1, TokKey(1), NodeId(0));
        lang.memo_put(n2, TokKey(0), NodeId(0));
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
        let frac = lang.single_entry_fraction().unwrap();
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dual_entry_keeps_two() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2, k3) = (TokKey(0), TokKey(1), TokKey(2));
        lang.memo_put(n, k1, NodeId(0));
        lang.memo_put(n, k2, NodeId(1));
        assert_eq!(lang.memo_get(n, k1), Some(NodeId(0)), "both entries retained");
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
        lang.memo_put(n, k3, NodeId(2));
        assert_eq!(lang.memo_get(n, k3), Some(NodeId(2)));
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)), "newest demoted, kept");
        assert_eq!(lang.memo_get(n, k1), None, "oldest evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn dual_entry_update_in_place() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        lang.memo_put(n, TokKey(0), NodeId(0));
        lang.memo_put(n, TokKey(0), NodeId(1));
        assert_eq!(lang.memo_get(n, TokKey(0)), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn empty_census() {
        let lang = Language::new(ParserConfig::improved());
        assert!(lang.memo_entry_counts().is_empty());
        assert_eq!(lang.single_entry_fraction(), None);
    }
}
