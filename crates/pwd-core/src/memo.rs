//! Memoization of `derive` (§4.4), plus the class-template layer that
//! shares derivatives across lexemes.
//!
//! # Entry storage: the three strategies
//!
//! * [`MemoStrategy::FullHash`](crate::MemoStrategy::FullHash) — the
//!   remember-everything semantics of Might et al. (2011)'s nested hash
//!   tables, realized here **without a hash table**: two inline slots on
//!   each node plus a pooled per-node overflow list. Figure 10's observation
//!   (nearly every node holds exactly one entry) is what makes the linear
//!   overflow scan cheap.
//! * [`MemoStrategy::SingleEntry`](crate::MemoStrategy::SingleEntry) — the
//!   paper's improvement: fields on each node acting as a one-entry cache
//!   that evicts on conflict. Forgetful (Figure 11), but avoids all hashing
//!   on the hot path (Figure 12).
//! * [`MemoStrategy::DualEntry`](crate::MemoStrategy::DualEntry) — the §4.4
//!   extension the paper tried and abandoned; kept for the ablation benches.
//!
//! # Entry identity: value keys vs class keys
//!
//! Orthogonal to *where* entries live is *what* identifies them, the
//! [`MemoKeying`](crate::MemoKeying) axis. The paper (and
//! [`MemoKeying::ByValue`](crate::MemoKeying::ByValue)) keys entries by
//! token **value** — the interned `(kind, lexeme)` pair — not input
//! position, so a recurring token can hit an entry created earlier in the
//! input: the exact effect Figures 10–12 measure. Value keying wins on
//! inputs dominated by a small token vocabulary (punctuation, keywords,
//! repeated literals), where reuse is exact and frequent. It collapses on
//! realistic identifier-heavy programs: every fresh lexeme is a fresh key,
//! the memo never hits, and the engine re-derives the whole grammar graph
//! per token.
//!
//! [`MemoKeying::ByClass`](crate::MemoKeying::ByClass) exploits the fact
//! that a derivative depends on the lexeme only through the `ε` leaf it
//! embeds:
//!
//! * in recognize mode no leaf is ever built, so entries are keyed by
//!   [`TermId`](crate::TermId) outright and all lexemes of one terminal
//!   share one derivative — identifier-diverse inputs go from all-miss to
//!   all-hit;
//! * in parse mode entries stay value-keyed (forests embed lexemes), and
//!   each node additionally carries a **class-template slot**: the last
//!   derivative computed for `(node, TermId)` plus a *taint* bit recording
//!   whether that derivative embeds a fresh `ε` leaf. A repeat terminal
//!   with a new lexeme shares untainted derivatives verbatim and re-derives
//!   only tainted ones — so allocation is confined to the patch path from
//!   the root to the new leaves instead of the whole graph.
//!
//! Both layers are guarded by per-node epoch stamps, so
//! [`Language::reset`] invalidates every strategy's state (and all
//! templates) with one counter bump — nothing re-hashes, clears, or walks
//! anything between parses.
//!
//! # Tier three: the lazy derivative automaton
//!
//! The two memo layers above are tiers one and two of a three-tier derive
//! path. In recognize mode under class keying, derivatives are additionally
//! compiled — lazily, as recognition computes them anyway — into dense
//! per-state transition rows ([`crate::AutomatonMode`]; see the
//! `automaton` module). Where a class-keyed hit still costs a memo probe
//! per token (node resolution, epoch check, key compare), a warm automaton
//! consumes a token with one array index and answers end-of-input from a
//! cached nullability bit. Unlike the epoch-stamped tiers, automaton state
//! is a structural fact about the grammar's *language* and survives
//! `reset` — the row budget ([`crate::ParserConfig::automaton_max_rows`])
//! bounds it, with transparent fallback to the class-keyed path here when
//! the table freezes or a transition is still unexplored.

use crate::config::MemoStrategy;
use crate::expr::{ClassEntry, Language, MemoEntry, Node, NodeId, NO_LINK};
use crate::token::{DeriveKey, TermId};

impl Language {
    /// Mutable access to a node's memo state, re-initializing it for the
    /// current epoch first if it is stale.
    #[inline]
    fn memo_mut(&mut self, id: NodeId) -> &mut Node {
        let epoch = self.epoch;
        let n = &mut self.nodes[id.index()];
        if n.memo_epoch != epoch {
            n.memo_epoch = epoch;
            n.memo_key = None;
            n.memo_key2 = None;
            n.memo_over = NO_LINK;
        }
        n
    }

    /// Looks up the memoized derivative of `id` by token `key`.
    pub(crate) fn memo_get(&self, id: NodeId, key: DeriveKey) -> Option<NodeId> {
        let n = self.node(id);
        if n.memo_epoch != self.epoch {
            return None;
        }
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else {
                    None
                }
            }
            MemoStrategy::DualEntry => {
                if n.memo_key == Some(key) {
                    Some(n.memo_val)
                } else if n.memo_key2 == Some(key) {
                    Some(n.memo_val2)
                } else {
                    None
                }
            }
            MemoStrategy::FullHash => {
                if n.memo_key == Some(key) {
                    return Some(n.memo_val);
                }
                if n.memo_key2 == Some(key) {
                    return Some(n.memo_val2);
                }
                let mut cur = n.memo_over;
                while cur != NO_LINK {
                    let e = &self.memo_pool[cur as usize];
                    if e.key == key {
                        return Some(e.val);
                    }
                    cur = e.next;
                }
                None
            }
        }
    }

    /// Records the derivative of `id` by token `key`.
    pub(crate) fn memo_put(&mut self, id: NodeId, key: DeriveKey, val: NodeId) {
        match self.config.memo {
            MemoStrategy::SingleEntry => {
                let evicted = {
                    let n = self.memo_mut(id);
                    let evicted = n.memo_key.is_some() && n.memo_key != Some(key);
                    n.memo_key = Some(key);
                    n.memo_val = val;
                    evicted
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::DualEntry => {
                let evicted = {
                    let n = self.memo_mut(id);
                    if n.memo_key == Some(key) {
                        n.memo_val = val;
                        false
                    } else {
                        // Demote the newest entry to the second slot,
                        // dropping the oldest.
                        let evicted = n.memo_key2.is_some() && n.memo_key2 != Some(key);
                        n.memo_key2 = n.memo_key;
                        n.memo_val2 = n.memo_val;
                        n.memo_key = Some(key);
                        n.memo_val = val;
                        evicted
                    }
                };
                if evicted {
                    self.metrics.memo_evictions += 1;
                }
            }
            MemoStrategy::FullHash => {
                let over_head = {
                    let n = self.memo_mut(id);
                    if n.memo_key.is_none() || n.memo_key == Some(key) {
                        n.memo_key = Some(key);
                        n.memo_val = val;
                        return;
                    }
                    if n.memo_key2.is_none() || n.memo_key2 == Some(key) {
                        n.memo_key2 = Some(key);
                        n.memo_val2 = val;
                        return;
                    }
                    n.memo_over
                };
                // Update in place if present; otherwise push a new entry.
                let mut cur = over_head;
                while cur != NO_LINK {
                    let e = &mut self.memo_pool[cur as usize];
                    if e.key == key {
                        e.val = val;
                        return;
                    }
                    cur = e.next;
                }
                let idx = self.memo_pool.len() as u32;
                self.memo_pool.push(MemoEntry { key, val, next: over_head });
                self.nodes[id.index()].memo_over = idx;
            }
        }
    }

    /// Looks up the class template of `id` for terminal class `term`: the
    /// last derivative computed for that class and whether it embeds a
    /// lexeme (`taint`).
    ///
    /// Templates exist only on initial-grammar nodes — the nodes every
    /// token's derivation revisits. Each holds a dense per-class row indexed
    /// by `TermId` that is never evicted (this is what survives the
    /// single-entry memo's cross-class thrash). Derived nodes carry no
    /// template state at all: they are transient (most are derived at most
    /// once per class), so for them the bookkeeping costs more than the
    /// sharing recovers.
    pub(crate) fn template_get(&self, id: NodeId, term: TermId) -> Option<(NodeId, bool)> {
        let n = self.node(id);
        if n.tmpl_row != NO_LINK && (term.index() as u32) < n.tmpl_row_len {
            let e = &self.class_pool[n.tmpl_row as usize + term.index()];
            if e.epoch == self.epoch {
                return Some((e.val, e.taint));
            }
        }
        None
    }

    /// The recorded taint of `id`'s class template for `term`, or
    /// conservatively `true` when no template is recorded (an unknown
    /// derivative must be assumed lexeme-dependent).
    pub(crate) fn template_taint(&self, id: NodeId, term: TermId) -> bool {
        self.template_get(id, term).is_none_or(|(_, taint)| taint)
    }

    /// Records the class template of `id` for terminal class `term`,
    /// allocating the dense per-class row on an initial-grammar node's first
    /// record; a no-op for derived nodes. (Row allocation is warm state: it
    /// survives `reset`, so a pooled session re-serving the same grammar
    /// never re-allocates.)
    pub(crate) fn template_put(&mut self, id: NodeId, term: TermId, val: NodeId, taint: bool) {
        let initial = self.initial_nodes.unwrap_or(usize::MAX);
        if id.index() >= initial {
            return;
        }
        let epoch = self.epoch;
        let terms = self.interner.term_count() as u32;
        if self.nodes[id.index()].tmpl_row == NO_LINK && terms > 0 {
            let start = self.class_pool.len() as u32;
            self.class_pool.extend(std::iter::repeat_n(
                ClassEntry { epoch: 0, val: NodeId(0), taint: false },
                terms as usize,
            ));
            let n = &mut self.nodes[id.index()];
            n.tmpl_row = start;
            n.tmpl_row_len = terms;
        }
        let n = self.node(id);
        if n.tmpl_row != NO_LINK && (term.index() as u32) < n.tmpl_row_len {
            let slot = n.tmpl_row as usize + term.index();
            self.class_pool[slot] = ClassEntry { epoch, val, taint };
            self.metrics.templates_recorded += 1;
        }
    }

    /// Number of memo entries a node currently holds (0 if its state is from
    /// an earlier epoch).
    fn memo_entries_of(&self, n: &Node) -> u32 {
        if n.memo_epoch != self.epoch {
            return 0;
        }
        let mut count = u32::from(n.memo_key.is_some()) + u32::from(n.memo_key2.is_some());
        if self.config.memo == MemoStrategy::FullHash {
            let mut cur = n.memo_over;
            while cur != NO_LINK {
                count += 1;
                cur = self.memo_pool[cur as usize].next;
            }
        }
        count
    }

    /// Census of derive-memo entries per node (Figure 10): for every node
    /// holding at least one memo entry, how many entries it holds.
    ///
    /// Under `SingleEntry` every occupied node reports exactly 1 by
    /// construction, so the census is only informative under `FullHash`.
    pub fn memo_entry_counts(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| self.memo_entries_of(n)).filter(|&c| c > 0).collect()
    }

    /// Fraction of memoized nodes holding exactly one entry (the quantity
    /// Figure 10 plots), or `None` when nothing is memoized yet.
    pub fn single_entry_fraction(&self) -> Option<f64> {
        let counts = self.memo_entry_counts();
        if counts.is_empty() {
            return None;
        }
        let singles = counts.iter().filter(|&&c| c == 1).count();
        Some(singles as f64 / counts.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParserConfig;
    use crate::token::TokKey;

    /// A value-keyed [`DeriveKey`] (the tests exercise entry storage, which
    /// is keying-agnostic).
    fn key(k: u32) -> DeriveKey {
        DeriveKey::value(TokKey(k))
    }

    #[test]
    fn single_entry_evicts() {
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2) = (key(0), key(1));
        let (v1, v2) = (NodeId(0), NodeId(1));
        lang.memo_put(n, k1, v1);
        assert_eq!(lang.memo_get(n, k1), Some(v1));
        lang.memo_put(n, k2, v2);
        assert_eq!(lang.memo_get(n, k2), Some(v2));
        assert_eq!(lang.memo_get(n, k1), None, "first entry evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
    }

    #[test]
    fn full_hash_remembers_everything() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        // Enough keys to overflow both inline slots into the pool.
        for k in 0..6u32 {
            lang.memo_put(n, key(k), NodeId(k));
        }
        for k in 0..6u32 {
            assert_eq!(lang.memo_get(n, key(k)), Some(NodeId(k)), "key {k}");
        }
        assert_eq!(lang.memo_get(n, key(99)), None);
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn full_hash_updates_in_place() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        for k in 0..4u32 {
            lang.memo_put(n, key(k), NodeId(k));
        }
        // Overwrite an inline and an overflow entry.
        lang.memo_put(n, key(0), NodeId(40));
        lang.memo_put(n, key(3), NodeId(43));
        assert_eq!(lang.memo_get(n, key(0)), Some(NodeId(40)));
        assert_eq!(lang.memo_get(n, key(3)), Some(NodeId(43)));
        assert_eq!(lang.memo_entry_counts(), vec![4], "no duplicate entries");
    }

    #[test]
    fn census_counts_entries_per_node() {
        let mut lang = Language::new(ParserConfig::original_2011());
        let a = lang.terminal("a");
        let n1 = lang.term_node(a);
        let b = lang.terminal("b");
        let n2 = lang.term_node(b);
        lang.memo_put(n1, key(0), NodeId(0));
        lang.memo_put(n1, key(1), NodeId(0));
        lang.memo_put(n2, key(0), NodeId(0));
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
        let frac = lang.single_entry_fraction().unwrap();
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dual_entry_keeps_two() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        let (k1, k2, k3) = (key(0), key(1), key(2));
        lang.memo_put(n, k1, NodeId(0));
        lang.memo_put(n, k2, NodeId(1));
        assert_eq!(lang.memo_get(n, k1), Some(NodeId(0)), "both entries retained");
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
        lang.memo_put(n, k3, NodeId(2));
        assert_eq!(lang.memo_get(n, k3), Some(NodeId(2)));
        assert_eq!(lang.memo_get(n, k2), Some(NodeId(1)), "newest demoted, kept");
        assert_eq!(lang.memo_get(n, k1), None, "oldest evicted");
        assert_eq!(lang.metrics().memo_evictions, 1);
        let mut counts = lang.memo_entry_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![2]);
    }

    #[test]
    fn dual_entry_update_in_place() {
        let mut lang = Language::new(ParserConfig {
            memo: MemoStrategy::DualEntry,
            ..ParserConfig::improved()
        });
        let a = lang.terminal("a");
        let n = lang.term_node(a);
        lang.memo_put(n, key(0), NodeId(0));
        lang.memo_put(n, key(0), NodeId(1));
        assert_eq!(lang.memo_get(n, key(0)), Some(NodeId(1)));
        assert_eq!(lang.metrics().memo_evictions, 0);
    }

    #[test]
    fn template_rows_hold_every_class_without_eviction() {
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let n = lang.term_node(a);
        assert_eq!(lang.template_get(n, a), None);
        assert!(lang.template_taint(n, a), "unknown templates are conservatively tainted");
        lang.template_put(n, a, NodeId(7), false);
        assert_eq!(lang.template_get(n, a), Some((NodeId(7), false)));
        assert!(!lang.template_taint(n, a));
        // The row is indexed by class: recording `b` does not evict `a`.
        lang.template_put(n, b, NodeId(8), true);
        assert_eq!(lang.template_get(n, a), Some((NodeId(7), false)));
        assert_eq!(lang.template_get(n, b), Some((NodeId(8), true)));
        assert_eq!(lang.metrics().templates_recorded, 2);
        // Kind rewrites (patching, pruning) kill the row entries with the
        // rest of the per-parse state.
        lang.invalidate_parse_state(n);
        assert_eq!(lang.template_get(n, a), None);
        assert_eq!(lang.template_get(n, b), None);
    }

    #[test]
    fn empty_census() {
        let lang = Language::new(ParserConfig::improved());
        assert!(lang.memo_entry_counts().is_empty());
        assert_eq!(lang.single_entry_fraction(), None);
    }
}
