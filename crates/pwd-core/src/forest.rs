//! Parse forests with ambiguity nodes.
//!
//! The paper's complexity result (Lemma 3) assumes ASTs use *ambiguity nodes*
//! and a potentially cyclic graph representation — the standard assumption
//! under which GLR and Earley are cubic. This module provides that
//! representation: a forest arena whose nodes may form cycles (for grammars
//! with infinitely many parses of the empty word), plus bounded enumeration
//! and counting of concrete parse trees.

use crate::reduce::{Reduce, ReduceKind};
use crate::token::Token;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a node in a [`Language`](crate::Language)'s forest arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ForestId(pub(crate) u32);

/// A node of the shared parse forest.
#[derive(Debug, Clone)]
pub(crate) enum ForestNode {
    /// No parses.
    Nothing,
    /// Exactly one parse: the empty tree `ε`.
    EpsTree,
    /// Exactly one parse: a token leaf.
    Leaf(Token),
    /// Exactly one parse: a user-supplied constant tree (the `s` of `ε_s`).
    Const(Tree),
    /// The cross product of two forests (from `◦`).
    Pair(ForestId, ForestId),
    /// An ambiguity node: the union of the alternatives.
    Amb(Vec<ForestId>),
    /// A reduction mapped over a forest (from `↪`).
    Map(Reduce, ForestId),
    /// Placeholder while `parse-null` is mid-construction on a cycle.
    Pending,
}

/// Arena of forest nodes. Cycles are permitted.
#[derive(Debug, Default, Clone)]
pub(crate) struct ForestStore {
    nodes: Vec<ForestNode>,
}

/// Limits for enumerating trees out of a (possibly cyclic, possibly
/// exponentially ambiguous) forest.
///
/// Enumeration is *bounded*: it returns at most `max_trees` trees and
/// explores the forest graph to at most `max_depth` unrollings, so it always
/// terminates even on cyclic forests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumLimits {
    /// Maximum number of trees to produce.
    pub max_trees: usize,
    /// Maximum graph depth to unroll (guards against cyclic forests).
    pub max_depth: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_trees: 64, max_depth: 256 }
    }
}

/// A concrete parse tree.
///
/// `◦` produces [`Tree::Pair`], tokens produce [`Tree::Leaf`], `ε` produces
/// [`Tree::Empty`], and user reductions may build arbitrary labeled
/// [`Tree::Node`]s.
///
/// # Examples
///
/// ```
/// use pwd_core::Tree;
/// let t = Tree::node("expr", vec![Tree::Empty]);
/// assert_eq!(t.to_string(), "(expr ε)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Tree {
    /// The empty (`ε`) tree.
    Empty,
    /// A token leaf.
    Leaf(Token),
    /// A pair produced by concatenation.
    Pair(Arc<Tree>, Arc<Tree>),
    /// A labeled node produced by a user reduction.
    Node(Arc<str>, Arc<[Tree]>),
}

impl Tree {
    /// Builds a pair tree.
    pub fn pair(a: Tree, b: Tree) -> Tree {
        Tree::Pair(Arc::new(a), Arc::new(b))
    }

    /// Builds a labeled node.
    pub fn node(label: &str, children: Vec<Tree>) -> Tree {
        Tree::Node(Arc::from(label), Arc::from(children))
    }

    /// Builds a token leaf.
    pub fn leaf(t: Token) -> Tree {
        Tree::Leaf(t)
    }

    /// Number of token leaves in the tree.
    pub fn leaves(&self) -> usize {
        match self {
            Tree::Empty => 0,
            Tree::Leaf(_) => 1,
            Tree::Pair(a, b) => a.leaves() + b.leaves(),
            Tree::Node(_, kids) => kids.iter().map(Tree::leaves).sum(),
        }
    }

    /// The left-to-right sequence of leaf lexemes (the *yield*).
    pub fn fringe(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.fringe_into(&mut out);
        out
    }

    fn fringe_into(&self, out: &mut Vec<String>) {
        match self {
            Tree::Empty => {}
            Tree::Leaf(t) => out.push(t.lexeme().to_string()),
            Tree::Pair(a, b) => {
                a.fringe_into(out);
                b.fringe_into(out);
            }
            Tree::Node(_, kids) => {
                for k in kids.iter() {
                    k.fringe_into(out);
                }
            }
        }
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tree::Empty => write!(f, "ε"),
            Tree::Leaf(t) => write!(f, "{}", t.lexeme()),
            Tree::Pair(a, b) => write!(f, "({a} . {b})"),
            Tree::Node(label, kids) => {
                write!(f, "({label}")?;
                for k in kids.iter() {
                    write!(f, " {k}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl ForestStore {
    pub(crate) fn alloc(&mut self, node: ForestNode) -> ForestId {
        let id = ForestId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub(crate) fn get(&self, id: ForestId) -> &ForestNode {
        &self.nodes[id.0 as usize]
    }

    pub(crate) fn set(&mut self, id: ForestId, node: ForestNode) {
        self.nodes[id.0 as usize] = node;
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn truncate(&mut self, len: usize) {
        self.nodes.truncate(len);
    }

    /// Enumerates up to `limits.max_trees` trees from `f`.
    pub(crate) fn trees(&self, f: ForestId, limits: EnumLimits) -> Vec<Tree> {
        self.enumerate(f, limits.max_depth, limits.max_trees)
    }

    fn enumerate(&self, f: ForestId, depth: usize, cap: usize) -> Vec<Tree> {
        if depth == 0 || cap == 0 {
            return Vec::new();
        }
        match self.get(f) {
            ForestNode::Nothing | ForestNode::Pending => Vec::new(),
            ForestNode::EpsTree => vec![Tree::Empty],
            ForestNode::Leaf(t) => vec![Tree::Leaf(t.clone())],
            ForestNode::Const(t) => vec![t.clone()],
            ForestNode::Pair(a, b) => {
                let left = self.enumerate(*a, depth - 1, cap);
                if left.is_empty() {
                    return Vec::new();
                }
                let right = self.enumerate(*b, depth - 1, cap);
                let mut out = Vec::new();
                'outer: for l in &left {
                    for r in &right {
                        out.push(Tree::pair(l.clone(), r.clone()));
                        if out.len() >= cap {
                            break 'outer;
                        }
                    }
                }
                out
            }
            ForestNode::Amb(alts) => {
                let mut out = Vec::new();
                for a in alts {
                    let remaining = cap - out.len();
                    if remaining == 0 {
                        break;
                    }
                    out.extend(self.enumerate(*a, depth - 1, remaining));
                }
                out
            }
            ForestNode::Map(red, inner) => {
                let mut out = Vec::new();
                for t in self.enumerate(*inner, depth - 1, cap) {
                    self.apply(red, t, depth - 1, &mut out);
                    if out.len() >= cap {
                        out.truncate(cap);
                        break;
                    }
                }
                out
            }
        }
    }

    /// Applies a reduction to a tree, producing zero or more trees (reductions
    /// that pair with a null-parse *forest* are one-to-many).
    fn apply(&self, red: &Reduce, t: Tree, depth: usize, out: &mut Vec<Tree>) {
        match &*red.0 {
            ReduceKind::Compose(g, h) => {
                let mut mid = Vec::new();
                self.apply(h, t, depth, &mut mid);
                for m in mid {
                    self.apply(g, m, depth, out);
                }
            }
            ReduceKind::PairLeft(s) => {
                for l in self.enumerate(*s, depth, usize::MAX) {
                    out.push(Tree::pair(l, t.clone()));
                }
            }
            ReduceKind::PairRight(s) => {
                for r in self.enumerate(*s, depth, usize::MAX) {
                    out.push(Tree::pair(t.clone(), r));
                }
            }
            ReduceKind::Reassoc => match t {
                Tree::Pair(t1, rest) => match &*rest {
                    Tree::Pair(t2, t3) => {
                        out.push(Tree::Pair(Arc::new(Tree::Pair(t1, t2.clone())), t3.clone()))
                    }
                    _ => out.push(Tree::Pair(t1, rest)),
                },
                other => out.push(other),
            },
            ReduceKind::MapFirst(g) => match t {
                Tree::Pair(a, b) => {
                    let mut firsts = Vec::new();
                    self.apply(g, (*a).clone(), depth, &mut firsts);
                    for a2 in firsts {
                        out.push(Tree::Pair(Arc::new(a2), b.clone()));
                    }
                }
                other => out.push(other),
            },
            ReduceKind::MapSecond(g) => match t {
                Tree::Pair(a, b) => {
                    let mut seconds = Vec::new();
                    self.apply(g, (*b).clone(), depth, &mut seconds);
                    for b2 in seconds {
                        out.push(Tree::Pair(a.clone(), Arc::new(b2)));
                    }
                }
                other => out.push(other),
            },
            ReduceKind::Func(_, f) => out.push(f(t)),
        }
    }

    /// Does the forest contain at least one (finite) tree?
    ///
    /// Computed as a least fixed point: nodes currently on the DFS stack
    /// contribute `false`, so a bare cycle with no grounded alternative has
    /// no finite tree.
    pub(crate) fn has_tree(&self, f: ForestId) -> bool {
        let mut on_stack = vec![false; self.nodes.len()];
        let mut memo: HashMap<ForestId, bool> = HashMap::new();
        self.has_tree_rec(f, &mut on_stack, &mut memo)
    }

    fn has_tree_rec(
        &self,
        f: ForestId,
        on_stack: &mut Vec<bool>,
        memo: &mut HashMap<ForestId, bool>,
    ) -> bool {
        if let Some(&v) = memo.get(&f) {
            return v;
        }
        if on_stack[f.0 as usize] {
            return false;
        }
        on_stack[f.0 as usize] = true;
        let v = match self.get(f) {
            ForestNode::Nothing | ForestNode::Pending => false,
            ForestNode::EpsTree | ForestNode::Leaf(_) | ForestNode::Const(_) => true,
            ForestNode::Pair(a, b) => {
                self.has_tree_rec(*a, on_stack, memo) && self.has_tree_rec(*b, on_stack, memo)
            }
            ForestNode::Amb(alts) => {
                alts.clone().iter().any(|a| self.has_tree_rec(*a, on_stack, memo))
            }
            ForestNode::Map(_, inner) => self.has_tree_rec(*inner, on_stack, memo),
        };
        on_stack[f.0 as usize] = false;
        // Only cache positive results: a `false` here may be an artifact of
        // the on-stack cut, not a ground truth about the node.
        if v {
            memo.insert(f, v);
        }
        v
    }

    /// Counts the number of distinct parse trees, or `None` if the count is
    /// infinite (the forest has a productive cycle).
    ///
    /// Counts saturate at `u128::MAX`.
    pub(crate) fn count_trees(&self, f: ForestId) -> Option<u128> {
        let mut on_stack = vec![false; self.nodes.len()];
        let mut memo: HashMap<ForestId, Option<u128>> = HashMap::new();
        self.count_rec(f, &mut on_stack, &mut memo)
    }

    fn count_rec(
        &self,
        f: ForestId,
        on_stack: &mut Vec<bool>,
        memo: &mut HashMap<ForestId, Option<u128>>,
    ) -> Option<u128> {
        if let Some(v) = memo.get(&f) {
            return *v;
        }
        if on_stack[f.0 as usize] {
            // A cycle reached during counting. If the cycle is productive the
            // count is infinite; report None conservatively.
            return None;
        }
        on_stack[f.0 as usize] = true;
        let v = match self.get(f).clone() {
            ForestNode::Nothing | ForestNode::Pending => Some(0),
            ForestNode::EpsTree | ForestNode::Leaf(_) | ForestNode::Const(_) => Some(1),
            ForestNode::Pair(a, b) => {
                let ca = self.count_rec(a, on_stack, memo);
                let cb = self.count_rec(b, on_stack, memo);
                match (ca, cb) {
                    (Some(0), _) | (_, Some(0)) => Some(0),
                    (Some(x), Some(y)) => Some(x.saturating_mul(y)),
                    _ => None,
                }
            }
            ForestNode::Amb(alts) => {
                let mut total: u128 = 0;
                let mut infinite = false;
                for a in alts {
                    match self.count_rec(a, on_stack, memo) {
                        Some(c) => total = total.saturating_add(c),
                        None => infinite = true,
                    }
                }
                if infinite {
                    None
                } else {
                    Some(total)
                }
            }
            ForestNode::Map(red, inner) => {
                let base = self.count_rec(inner, on_stack, memo);
                let mult = self.reduce_multiplier(&red, on_stack, memo);
                match (base, mult) {
                    (Some(0), _) => Some(0),
                    (Some(b), Some(m)) => Some(b.saturating_mul(m)),
                    _ => None,
                }
            }
        };
        on_stack[f.0 as usize] = false;
        memo.insert(f, v);
        v
    }

    /// How many output trees a reduction produces per input tree.
    fn reduce_multiplier(
        &self,
        red: &Reduce,
        on_stack: &mut Vec<bool>,
        memo: &mut HashMap<ForestId, Option<u128>>,
    ) -> Option<u128> {
        match &*red.0 {
            ReduceKind::Compose(g, h) => {
                let a = self.reduce_multiplier(g, on_stack, memo)?;
                let b = self.reduce_multiplier(h, on_stack, memo)?;
                Some(a.saturating_mul(b))
            }
            ReduceKind::PairLeft(s) | ReduceKind::PairRight(s) => {
                self.count_rec(*s, on_stack, memo)
            }
            ReduceKind::Reassoc | ReduceKind::Func(..) => Some(1),
            ReduceKind::MapFirst(g) | ReduceKind::MapSecond(g) => {
                self.reduce_multiplier(g, on_stack, memo)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Interner;

    fn tok(i: &mut Interner, s: &str) -> Token {
        let t = i.terminal(s);
        i.token(t, s)
    }

    #[test]
    fn enumerate_leaf_and_pair() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let a = fs.alloc(ForestNode::Leaf(tok(&mut i, "a")));
        let b = fs.alloc(ForestNode::Leaf(tok(&mut i, "b")));
        let p = fs.alloc(ForestNode::Pair(a, b));
        let ts = fs.trees(p, EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(a . b)");
        assert_eq!(ts[0].leaves(), 2);
    }

    #[test]
    fn ambiguity_node_unions() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let a = fs.alloc(ForestNode::Leaf(tok(&mut i, "a")));
        let b = fs.alloc(ForestNode::Leaf(tok(&mut i, "b")));
        let amb = fs.alloc(ForestNode::Amb(vec![a, b]));
        let ts = fs.trees(amb, EnumLimits::default());
        assert_eq!(ts.len(), 2);
        assert_eq!(fs.count_trees(amb), Some(2));
    }

    #[test]
    fn map_applies_reduction() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let a = fs.alloc(ForestNode::Leaf(tok(&mut i, "a")));
        let red = Reduce::func("wrap", |t| Tree::node("w", vec![t]));
        let m = fs.alloc(ForestNode::Map(red, a));
        let ts = fs.trees(m, EnumLimits::default());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_string(), "(w a)");
    }

    #[test]
    fn pair_left_reduction_is_one_to_many() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let s1 = fs.alloc(ForestNode::Leaf(tok(&mut i, "x")));
        let s2 = fs.alloc(ForestNode::Leaf(tok(&mut i, "y")));
        let s = fs.alloc(ForestNode::Amb(vec![s1, s2]));
        let u = fs.alloc(ForestNode::Leaf(tok(&mut i, "u")));
        let m = fs.alloc(ForestNode::Map(Reduce::pair_left(s), u));
        let mut strs: Vec<String> =
            fs.trees(m, EnumLimits::default()).iter().map(|t| t.to_string()).collect();
        strs.sort();
        assert_eq!(strs, ["(x . u)", "(y . u)"]);
        assert_eq!(fs.count_trees(m), Some(2));
    }

    #[test]
    fn reassoc_rotates_pairs() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let mk = |fs: &mut ForestStore, i: &mut Interner, s: &str| {
            let t = tok(i, s);
            fs.alloc(ForestNode::Leaf(t))
        };
        let a = mk(&mut fs, &mut i, "1");
        let b = mk(&mut fs, &mut i, "2");
        let c = mk(&mut fs, &mut i, "3");
        let bc = fs.alloc(ForestNode::Pair(b, c));
        let abc = fs.alloc(ForestNode::Pair(a, bc));
        let m = fs.alloc(ForestNode::Map(Reduce::reassoc(), abc));
        let ts = fs.trees(m, EnumLimits::default());
        assert_eq!(ts[0].to_string(), "((1 . 2) . 3)");
    }

    #[test]
    fn cyclic_forest_enumeration_terminates() {
        let mut i = Interner::default();
        let mut fs = ForestStore::default();
        let leaf = fs.alloc(ForestNode::Leaf(tok(&mut i, "a")));
        let amb = fs.alloc(ForestNode::Pending);
        let pair = fs.alloc(ForestNode::Pair(amb, leaf));
        fs.set(amb, ForestNode::Amb(vec![leaf, pair]));
        // Infinitely many trees: a, (a . a), ((a . a) . a), …
        let ts = fs.trees(amb, EnumLimits { max_trees: 5, max_depth: 64 });
        assert_eq!(ts.len(), 5);
        assert_eq!(fs.count_trees(amb), None, "productive cycle is infinite");
        assert!(fs.has_tree(amb));
    }

    #[test]
    fn unproductive_cycle_has_no_tree() {
        let mut fs = ForestStore::default();
        let amb = fs.alloc(ForestNode::Pending);
        let pair = fs.alloc(ForestNode::Pair(amb, amb));
        fs.set(amb, ForestNode::Amb(vec![pair]));
        assert!(!fs.has_tree(amb));
        let ts = fs.trees(amb, EnumLimits::default());
        assert!(ts.is_empty());
    }

    #[test]
    fn nothing_has_no_trees() {
        let mut fs = ForestStore::default();
        let n = fs.alloc(ForestNode::Nothing);
        assert!(!fs.has_tree(n));
        assert_eq!(fs.count_trees(n), Some(0));
        assert!(fs.trees(n, EnumLimits::default()).is_empty());
    }

    #[test]
    fn tree_fringe() {
        let mut i = Interner::default();
        let a = Tree::leaf(tok(&mut i, "a"));
        let b = Tree::leaf(tok(&mut i, "b"));
        let t = Tree::node("top", vec![Tree::pair(a, Tree::Empty), b]);
        assert_eq!(t.fringe(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(t.leaves(), 2);
    }
}
