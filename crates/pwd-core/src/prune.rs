//! Emptiness (productivity) analysis and zombie pruning.
//!
//! Deriving a left-recursive sub-language by a token it cannot start with
//! produces degenerate cycles like `X = X ◦ y` — languages that are
//! semantically `∅` but that no *local* compaction rule can collapse,
//! because every node of the cycle looks structurally alive. Left in place,
//! one such zombie cluster is born per token, stays reachable forever, and
//! is re-derived on every subsequent token — turning linear-in-practice
//! parses quadratic.
//!
//! Might et al.'s implementation guards against this with an `is-empty?`
//! predicate computed, like nullability, as a fixed point. We do the same:
//! after each token's derivative (and separate-pass compaction, if any) we
//! run a *productivity* fixed point over the nodes created for that token —
//! a node is productive if its language contains any string — and rewrite
//! unproductive nodes to `∅` in place. Since a language, once empty, stays
//! empty under derivation, the rewrite is sound and permanent.
//!
//! The pass is part of compaction and is disabled when
//! [`CompactionMode::None`](crate::CompactionMode::None) is selected (the
//! §3 instrumentation counts every node the pure algorithm constructs).

use crate::expr::{ExprKind, Language, NodeId};

/// Productivity lattice values, stored as a dense per-node slot
/// (`Node::productive`). The mark is *not* epoch-stamped: for initial-grammar
/// nodes productivity is a language-level fact that stays valid across
/// parses, and derived nodes are discarded by `reset()` anyway.
pub(crate) const PROD_UNKNOWN: u8 = 0;
pub(crate) const PROD_YES: u8 = 1;
pub(crate) const PROD_EMPTY: u8 = 2;

impl Language {
    /// Computes productivity for every node in `lo..hi` (all nodes below
    /// `lo` must already be settled) and rewrites proven-empty nodes to `∅`.
    ///
    /// Least fixed point: nodes are assumed unproductive and promoted to
    /// productive; whatever is still unproven when the iteration stabilizes
    /// is genuinely empty.
    pub(crate) fn prune_empty(&mut self, lo: usize) {
        let hi = self.nodes.len();
        if lo >= hi {
            return;
        }
        loop {
            let mut changed = false;
            for i in lo..hi {
                if self.nodes[i].productive != PROD_UNKNOWN {
                    continue;
                }
                if self.eval_productive(NodeId(i as u32)) {
                    self.nodes[i].productive = PROD_YES;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Initial-grammar nodes keep their structure (so `reset()` restores
        // a pristine grammar); only derived nodes are rewritten. The cached
        // PROD_EMPTY value already stops them from keeping zombies alive.
        let rewrite_from = self.initial_nodes.unwrap_or(0).max(lo);
        for i in lo..hi {
            if self.nodes[i].productive == PROD_UNKNOWN {
                self.nodes[i].productive = PROD_EMPTY;
                if i >= rewrite_from {
                    let id = NodeId(i as u32);
                    self.nodes[i].kind = ExprKind::Empty;
                    // The kind changed, so epoch-stamped state derived from
                    // the old kind (nullability above all) must not survive.
                    self.invalidate_parse_state(id);
                    self.metrics.empty_prunes += 1;
                }
            }
        }
    }

    /// One evaluation step: is this node provably productive *now*, reading
    /// unknown in-range neighbours as "not yet"?
    fn eval_productive(&self, id: NodeId) -> bool {
        let read = |c: NodeId| -> bool {
            let c = self.resolve(c);
            self.node(c).productive == PROD_YES
        };
        match &self.node(id).kind {
            ExprKind::Empty => false,
            ExprKind::Eps(_) | ExprKind::Term(_) => true,
            // Conservative: never prune unpatched or undefined nodes.
            ExprKind::Pending | ExprKind::Forward => true,
            ExprKind::Alt(a, b) => read(*a) || read(*b),
            ExprKind::Cat(a, b) => read(*a) && read(*b),
            ExprKind::Red(x, _) => read(*x),
            ExprKind::Delta(x) => {
                // δ(L) is productive iff L is nullable. Use the cached
                // nullability when final; otherwise stay conservative
                // (productive) rather than compute a nested fixed point.
                let x = self.resolve(*x);
                let (value, definite) = self.null_state(x);
                if definite {
                    value
                } else {
                    true
                }
            }
            ExprKind::Ref(t) => read(*t),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{CompactionMode, Language, ParserConfig, Token};

    /// The zombie repro: nested left recursion. S = ε | S T; T = L n;
    /// L = p | L ";" p. Deriving L by "n" creates X = X ◦ y, which the
    /// pruning pass must collapse so the live graph stays bounded.
    fn nested_list_lang() -> (Language, crate::NodeId, Token, Token) {
        let mut lang = Language::new(ParserConfig::improved());
        let p = lang.terminal("p");
        let nl = lang.terminal("n");
        let semi = lang.terminal(";");
        let tp = lang.term_node(p);
        let tn = lang.term_node(nl);
        let tsemi = lang.term_node(semi);

        let l = lang.forward();
        let l_cont = lang.seq(&[l, tsemi, tp]);
        let l_body = lang.alt(tp, l_cont);
        lang.define(l, l_body);

        let t = lang.cat(l, tn);
        let s = lang.forward();
        let st = lang.cat(s, t);
        let eps = lang.eps_node();
        let s_body = lang.alt(eps, st);
        lang.define(s, s_body);

        let tok_p = lang.token(p, "p");
        let tok_n = lang.token(nl, "n");
        (lang, s, tok_p, tok_n)
    }

    #[test]
    fn zombie_clusters_are_pruned() {
        let (mut lang, s, tok_p, tok_n) = nested_list_lang();
        let mut sizes = Vec::new();
        for k in [4usize, 8, 16, 32] {
            lang.reset();
            let mut toks = Vec::new();
            for _ in 0..k {
                toks.push(tok_p.clone());
                toks.push(tok_n.clone());
            }
            let d = lang.derivative(s, &toks).unwrap();
            assert!(lang.nullable(d), "k={k}: p n repeated is in the language");
            sizes.push(lang.reachable_count(d));
        }
        assert_eq!(sizes[0], sizes[3], "live graph must not grow with input: {sizes:?}");
        assert!(lang.metrics().empty_prunes > 0, "the pass must actually fire");
    }

    #[test]
    fn pruning_disabled_without_compaction() {
        let (mut lang, s, tok_p, tok_n) = nested_list_lang();
        lang.set_config_compaction_for_test(CompactionMode::None);
        let toks = vec![tok_p, tok_n];
        let _ = lang.derivative(s, &toks).unwrap();
        assert_eq!(lang.metrics().empty_prunes, 0);
    }

    #[test]
    fn pruned_parse_results_are_correct() {
        let (mut lang, s, tok_p, tok_n) = nested_list_lang();
        // "p ; p n p n" parses; "p ;" then "n" must reject.
        let semi = lang.terminal(";");
        let tok_semi = lang.token(semi, ";");
        let good = vec![
            tok_p.clone(),
            tok_semi.clone(),
            tok_p.clone(),
            tok_n.clone(),
            tok_p.clone(),
            tok_n.clone(),
        ];
        assert!(lang.recognize(s, &good).unwrap());
        lang.reset();
        let bad = vec![tok_p.clone(), tok_semi.clone(), tok_n.clone()];
        assert!(!lang.recognize(s, &bad).unwrap());
    }
}
