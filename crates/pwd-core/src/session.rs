//! Incremental parsing sessions.
//!
//! PWD's outer loop is naturally *incremental*: the parser state after `k`
//! tokens is just the derivative `D_{t1…tk}(L)`, a first-class language. A
//! [`ParseSession`] exposes that loop one token at a time — feed tokens as
//! they arrive (e.g. from a REPL), query acceptance of the prefix so far,
//! inspect per-token costs, and extract a forest whenever the prefix is a
//! sentence. This is an API the batch `parse` functions cannot offer and a
//! natural extension of the paper's design (its §3.1 `parse` is exactly
//! `feed*; parse-null`).
//!
//! Because the state after `k` tokens *is* a language (a [`NodeId`]), a
//! session is also **checkpointable**: [`SessionState::checkpoint`] saves
//! the current derivative node, and [`SessionState::rollback`] restores it.
//! Nothing is copied — the derivative graph is append-only within a parse
//! (compaction rewrites are semantics-preserving, and emptiness pruning only
//! collapses provably-empty nodes), so an earlier derivative stays valid
//! however far the session has advanced past it. Rollback therefore composes
//! with the epoch-stamped memo/nullability state and the never-evicted
//! class-template rows for free: all of it is keyed by node, and the nodes
//! survive.
//!
//! Two layers are provided. [`SessionState`] is the *ownable* state machine
//! (no borrow of the [`Language`]; every method takes `&mut Language`), the
//! shape long-lived holders such as pooled service sessions need.
//! [`ParseSession`] borrows the language once and wraps a `SessionState`
//! for ergonomic linear use.

use crate::config::CompactionMode;
use crate::error::PwdError;
use crate::expr::{Language, NodeId};
use crate::token::Token;
use pwd_forest::ForestId;

/// The observable state of a session after feeding a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// Some continuation of the input can still reach a sentence.
    Viable {
        /// Is the *current* prefix itself a sentence?
        prefix_is_sentence: bool,
    },
    /// The derivative is the empty language: no continuation can succeed.
    Dead,
}

/// An incremental parse over a [`Language`].
///
/// # Examples
///
/// ```
/// use pwd_core::{Language, ParseSession};
///
/// # fn main() -> Result<(), pwd_core::PwdError> {
/// let mut lang = Language::default();
/// let a = lang.terminal("a");
/// let ta = lang.term_node(a);
/// let s = lang.star(ta);
/// let tok = lang.token(a, "a");
///
/// let mut session = ParseSession::start(&mut lang, s)?;
/// assert!(session.prefix_is_sentence()); // ε ∈ a*
/// session.feed(&tok)?;
/// session.feed(&tok)?;
/// assert!(session.prefix_is_sentence());
/// assert_eq!(session.tokens_fed(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParseSession<'a> {
    lang: &'a mut Language,
    state: SessionState,
}

/// A saved session position: the derivative node after `k` tokens.
///
/// The paper's central observation made operational — the parser state after
/// a prefix *is* the language `D_{t1…tk}(L)`, so saving it is saving one
/// `NodeId`. A checkpoint is valid for the session (and epoch) it was taken
/// in: [`Language::reset`] discards derived nodes, so checkpoints never
/// outlive their session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCheckpoint {
    current: NodeId,
    fed: usize,
    dead: bool,
}

impl SessionCheckpoint {
    /// Number of tokens fed when this checkpoint was taken.
    pub fn tokens_fed(&self) -> usize {
        self.fed
    }

    /// The same saved derivative state re-stamped at a different position —
    /// the edit-splicing re-anchor primitive (the checkpoint analogue of
    /// [`SessionState::set_tokens_fed`]). Sound only when the caller has
    /// proved the state at `fed` on the current timeline equals this saved
    /// state (equal [`StateSignature`](crate::StateSignature)s at an
    /// aligned position, plus an identical suffix up to `fed`).
    pub fn at_position(&self, fed: usize) -> SessionCheckpoint {
        SessionCheckpoint { fed, ..*self }
    }
}

/// The ownable state of an incremental parse: no borrow of the
/// [`Language`], every method takes `&mut Language` explicitly.
///
/// This is the state machine under [`ParseSession`], split out so a
/// long-lived holder (a pooled service session, a backend object) can own
/// the session state alongside the engine instead of borrowing it for the
/// whole session lifetime.
#[derive(Debug, Clone)]
pub struct SessionState {
    current: NodeId,
    fed: usize,
    dead: bool,
    pruning: bool,
}

impl SessionState {
    /// Starts a session at the given start node.
    ///
    /// # Errors
    ///
    /// [`PwdError::UndefinedNonterminal`] for incomplete grammars.
    pub fn start(lang: &mut Language, start: NodeId) -> Result<SessionState, PwdError> {
        lang.validate(start)?;
        lang.in_parse = false;
        let mut current = start;
        if lang.config.prepass_right_children && lang.config.compaction != CompactionMode::None {
            current = lang.prepass_root(current);
        }
        lang.mark_initial();
        let pruning = lang.config.compaction != CompactionMode::None;
        if pruning {
            lang.prune_empty(0);
        }
        lang.in_parse = true;
        if lang.automaton_active() {
            // Intern the start node so a warm transition table serves this
            // session from its very first feed.
            let _ = lang.auto_intern(current);
        }
        Ok(SessionState { current, fed: 0, dead: false, pruning })
    }

    /// Feeds one token, advancing the derivative.
    ///
    /// # Errors
    ///
    /// [`PwdError::NodeBudgetExceeded`] if the node budget trips. Feeding a
    /// token that kills the language is *not* an error; it returns
    /// [`FeedOutcome::Dead`] (and further feeds stay dead).
    pub fn feed(&mut self, lang: &mut Language, tok: &Token) -> Result<FeedOutcome, PwdError> {
        if self.dead {
            self.fed += 1;
            return Ok(FeedOutcome::Dead);
        }
        // Tier three: when the current derivative is an interned automaton
        // state with an explored row entry for this terminal, the feed is a
        // table lookup — no derive, no memo probe, no allocation. The state
        // mapping lives on the node, so this composes with checkpoint and
        // rollback for free (a checkpoint is still just a `NodeId`).
        let auto_active = lang.automaton_active();
        let prev_state = if auto_active { lang.auto_state_of(self.current) } else { None };
        if let Some(st) = prev_state {
            if let Some((next, ns, dead)) = lang.auto_try_step(st, tok.term()) {
                self.fed += 1;
                self.current = next;
                if dead {
                    self.dead = true;
                    return Ok(FeedOutcome::Dead);
                }
                return Ok(FeedOutcome::Viable { prefix_is_sentence: lang.auto_accept(ns) });
            }
        }
        let generation_start = lang.nodes.len();
        let span = lang.obs_start();
        self.current = lang.derive_node(self.current, tok);
        lang.obs_end(pwd_obs::Phase::Derive, span);
        if lang.config.compaction == CompactionMode::SeparatePass {
            let span = lang.obs_start();
            self.current = lang.compact_pass(self.current);
            lang.obs_end(pwd_obs::Phase::Compact, span);
        }
        if self.pruning {
            let span = lang.obs_start();
            lang.prune_empty(generation_start);
            lang.obs_end(pwd_obs::Phase::Compact, span);
        }
        self.fed += 1;
        if lang.budget_hit {
            lang.in_parse = false;
            self.dead = true; // the arena overflowed; the session is over
            return Err(PwdError::NodeBudgetExceeded {
                limit: lang.config.max_nodes.unwrap_or(0),
                at_token: self.fed - 1,
            });
        }
        if auto_active {
            // Interpreted feed under an active automaton: intern the fresh
            // derivative (post-prune), record the explored transition, and
            // canonicalize onto the state's root.
            lang.metrics.auto_fallbacks += 1;
            let ns = lang.auto_intern(self.current);
            if let (Some(from), Some(to)) = (prev_state, ns) {
                lang.auto_record(from, tok.term(), to);
            }
            if let Some(ns) = ns {
                self.current = lang.auto.roots[ns as usize];
            }
        }
        if lang.is_empty_node(self.current) {
            self.dead = true;
            return Ok(FeedOutcome::Dead);
        }
        Ok(FeedOutcome::Viable { prefix_is_sentence: lang.accept_of(self.current) })
    }

    /// Feeds a slice of tokens; stops early if the language dies.
    ///
    /// # Errors
    ///
    /// Same as [`feed`](SessionState::feed).
    pub fn feed_all(
        &mut self,
        lang: &mut Language,
        toks: &[Token],
    ) -> Result<FeedOutcome, PwdError> {
        let mut last = FeedOutcome::Viable { prefix_is_sentence: self.prefix_is_sentence(lang) };
        for t in toks {
            last = self.feed(lang, t)?;
            if last == FeedOutcome::Dead {
                break;
            }
        }
        Ok(last)
    }

    /// Saves the current position: one `NodeId`, no state is copied.
    ///
    /// The checkpoint composes with the engine's sharing machinery because
    /// everything a resumed parse will consult — derive memos, nullability
    /// values, class-template rows — is keyed by node and epoch, and both
    /// survive: rollback neither bumps the epoch nor removes nodes.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint { current: self.current, fed: self.fed, dead: self.dead }
    }

    /// Restores a position saved by [`checkpoint`](SessionState::checkpoint)
    /// earlier in **this** session.
    ///
    /// O(1): the derivative graph is append-only within a parse, so the
    /// saved node is still valid; nodes derived after the checkpoint become
    /// garbage (reclaimed by the next [`Language::reset`]) but stay inert.
    /// Rollback cannot recover from a tripped node budget — the arena is
    /// still full, so the next feed re-reports the budget error.
    pub fn rollback(&mut self, cp: &SessionCheckpoint) {
        self.current = cp.current;
        self.fed = cp.fed;
        self.dead = cp.dead;
    }

    /// Overrides the fed-token count without touching the derivative.
    ///
    /// The re-alignment primitive under edit splicing: when an edit changes
    /// the prefix *length* but a memoized pre-edit state is known to carry
    /// the same language (equal
    /// [`StateSignature`](crate::StateSignature)s), the restored state's
    /// position is re-stamped to the post-edit token count.
    pub fn set_tokens_fed(&mut self, fed: usize) {
        self.fed = fed;
    }

    /// Is the prefix fed so far a complete sentence? O(1) when the current
    /// derivative is an interned automaton state with a cached accept bit.
    pub fn prefix_is_sentence(&self, lang: &mut Language) -> bool {
        !self.dead && {
            let cur = self.current;
            lang.accept_of(cur)
        }
    }

    /// Can any continuation still reach a sentence?
    pub fn is_viable(&self) -> bool {
        !self.dead
    }

    /// Number of tokens fed (including any fed after death).
    pub fn tokens_fed(&self) -> usize {
        self.fed
    }

    /// The current derivative language `D_{t1…tk}(L)` as a node.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// Extracts the forest of parses of the prefix fed so far.
    ///
    /// # Errors
    ///
    /// [`PwdError::Rejected`] if the prefix is not a sentence.
    pub fn forest(&self, lang: &mut Language) -> Result<ForestId, PwdError> {
        if !self.prefix_is_sentence(lang) {
            return Err(PwdError::Rejected { position: self.fed, token: None });
        }
        let span = lang.obs_start();
        let forest = lang.parse_null(self.current);
        lang.obs_end(pwd_obs::Phase::Forest, span);
        Ok(forest)
    }

    /// Number of nodes reachable from the current derivative.
    pub fn live_nodes(&self, lang: &Language) -> usize {
        lang.reachable_count(self.current)
    }

    /// Ends the session, returning the final derivative node.
    pub fn finish(self, lang: &mut Language) -> NodeId {
        lang.in_parse = false;
        self.current
    }
}

impl<'a> ParseSession<'a> {
    /// Starts a session at the given start node.
    ///
    /// # Errors
    ///
    /// [`PwdError::UndefinedNonterminal`] for incomplete grammars.
    pub fn start(lang: &'a mut Language, start: NodeId) -> Result<ParseSession<'a>, PwdError> {
        let state = SessionState::start(lang, start)?;
        Ok(ParseSession { lang, state })
    }

    /// Feeds one token, advancing the derivative.
    ///
    /// # Errors
    ///
    /// Same as [`SessionState::feed`].
    pub fn feed(&mut self, tok: &Token) -> Result<FeedOutcome, PwdError> {
        self.state.feed(self.lang, tok)
    }

    /// Feeds a slice of tokens; stops early if the language dies.
    ///
    /// # Errors
    ///
    /// Same as [`feed`](ParseSession::feed).
    pub fn feed_all(&mut self, toks: &[Token]) -> Result<FeedOutcome, PwdError> {
        self.state.feed_all(self.lang, toks)
    }

    /// Saves the current position — see [`SessionState::checkpoint`]
    /// (checkpoint = the saved derivative, the paper's `D_{t1…tk}(L)`).
    pub fn checkpoint(&self) -> SessionCheckpoint {
        self.state.checkpoint()
    }

    /// Restores a checkpoint taken earlier in this session — see
    /// [`SessionState::rollback`].
    pub fn rollback(&mut self, cp: &SessionCheckpoint) {
        self.state.rollback(cp);
    }

    /// Is the prefix fed so far a complete sentence?
    pub fn prefix_is_sentence(&mut self) -> bool {
        self.state.prefix_is_sentence(self.lang)
    }

    /// Can any continuation still reach a sentence?
    pub fn is_viable(&self) -> bool {
        self.state.is_viable()
    }

    /// Number of tokens fed (including any fed after death).
    pub fn tokens_fed(&self) -> usize {
        self.state.tokens_fed()
    }

    /// The current derivative language `D_{t1…tk}(L)` as a node — usable
    /// with every `Language` API (even as the start of further parses).
    pub fn current(&self) -> NodeId {
        self.state.current()
    }

    /// Extracts the forest of parses of the prefix fed so far.
    ///
    /// # Errors
    ///
    /// [`PwdError::Rejected`] if the prefix is not a sentence.
    pub fn forest(&mut self) -> Result<ForestId, PwdError> {
        self.state.forest(self.lang)
    }

    /// Number of nodes reachable from the current derivative — the live
    /// parser state size (stays bounded for LL-ish prefixes thanks to
    /// compaction and emptiness pruning).
    pub fn live_nodes(&self) -> usize {
        self.state.live_nodes(self.lang)
    }

    /// Ends the session, returning the final derivative node.
    pub fn finish(self) -> NodeId {
        self.state.finish(self.lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParserConfig;
    use pwd_forest::EnumLimits;

    fn ab_language() -> (Language, NodeId, Token, Token) {
        // S = a b | a S b  (matched pairs a^n b^n)
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let (ta, tb) = (lang.term_node(a), lang.term_node(b));
        let s = lang.forward();
        let ab = lang.cat(ta, tb);
        let asb = lang.seq(&[ta, s, tb]);
        let body = lang.alt(ab, asb);
        lang.define(s, body);
        let tok_a = lang.token(a, "a");
        let tok_b = lang.token(b, "b");
        (lang, s, tok_a, tok_b)
    }

    #[test]
    fn incremental_matched_pairs() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        assert!(!sess.prefix_is_sentence());
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&b).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&b).unwrap(), FeedOutcome::Viable { prefix_is_sentence: true });
        // aabb is a sentence; the forest is extractable mid-session.
        let f = sess.forest().unwrap();
        let lang = {
            let _ = sess.finish();
            lang
        };
        let trees = lang.trees_of(f, EnumLimits::default());
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].fringe(), vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn death_is_detected_and_sticky() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&b).unwrap(); // no sentence starts with b
        assert!(!sess.is_viable());
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Dead);
        assert!(sess.forest().is_err());
        assert_eq!(sess.tokens_fed(), 2);
    }

    #[test]
    fn session_agrees_with_batch_parse() {
        let (mut lang, s, a, b) = ab_language();
        let inputs: Vec<Vec<&Token>> =
            vec![vec![&a, &b], vec![&a, &a, &b, &b], vec![&a, &b, &b], vec![&a, &a], vec![]];
        for input in inputs {
            let toks: Vec<Token> = input.iter().map(|t| (*t).clone()).collect();
            lang.reset();
            let batch = lang.recognize(s, &toks).unwrap();
            lang.reset();
            let mut sess = ParseSession::start(&mut lang, s).unwrap();
            for t in &toks {
                let _ = sess.feed(t).unwrap();
            }
            let incremental = sess.prefix_is_sentence();
            assert_eq!(batch, incremental, "{toks:?}");
        }
    }

    #[test]
    fn current_derivative_is_a_first_class_language() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&a).unwrap();
        sess.feed(&a).unwrap();
        let d = sess.finish();
        // After "aa", the remaining language is exactly { b b, a^k b^(k+2) }…
        // check two members and a non-member.
        assert!(lang.recognize(d, &[b.clone(), b.clone()]).unwrap());
        assert!(lang.recognize(d, &[a.clone(), b.clone(), b.clone(), b.clone()]).unwrap());
        lang.reset();
        // reset() drops derived nodes, so re-derive for the negative case.
        let d = lang.derivative(s, &[a.clone(), a.clone()]).unwrap();
        assert!(!lang.recognize(d, std::slice::from_ref(&b)).unwrap());
    }

    #[test]
    fn checkpoint_rollback_replays_exactly() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&a).unwrap();
        sess.feed(&a).unwrap();
        let cp = sess.checkpoint();
        assert_eq!(cp.tokens_fed(), 2);
        // Speculate down a doomed path…
        sess.feed(&a).unwrap();
        sess.feed(&b).unwrap();
        sess.feed(&a).unwrap(); // aaba… dead
        assert!(!sess.is_viable());
        // …and rewind: the saved derivative is still the language after aa.
        sess.rollback(&cp);
        assert!(sess.is_viable());
        assert_eq!(sess.tokens_fed(), 2);
        assert!(!sess.prefix_is_sentence());
        sess.feed(&b).unwrap();
        sess.feed(&b).unwrap();
        assert!(sess.prefix_is_sentence(), "aa + bb is a sentence after rollback");
        let f = sess.forest().unwrap();
        let _ = sess.finish();
        let trees = lang.trees_of(f, EnumLimits::default());
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].fringe(), vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn rollback_out_of_death_is_sound() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        let cp0 = sess.checkpoint();
        sess.feed(&b).unwrap(); // dead immediately
        assert!(!sess.is_viable());
        sess.rollback(&cp0);
        assert!(sess.is_viable());
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&b).unwrap(), FeedOutcome::Viable { prefix_is_sentence: true });
    }

    #[test]
    fn nested_checkpoints_restore_in_any_order() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&a).unwrap();
        let cp1 = sess.checkpoint();
        sess.feed(&a).unwrap();
        let cp2 = sess.checkpoint();
        sess.feed(&b).unwrap();
        // Roll past cp2 down to cp1, then forward again to cp2: both nodes
        // remain valid because the graph is append-only within a parse.
        sess.rollback(&cp1);
        assert_eq!(sess.tokens_fed(), 1);
        sess.rollback(&cp2);
        assert_eq!(sess.tokens_fed(), 2);
        sess.feed(&b).unwrap();
        sess.feed(&b).unwrap();
        assert!(sess.prefix_is_sentence());
    }

    #[test]
    fn ownable_session_state_drives_without_borrowing() {
        // The SessionState layer: holder owns the state, the language is
        // passed per call — the shape pooled service sessions use.
        let (mut lang, s, a, b) = ab_language();
        let mut st = SessionState::start(&mut lang, s).unwrap();
        st.feed(&mut lang, &a).unwrap();
        let cp = st.checkpoint();
        st.feed(&mut lang, &a).unwrap();
        st.rollback(&cp);
        st.feed(&mut lang, &b).unwrap();
        assert!(st.prefix_is_sentence(&mut lang));
        let d = st.finish(&mut lang);
        assert!(lang.nullable(d));
    }

    #[test]
    fn budget_error_reports_token_index() {
        let (mut lang, s, a, b) = ab_language();
        lang.config.max_nodes = Some(lang.node_count() + 4);
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        let mut hit = None;
        for (i, t) in [&a, &a, &a, &a, &b, &b].iter().enumerate() {
            match sess.feed(t) {
                Ok(_) => {}
                Err(PwdError::NodeBudgetExceeded { at_token, .. }) => {
                    hit = Some((i, at_token));
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let (i, at) = hit.expect("budget must trip");
        assert_eq!(i, at);
    }
}
