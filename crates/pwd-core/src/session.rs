//! Incremental parsing sessions.
//!
//! PWD's outer loop is naturally *incremental*: the parser state after `k`
//! tokens is just the derivative `D_{t1…tk}(L)`, a first-class language. A
//! [`ParseSession`] exposes that loop one token at a time — feed tokens as
//! they arrive (e.g. from a REPL), query acceptance of the prefix so far,
//! inspect per-token costs, and extract a forest whenever the prefix is a
//! sentence. This is an API the batch `parse` functions cannot offer and a
//! natural extension of the paper's design (its §3.1 `parse` is exactly
//! `feed*; parse-null`).

use crate::config::CompactionMode;
use crate::error::PwdError;
use crate::expr::{Language, NodeId};
use crate::forest::ForestId;
use crate::token::Token;

/// The observable state of a session after feeding a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedOutcome {
    /// Some continuation of the input can still reach a sentence.
    Viable {
        /// Is the *current* prefix itself a sentence?
        prefix_is_sentence: bool,
    },
    /// The derivative is the empty language: no continuation can succeed.
    Dead,
}

/// An incremental parse over a [`Language`].
///
/// # Examples
///
/// ```
/// use pwd_core::{Language, ParseSession};
///
/// # fn main() -> Result<(), pwd_core::PwdError> {
/// let mut lang = Language::default();
/// let a = lang.terminal("a");
/// let ta = lang.term_node(a);
/// let s = lang.star(ta);
/// let tok = lang.token(a, "a");
///
/// let mut session = ParseSession::start(&mut lang, s)?;
/// assert!(session.prefix_is_sentence()); // ε ∈ a*
/// session.feed(&tok)?;
/// session.feed(&tok)?;
/// assert!(session.prefix_is_sentence());
/// assert_eq!(session.tokens_fed(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParseSession<'a> {
    lang: &'a mut Language,
    current: NodeId,
    fed: usize,
    dead: bool,
    pruning: bool,
}

impl<'a> ParseSession<'a> {
    /// Starts a session at the given start node.
    ///
    /// # Errors
    ///
    /// [`PwdError::UndefinedNonterminal`] for incomplete grammars.
    pub fn start(lang: &'a mut Language, start: NodeId) -> Result<ParseSession<'a>, PwdError> {
        lang.validate(start)?;
        lang.in_parse = false;
        let mut current = start;
        if lang.config.prepass_right_children && lang.config.compaction != CompactionMode::None {
            current = lang.prepass_root(current);
        }
        lang.mark_initial();
        let pruning = lang.config.compaction != CompactionMode::None;
        if pruning {
            lang.prune_empty(0);
        }
        lang.in_parse = true;
        Ok(ParseSession { lang, current, fed: 0, dead: false, pruning })
    }

    /// Feeds one token, advancing the derivative.
    ///
    /// # Errors
    ///
    /// [`PwdError::NodeBudgetExceeded`] if the node budget trips. Feeding a
    /// token that kills the language is *not* an error; it returns
    /// [`FeedOutcome::Dead`] (and further feeds stay dead).
    pub fn feed(&mut self, tok: &Token) -> Result<FeedOutcome, PwdError> {
        if self.dead {
            self.fed += 1;
            return Ok(FeedOutcome::Dead);
        }
        let generation_start = self.lang.nodes.len();
        self.current = self.lang.derive_node(self.current, tok);
        if self.lang.config.compaction == CompactionMode::SeparatePass {
            self.current = self.lang.compact_pass(self.current);
        }
        if self.pruning {
            self.lang.prune_empty(generation_start);
        }
        self.fed += 1;
        if self.lang.budget_hit {
            self.lang.in_parse = false;
            self.dead = true; // the arena overflowed; the session is over
            return Err(PwdError::NodeBudgetExceeded {
                limit: self.lang.config.max_nodes.unwrap_or(0),
                at_token: self.fed - 1,
            });
        }
        if self.lang.is_empty_node(self.current) {
            self.dead = true;
            return Ok(FeedOutcome::Dead);
        }
        Ok(FeedOutcome::Viable { prefix_is_sentence: self.lang.nullable(self.current) })
    }

    /// Feeds a slice of tokens; stops early if the language dies.
    ///
    /// # Errors
    ///
    /// Same as [`feed`](ParseSession::feed).
    pub fn feed_all(&mut self, toks: &[Token]) -> Result<FeedOutcome, PwdError> {
        let mut last = FeedOutcome::Viable { prefix_is_sentence: self.prefix_is_sentence() };
        for t in toks {
            last = self.feed(t)?;
            if last == FeedOutcome::Dead {
                break;
            }
        }
        Ok(last)
    }

    /// Is the prefix fed so far a complete sentence?
    pub fn prefix_is_sentence(&mut self) -> bool {
        !self.dead && {
            let cur = self.current;
            self.lang.nullable(cur)
        }
    }

    /// Can any continuation still reach a sentence?
    pub fn is_viable(&self) -> bool {
        !self.dead
    }

    /// Number of tokens fed (including any fed after death).
    pub fn tokens_fed(&self) -> usize {
        self.fed
    }

    /// The current derivative language `D_{t1…tk}(L)` as a node — usable
    /// with every `Language` API (even as the start of further parses).
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// Extracts the forest of parses of the prefix fed so far.
    ///
    /// # Errors
    ///
    /// [`PwdError::Rejected`] if the prefix is not a sentence.
    pub fn forest(&mut self) -> Result<ForestId, PwdError> {
        if !self.prefix_is_sentence() {
            return Err(PwdError::Rejected { position: self.fed, token: None });
        }
        let cur = self.current;
        Ok(self.lang.parse_null(cur))
    }

    /// Number of nodes reachable from the current derivative — the live
    /// parser state size (stays bounded for LL-ish prefixes thanks to
    /// compaction and emptiness pruning).
    pub fn live_nodes(&self) -> usize {
        self.lang.reachable_count(self.current)
    }

    /// Ends the session, returning the final derivative node.
    pub fn finish(self) -> NodeId {
        self.lang.in_parse = false;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::EnumLimits;
    use crate::ParserConfig;

    fn ab_language() -> (Language, NodeId, Token, Token) {
        // S = a b | a S b  (matched pairs a^n b^n)
        let mut lang = Language::new(ParserConfig::improved());
        let a = lang.terminal("a");
        let b = lang.terminal("b");
        let (ta, tb) = (lang.term_node(a), lang.term_node(b));
        let s = lang.forward();
        let ab = lang.cat(ta, tb);
        let asb = lang.seq(&[ta, s, tb]);
        let body = lang.alt(ab, asb);
        lang.define(s, body);
        let tok_a = lang.token(a, "a");
        let tok_b = lang.token(b, "b");
        (lang, s, tok_a, tok_b)
    }

    #[test]
    fn incremental_matched_pairs() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        assert!(!sess.prefix_is_sentence());
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&b).unwrap(), FeedOutcome::Viable { prefix_is_sentence: false });
        assert_eq!(sess.feed(&b).unwrap(), FeedOutcome::Viable { prefix_is_sentence: true });
        // aabb is a sentence; the forest is extractable mid-session.
        let f = sess.forest().unwrap();
        let lang = {
            let _ = sess.finish();
            lang
        };
        let trees = lang.trees_of(f, EnumLimits::default());
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].fringe(), vec!["a", "a", "b", "b"]);
    }

    #[test]
    fn death_is_detected_and_sticky() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&b).unwrap(); // no sentence starts with b
        assert!(!sess.is_viable());
        assert_eq!(sess.feed(&a).unwrap(), FeedOutcome::Dead);
        assert!(sess.forest().is_err());
        assert_eq!(sess.tokens_fed(), 2);
    }

    #[test]
    fn session_agrees_with_batch_parse() {
        let (mut lang, s, a, b) = ab_language();
        let inputs: Vec<Vec<&Token>> =
            vec![vec![&a, &b], vec![&a, &a, &b, &b], vec![&a, &b, &b], vec![&a, &a], vec![]];
        for input in inputs {
            let toks: Vec<Token> = input.iter().map(|t| (*t).clone()).collect();
            lang.reset();
            let batch = lang.recognize(s, &toks).unwrap();
            lang.reset();
            let mut sess = ParseSession::start(&mut lang, s).unwrap();
            for t in &toks {
                let _ = sess.feed(t).unwrap();
            }
            let incremental = sess.prefix_is_sentence();
            assert_eq!(batch, incremental, "{toks:?}");
        }
    }

    #[test]
    fn current_derivative_is_a_first_class_language() {
        let (mut lang, s, a, b) = ab_language();
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        sess.feed(&a).unwrap();
        sess.feed(&a).unwrap();
        let d = sess.finish();
        // After "aa", the remaining language is exactly { b b, a^k b^(k+2) }…
        // check two members and a non-member.
        assert!(lang.recognize(d, &[b.clone(), b.clone()]).unwrap());
        assert!(lang.recognize(d, &[a.clone(), b.clone(), b.clone(), b.clone()]).unwrap());
        lang.reset();
        // reset() drops derived nodes, so re-derive for the negative case.
        let d = lang.derivative(s, &[a.clone(), a.clone()]).unwrap();
        assert!(!lang.recognize(d, std::slice::from_ref(&b)).unwrap());
    }

    #[test]
    fn budget_error_reports_token_index() {
        let (mut lang, s, a, b) = ab_language();
        lang.config.max_nodes = Some(lang.node_count() + 4);
        let mut sess = ParseSession::start(&mut lang, s).unwrap();
        let mut hit = None;
        for (i, t) in [&a, &a, &a, &a, &b, &b].iter().enumerate() {
            match sess.feed(t) {
                Ok(_) => {}
                Err(PwdError::NodeBudgetExceeded { at_token, .. }) => {
                    hit = Some((i, at_token));
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let (i, at) = hit.expect("budget must trip");
        assert_eq!(i, at);
    }
}
