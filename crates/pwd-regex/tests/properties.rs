//! Property tests: Kleene-algebra laws hold semantically (via the
//! equivalence decision procedure and the matcher), DFA construction agrees
//! with direct derivation, and minimization is sound.

use proptest::prelude::*;
use pwd_regex::{alt, cat, ch, empty, eps, equivalent, matches, star, Dfa, Regex};

fn rx_strategy() -> impl Strategy<Value = Regex> {
    let leaf =
        prop_oneof![Just(eps()), Just(empty()), (0u8..3).prop_map(|k| ch((b'a' + k) as char)),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| cat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| alt(a, b)),
            inner.prop_map(star),
        ]
    })
}

fn input_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..3, 0..10)
        .prop_map(|v| v.into_iter().map(|k| (b'a' + k) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kleene algebra: distributivity r(s|t) ≡ rs | rt.
    #[test]
    fn distributivity(r in rx_strategy(), s in rx_strategy(), t in rx_strategy()) {
        let lhs = cat(r.clone(), alt(s.clone(), t.clone()));
        let rhs = alt(cat(r.clone(), s), cat(r, t));
        prop_assert!(equivalent(&lhs, &rhs));
    }

    /// Kleene algebra: star unrolling r* ≡ ε | r r*.
    #[test]
    fn star_unrolling(r in rx_strategy()) {
        let lhs = star(r.clone());
        let rhs = alt(eps(), cat(r.clone(), star(r)));
        prop_assert!(equivalent(&lhs, &rhs));
    }

    /// (r*)* ≡ r* and (r|s)* ≡ (r* s*)*.
    #[test]
    fn star_laws(r in rx_strategy(), s in rx_strategy()) {
        prop_assert!(equivalent(&star(star(r.clone())), &star(r.clone())));
        let lhs = star(alt(r.clone(), s.clone()));
        let rhs = star(cat(star(r), star(s)));
        prop_assert!(equivalent(&lhs, &rhs));
    }

    /// The DFA accepts exactly what direct derivation matches.
    #[test]
    fn dfa_agrees_with_matcher(r in rx_strategy(), s in input_strategy()) {
        let dfa = Dfa::build(&r);
        prop_assert_eq!(dfa.accepts(&s), matches(&r, &s));
    }

    /// Minimization preserves the language and never grows the automaton.
    #[test]
    fn minimization_sound(r in rx_strategy(), s in input_strategy()) {
        let dfa = Dfa::build(&r);
        let min = dfa.minimize();
        prop_assert!(min.len() <= dfa.len());
        prop_assert_eq!(min.accepts(&s), dfa.accepts(&s));
    }

    /// Equivalence is reflexive and respects the matcher: if equivalent
    /// says languages differ, some probe distinguishes them only in the
    /// consistent direction.
    #[test]
    fn equivalence_consistent_with_matcher(a in rx_strategy(), b in rx_strategy(), s in input_strategy()) {
        prop_assert!(equivalent(&a, &a));
        if equivalent(&a, &b) {
            prop_assert_eq!(matches(&a, &s), matches(&b, &s), "equivalent regexes disagree on {:?}", s);
        }
    }
}
