//! A small concrete syntax for regexes, used to write lexer rules tersely.
//!
//! Supported syntax: literals, `.` (any char), `[a-z_]` and `[^…]` classes,
//! grouping `(…)`, alternation `|`, postfix `*`, `+`, `?`, and escapes
//! (`\n`, `\t`, `\r`, `\\`, `\.`, `\[`, … plus `\d`, `\w`, `\s` and their
//! negations `\D`, `\W`, `\S`).

use crate::class::CharClass;
use crate::syntax::{alt, cat, class, empty, eps, opt, plus, star, Regex};
use std::fmt;

/// Error produced when a regex pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset in the pattern where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseRegexError {}

/// Parses a regex pattern into a canonicalized [`Regex`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] on malformed patterns (unbalanced parentheses,
/// dangling postfix operators, unterminated classes, bad escapes).
///
/// # Examples
///
/// ```
/// use pwd_regex::{parse, matches};
/// let r = parse(r"[a-z_][a-z0-9_]*").unwrap();
/// assert!(matches(&r, "snake_case2"));
/// assert!(!matches(&r, "2snake"));
/// ```
pub fn parse(pattern: &str) -> Result<Regex, ParseRegexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let re = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(re)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseRegexError {
        ParseRegexError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Regex, ParseRegexError> {
        let mut re = self.concatenation()?;
        while self.peek() == Some('|') {
            self.bump();
            let rhs = self.concatenation()?;
            re = alt(re, rhs);
        }
        Ok(re)
    }

    fn concatenation(&mut self) -> Result<Regex, ParseRegexError> {
        let mut re = eps();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.postfix()?;
            re = cat(re, atom);
        }
        Ok(re)
    }

    fn postfix(&mut self) -> Result<Regex, ParseRegexError> {
        let mut re = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    re = star(re);
                }
                Some('+') => {
                    self.bump();
                    re = plus(re);
                }
                Some('?') => {
                    self.bump();
                    re = opt(re);
                }
                _ => break,
            }
        }
        Ok(re)
    }

    fn atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let re = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(re)
            }
            Some(')') => Err(self.err("unmatched ')'")),
            Some('*') | Some('+') | Some('?') => Err(self.err("dangling postfix operator")),
            Some('.') => Ok(class(CharClass::any())),
            Some('[') => self.char_class(),
            Some('\\') => {
                let cls = self.escape()?;
                Ok(class(cls))
            }
            Some(c) => Ok(class(CharClass::singleton(c))),
        }
    }

    fn escape(&mut self) -> Result<CharClass, ParseRegexError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling escape"));
        };
        Ok(match c {
            'n' => CharClass::singleton('\n'),
            't' => CharClass::singleton('\t'),
            'r' => CharClass::singleton('\r'),
            '0' => CharClass::singleton('\0'),
            'd' => CharClass::range('0', '9'),
            'D' => CharClass::range('0', '9').complement(),
            'w' => word_class(),
            'W' => word_class().complement(),
            's' => space_class(),
            'S' => space_class().complement(),
            other => CharClass::singleton(other),
        })
    }

    fn char_class(&mut self) -> Result<Regex, ParseRegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut cls = CharClass::empty();
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            first = false;
            let lo = match self.bump().expect("peeked") {
                '\\' => {
                    let c = self.escape()?;
                    // Multi-char escapes can't participate in ranges.
                    if c.len() != 1 {
                        cls = cls.union(&c);
                        continue;
                    }
                    let (v, _) = c.ranges().next().expect("singleton");
                    char::from_u32(v).expect("valid scalar")
                }
                c => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unterminated range")),
                    Some('\\') => {
                        let c = self.escape()?;
                        if c.len() != 1 {
                            return Err(self.err("class escape not allowed as range bound"));
                        }
                        let (v, _) = c.ranges().next().expect("singleton");
                        char::from_u32(v).expect("valid scalar")
                    }
                    Some(c) => c,
                };
                if lo > hi {
                    return Err(self.err("inverted character range"));
                }
                cls = cls.union(&CharClass::range(lo, hi));
            } else {
                cls = cls.union(&CharClass::singleton(lo));
            }
        }
        let cls = if negated { cls.complement() } else { cls };
        if cls.is_empty() {
            Ok(empty())
        } else {
            Ok(class(cls))
        }
    }
}

fn word_class() -> CharClass {
    CharClass::from_ranges([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])
}

fn space_class() -> CharClass {
    CharClass::from_chars([' ', '\t', '\n', '\r', '\u{0b}', '\u{0c}'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deriv::matches;

    fn ok(p: &str) -> Regex {
        parse(p).unwrap_or_else(|e| panic!("pattern {p:?} should parse: {e}"))
    }

    #[test]
    fn literal_and_alternation() {
        let r = ok("foo|bar");
        assert!(matches(&r, "foo"));
        assert!(matches(&r, "bar"));
        assert!(!matches(&r, "baz"));
    }

    #[test]
    fn postfix_operators() {
        let r = ok("ab*c+d?");
        assert!(matches(&r, "ac"));
        assert!(matches(&r, "abbbccd"));
        assert!(!matches(&r, "ad"));
    }

    #[test]
    fn classes_and_ranges() {
        let r = ok("[a-c]+");
        assert!(matches(&r, "abcba"));
        assert!(!matches(&r, "abd"));
        let neg = ok("[^0-9]");
        assert!(matches(&neg, "x"));
        assert!(!matches(&neg, "5"));
    }

    #[test]
    fn dash_literal_at_end_of_class() {
        let r = ok("[a-]");
        assert!(matches(&r, "a"));
        assert!(matches(&r, "-"));
        assert!(!matches(&r, "b"));
    }

    #[test]
    fn escapes() {
        assert!(matches(&ok(r"\d+"), "123"));
        assert!(matches(&ok(r"\w+"), "a_1"));
        assert!(matches(&ok(r"\s"), " "));
        assert!(matches(&ok(r"\."), "."));
        assert!(!matches(&ok(r"\."), "x"));
        assert!(matches(&ok(r"[\d_]+"), "1_2"));
    }

    #[test]
    fn grouping() {
        let r = ok("(ab)+");
        assert!(matches(&r, "abab"));
        assert!(!matches(&r, "aba"));
    }

    #[test]
    fn dot_matches_any() {
        let r = ok("a.c");
        assert!(matches(&r, "axc"));
        assert!(matches(&r, "a.c"));
        assert!(!matches(&r, "ac"));
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        let r = ok("");
        assert!(matches(&r, ""));
        assert!(!matches(&r, "a"));
    }

    #[test]
    fn errors() {
        for bad in ["(", ")", "a)", "*", "a|*", "[abc", "[z-a]", "\\"] {
            assert!(parse(bad).is_err(), "pattern {bad:?} should fail");
        }
    }
}
