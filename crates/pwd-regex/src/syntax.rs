//! Regular-expression abstract syntax with canonicalizing smart constructors.
//!
//! Brzozowski's DFA construction only terminates (with finitely many states)
//! when regexes are kept in a canonical form modulo associativity,
//! commutativity, and idempotence of `|` (and `&`), plus the unit/annihilator
//! laws. The constructors here maintain exactly the normal form of
//! Owens, Reppy & Turon, *Regular-expression derivatives re-examined* (2009).

use crate::class::CharClass;
use std::fmt;
use std::rc::Rc;

/// A reference-counted, canonicalized regular expression.
pub type Regex = Rc<Re>;

/// Regular-expression syntax, including the extended operators `&`
/// (intersection) and `!` (complement) from Owens et al.
///
/// Construct values with the smart constructors ([`empty`], [`eps`],
/// [`class`], [`cat`], [`alt`], [`star`], [`and`], [`not`]) rather than the
/// enum variants directly; the constructors maintain the canonical form that
/// makes DFA construction terminate.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Re {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the language of the empty word.
    Eps,
    /// A character class: one-character words drawn from the class.
    Class(CharClass),
    /// Concatenation, kept right-associated: `Cat(a, Cat(b, c))`.
    Cat(Regex, Regex),
    /// Union, kept right-associated with sorted, deduplicated alternatives.
    Alt(Regex, Regex),
    /// Kleene star.
    Star(Regex),
    /// Intersection, canonicalized like `Alt`.
    And(Regex, Regex),
    /// Complement.
    Not(Regex),
}

/// The empty language `∅`.
pub fn empty() -> Regex {
    Rc::new(Re::Empty)
}

/// The empty-word language `ε`.
pub fn eps() -> Regex {
    Rc::new(Re::Eps)
}

/// A single-character-class language. Collapses the empty class to `∅`.
pub fn class(c: CharClass) -> Regex {
    if c.is_empty() {
        empty()
    } else {
        Rc::new(Re::Class(c))
    }
}

/// A single-character language.
pub fn ch(c: char) -> Regex {
    class(CharClass::singleton(c))
}

/// The language of exactly the string `s`.
pub fn lit(s: &str) -> Regex {
    let mut re = eps();
    for c in s.chars().rev() {
        re = cat(ch(c), re);
    }
    re
}

/// Any single character (`.` over the whole alphabet).
pub fn any_char() -> Regex {
    class(CharClass::any())
}

/// Concatenation with unit/annihilator laws and right-association:
///
/// * `∅ · r = r · ∅ = ∅`
/// * `ε · r = r`, `r · ε = r`
/// * `(r · s) · t = r · (s · t)`
pub fn cat(a: Regex, b: Regex) -> Regex {
    match (&*a, &*b) {
        (Re::Empty, _) | (_, Re::Empty) => empty(),
        (Re::Eps, _) => b,
        (_, Re::Eps) => a,
        (Re::Cat(x, y), _) => cat(x.clone(), cat(y.clone(), b)),
        _ => Rc::new(Re::Cat(a, b)),
    }
}

/// Concatenation of several parts in order.
pub fn seq<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
    let mut items: Vec<Regex> = parts.into_iter().collect();
    let mut re = eps();
    while let Some(last) = items.pop() {
        re = cat(last, re);
    }
    re
}

fn flatten_alt(r: &Regex, out: &mut Vec<Regex>) {
    match &**r {
        Re::Alt(a, b) => {
            flatten_alt(a, out);
            flatten_alt(b, out);
        }
        _ => out.push(r.clone()),
    }
}

/// Union with identity, absorption, idempotence, commutativity
/// (via sorting), and merging of adjacent character classes:
///
/// * `∅ | r = r`
/// * `¬∅ | r = ¬∅` (the universal language absorbs)
/// * `r | r = r`
/// * alternatives are flattened, sorted, and deduplicated
/// * `Class(a) | Class(b) = Class(a ∪ b)`
pub fn alt(a: Regex, b: Regex) -> Regex {
    let mut items = Vec::new();
    flatten_alt(&a, &mut items);
    flatten_alt(&b, &mut items);
    // Merge all character classes into one.
    let mut cls = CharClass::empty();
    let mut rest: Vec<Regex> = Vec::with_capacity(items.len());
    for it in items {
        match &*it {
            Re::Empty => {}
            Re::Not(inner) if matches!(**inner, Re::Empty) => return not(empty()),
            Re::Class(c) => cls = cls.union(c),
            _ => rest.push(it),
        }
    }
    if !cls.is_empty() {
        rest.push(class(cls));
    }
    rest.sort();
    rest.dedup();
    match rest.len() {
        0 => empty(),
        _ => {
            let mut iter = rest.into_iter().rev();
            let mut re = iter.next().expect("nonempty");
            for item in iter {
                re = Rc::new(Re::Alt(item, re));
            }
            re
        }
    }
}

/// Union of several alternatives.
pub fn alts<I: IntoIterator<Item = Regex>>(items: I) -> Regex {
    items.into_iter().fold(empty(), alt)
}

/// Kleene star with `(r*)* = r*`, `ε* = ε`, `∅* = ε`.
pub fn star(r: Regex) -> Regex {
    match &*r {
        Re::Empty | Re::Eps => eps(),
        Re::Star(_) => r,
        _ => Rc::new(Re::Star(r)),
    }
}

/// One-or-more repetitions: `r+ = r · r*`.
pub fn plus(r: Regex) -> Regex {
    cat(r.clone(), star(r))
}

/// Zero-or-one: `r? = ε | r`.
pub fn opt(r: Regex) -> Regex {
    alt(eps(), r)
}

/// Exactly `n` repetitions.
pub fn repeat(r: Regex, n: usize) -> Regex {
    seq(std::iter::repeat_n(r, n))
}

fn flatten_and(r: &Regex, out: &mut Vec<Regex>) {
    match &**r {
        Re::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        _ => out.push(r.clone()),
    }
}

/// Intersection with `∅ & r = ∅`, `¬∅ & r = r`, idempotence and sorting.
pub fn and(a: Regex, b: Regex) -> Regex {
    let mut items = Vec::new();
    flatten_and(&a, &mut items);
    flatten_and(&b, &mut items);
    let mut rest: Vec<Regex> = Vec::with_capacity(items.len());
    for it in items {
        match &*it {
            Re::Empty => return empty(),
            Re::Not(inner) if matches!(**inner, Re::Empty) => {}
            _ => rest.push(it),
        }
    }
    rest.sort();
    rest.dedup();
    match rest.len() {
        0 => not(empty()),
        _ => {
            let mut iter = rest.into_iter().rev();
            let mut re = iter.next().expect("nonempty");
            for item in iter {
                re = Rc::new(Re::And(item, re));
            }
            re
        }
    }
}

/// Complement with double-negation elimination.
pub fn not(r: Regex) -> Regex {
    match &*r {
        Re::Not(inner) => inner.clone(),
        _ => Rc::new(Re::Not(r)),
    }
}

/// Pretty-printer used by `Display`; parenthesizes conservatively.
fn fmt_re(r: &Re, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match r {
        Re::Empty => write!(f, "∅"),
        Re::Eps => write!(f, "ε"),
        Re::Class(c) => write!(f, "{c}"),
        Re::Cat(a, b) => {
            fmt_group(a, f)?;
            fmt_group(b, f)
        }
        Re::Alt(a, b) => {
            fmt_group(a, f)?;
            write!(f, "|")?;
            fmt_group(b, f)
        }
        Re::Star(a) => {
            fmt_group(a, f)?;
            write!(f, "*")
        }
        Re::And(a, b) => {
            fmt_group(a, f)?;
            write!(f, "&")?;
            fmt_group(b, f)
        }
        Re::Not(a) => {
            write!(f, "!")?;
            fmt_group(a, f)
        }
    }
}

fn fmt_group(r: &Re, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let atomic = matches!(r, Re::Empty | Re::Eps | Re::Class(_) | Re::Star(_) | Re::Not(_));
    if atomic {
        fmt_re(r, f)
    } else {
        write!(f, "(")?;
        fmt_re(r, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Re {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_re(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_units_and_annihilators() {
        let a = ch('a');
        assert_eq!(cat(empty(), a.clone()), empty());
        assert_eq!(cat(a.clone(), empty()), empty());
        assert_eq!(cat(eps(), a.clone()), a);
        assert_eq!(cat(a.clone(), eps()), a);
    }

    #[test]
    fn cat_right_associates() {
        let (a, b, c) = (ch('a'), ch('b'), ch('c'));
        let left = cat(cat(a.clone(), b.clone()), c.clone());
        let right = cat(a, cat(b, c));
        assert_eq!(left, right);
    }

    #[test]
    fn alt_is_aci() {
        let (a, b) = (ch('a'), lit("xy"));
        assert_eq!(alt(a.clone(), b.clone()), alt(b.clone(), a.clone()));
        assert_eq!(alt(a.clone(), a.clone()), a);
        assert_eq!(alt(empty(), a.clone()), a);
        let nested1 = alt(alt(a.clone(), b.clone()), lit("z"));
        let nested2 = alt(a, alt(lit("z"), b));
        assert_eq!(nested1, nested2);
    }

    #[test]
    fn alt_merges_classes() {
        let r = alt(ch('a'), ch('b'));
        match &*r {
            Re::Class(c) => {
                assert!(c.contains('a') && c.contains('b'));
            }
            other => panic!("expected merged class, got {other:?}"),
        }
    }

    #[test]
    fn star_collapses() {
        assert_eq!(star(empty()), eps());
        assert_eq!(star(eps()), eps());
        let s = star(ch('a'));
        assert_eq!(star(s.clone()), s);
    }

    #[test]
    fn not_double_negation() {
        let a = ch('a');
        assert_eq!(not(not(a.clone())), a);
    }

    #[test]
    fn and_laws() {
        let a = ch('a');
        assert_eq!(and(empty(), a.clone()), empty());
        assert_eq!(and(not(empty()), a.clone()), a);
        assert_eq!(and(a.clone(), a.clone()), a);
    }

    #[test]
    fn universal_absorbs_union() {
        assert_eq!(alt(not(empty()), ch('q')), not(empty()));
    }

    #[test]
    fn lit_builds_concatenation() {
        let r = lit("ab");
        assert_eq!(r, cat(ch('a'), ch('b')));
        assert_eq!(lit(""), eps());
    }

    #[test]
    fn display_is_nonempty() {
        for r in [empty(), eps(), lit("ab"), alt(lit("a"), lit("bc")), star(ch('x'))] {
            assert!(!format!("{r}").is_empty());
        }
    }
}
