//! Language-level decision procedures: emptiness, equivalence, inclusion.
//!
//! All are decided by exploring pairs of simultaneous derivatives (the
//! standard bisimulation-by-derivatives construction), with derivative
//! classes keeping the branching finite over the Unicode alphabet. These
//! procedures power the differential tests between `pwd-regex` and the
//! context-free engine, and make the crate a complete regular-language
//! toolkit rather than just a matcher.

use crate::deriv::{derivative_classes, derive, nullable};
use crate::syntax::{and, not, Regex};
use std::collections::HashSet;

/// Does `r` denote the empty language?
///
/// # Examples
///
/// ```
/// use pwd_regex::{and, ch, is_empty_lang, lit, star};
/// assert!(is_empty_lang(&and(lit("a"), lit("b"))));
/// assert!(!is_empty_lang(&star(ch('a'))));
/// ```
pub fn is_empty_lang(r: &Regex) -> bool {
    // Explore canonical derivatives; the language is nonempty iff some
    // reachable derivative is nullable.
    let mut seen: HashSet<Regex> = HashSet::new();
    let mut work = vec![r.clone()];
    while let Some(cur) = work.pop() {
        if nullable(&cur) {
            return false;
        }
        if !seen.insert(cur.clone()) {
            continue;
        }
        for cls in derivative_classes(&cur).classes() {
            if let Some(rep) = cls.representative() {
                let d = derive(&cur, rep);
                if !seen.contains(&d) {
                    work.push(d);
                }
            }
        }
    }
    true
}

/// Do `a` and `b` denote the same language?
///
/// Decided by bisimulation over pairs of derivatives: the languages differ
/// iff some reachable pair disagrees on nullability.
///
/// # Examples
///
/// ```
/// use pwd_regex::{alt, cat, ch, equivalent, star};
/// // (a|b)* ≡ (a* b*)*
/// let lhs = star(alt(ch('a'), ch('b')));
/// let rhs = star(cat(star(ch('a')), star(ch('b'))));
/// assert!(equivalent(&lhs, &rhs));
/// assert!(!equivalent(&lhs, &star(ch('a'))));
/// ```
pub fn equivalent(a: &Regex, b: &Regex) -> bool {
    let mut seen: HashSet<(Regex, Regex)> = HashSet::new();
    let mut work = vec![(a.clone(), b.clone())];
    while let Some((ra, rb)) = work.pop() {
        if nullable(&ra) != nullable(&rb) {
            return false;
        }
        if !seen.insert((ra.clone(), rb.clone())) {
            continue;
        }
        let classes = derivative_classes(&ra).refine(&derivative_classes(&rb));
        for cls in classes.classes() {
            if let Some(rep) = cls.representative() {
                let pair = (derive(&ra, rep), derive(&rb, rep));
                if !seen.contains(&pair) {
                    work.push(pair);
                }
            }
        }
    }
    true
}

/// Is `L(a) ⊆ L(b)`? Decided as emptiness of `a & ¬b`.
///
/// # Examples
///
/// ```
/// use pwd_regex::{includes, lit, alt, star, ch};
/// let words = alt(lit("ab"), lit("abab"));
/// let all = star(lit("ab"));
/// assert!(includes(&all, &words), "every word is (ab)^k");
/// assert!(!includes(&words, &all));
/// ```
pub fn includes(b: &Regex, a: &Regex) -> bool {
    is_empty_lang(&and(a.clone(), not(b.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{alt, cat, ch, empty, eps, lit, opt, plus, star};

    #[test]
    fn emptiness_basics() {
        assert!(is_empty_lang(&empty()));
        assert!(!is_empty_lang(&eps()));
        assert!(!is_empty_lang(&lit("abc")));
        assert!(is_empty_lang(&cat(lit("a"), empty())));
        assert!(is_empty_lang(&and(lit("a"), lit("aa"))));
        assert!(is_empty_lang(&not(not(empty()))));
    }

    #[test]
    fn equivalence_algebraic_laws() {
        let a = ch('a');
        let b = ch('b');
        // Idempotence, commutativity (already canonical, but check semantics)
        assert!(equivalent(&alt(a.clone(), b.clone()), &alt(b.clone(), a.clone())));
        // a(ba)* ≡ (ab)*a
        let lhs = cat(a.clone(), star(cat(b.clone(), a.clone())));
        let rhs = cat(star(cat(a.clone(), b.clone())), a.clone());
        assert!(equivalent(&lhs, &rhs));
        // (a|b)* ≢ a*|b*
        assert!(!equivalent(
            &star(alt(a.clone(), b.clone())),
            &alt(star(a.clone()), star(b.clone()))
        ));
    }

    #[test]
    fn equivalence_with_opt_plus() {
        let a = ch('a');
        // a+ | ε ≡ a*
        assert!(equivalent(&opt(plus(a.clone())), &star(a.clone())));
        // a? a* ≡ a*
        assert!(equivalent(&cat(opt(a.clone()), star(a.clone())), &star(a)));
    }

    #[test]
    fn inclusion() {
        let a = ch('a');
        assert!(includes(&star(a.clone()), &plus(a.clone())));
        assert!(!includes(&plus(a.clone()), &star(a.clone())), "ε ∈ a* \\ a+");
        assert!(includes(&star(a.clone()), &empty()));
        assert!(includes(&not(empty()), &lit("anything")));
    }

    #[test]
    fn keyword_subset_of_identifier() {
        let ident = cat(
            crate::syntax::class(crate::CharClass::from_ranges([('a', 'z')])),
            star(crate::syntax::class(crate::CharClass::from_ranges([('a', 'z'), ('0', '9')]))),
        );
        let kw = alt(lit("if"), lit("while"));
        assert!(includes(&ident, &kw));
        assert!(!includes(&kw, &ident));
    }
}
