//! Brzozowski derivatives of regular expressions and derivative classes.
//!
//! This is the §2.1 background machinery of the paper, in its modern,
//! character-class form (Owens et al. 2009). It also serves as the executable
//! *oracle* for the context-free engine's property tests: on regular
//! grammars, `pwd-core` must agree with this module.

use crate::class::CharClass;
use crate::syntax::{alt, and, cat, empty, eps, not, Re, Regex};

/// Nullability `ν(r)`: does the language of `r` contain the empty word?
///
/// # Examples
///
/// ```
/// use pwd_regex::{lit, star, nullable};
/// assert!(nullable(&star(lit("ab"))));
/// assert!(!nullable(&lit("ab")));
/// ```
pub fn nullable(r: &Regex) -> bool {
    match &**r {
        Re::Empty | Re::Class(_) => false,
        Re::Eps | Re::Star(_) => true,
        Re::Cat(a, b) | Re::And(a, b) => nullable(a) && nullable(b),
        Re::Alt(a, b) => nullable(a) || nullable(b),
        Re::Not(a) => !nullable(a),
    }
}

/// The Brzozowski derivative `D_c(r)`: the language of words `w` such that
/// `cw` is in the language of `r`.
///
/// # Examples
///
/// ```
/// use pwd_regex::{derive, lit, nullable};
/// let r = lit("ab");
/// let d = derive(&r, 'a');
/// assert!(nullable(&derive(&d, 'b')));
/// ```
pub fn derive(r: &Regex, c: char) -> Regex {
    match &**r {
        Re::Empty | Re::Eps => empty(),
        Re::Class(cls) => {
            if cls.contains(c) {
                eps()
            } else {
                empty()
            }
        }
        Re::Cat(a, b) => {
            let first = cat(derive(a, c), b.clone());
            if nullable(a) {
                alt(first, derive(b, c))
            } else {
                first
            }
        }
        Re::Alt(a, b) => alt(derive(a, c), derive(b, c)),
        Re::Star(a) => cat(derive(a, c), r.clone()),
        Re::And(a, b) => and(derive(a, c), derive(b, c)),
        Re::Not(a) => not(derive(a, c)),
    }
}

/// Derivative with respect to a whole string: `D_w(r)`.
pub fn derive_str(r: &Regex, s: &str) -> Regex {
    let mut cur = r.clone();
    for c in s.chars() {
        cur = derive(&cur, c);
    }
    cur
}

/// Word membership by repeated derivation: `w ∈ L(r) ⇔ ν(D_w(r))`.
///
/// # Examples
///
/// ```
/// use pwd_regex::{alt, lit, matches, star};
/// let r = star(alt(lit("ab"), lit("c")));
/// assert!(matches(&r, "abcab"));
/// assert!(!matches(&r, "abca"));
/// ```
pub fn matches(r: &Regex, s: &str) -> bool {
    nullable(&derive_str(r, s))
}

/// A partition of the alphabet into classes on which `derive` is constant.
///
/// Invariant: the classes are pairwise disjoint and cover `Σ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition(Vec<CharClass>);

impl Partition {
    /// The trivial partition `{Σ}`.
    pub fn trivial() -> Self {
        Partition(vec![CharClass::any()])
    }

    /// The partition `{S, Σ∖S}` induced by one class.
    pub fn of_class(c: &CharClass) -> Self {
        let comp = c.complement();
        let mut v = Vec::with_capacity(2);
        if !c.is_empty() {
            v.push(c.clone());
        }
        if !comp.is_empty() {
            v.push(comp);
        }
        Partition(v)
    }

    /// The coarsest common refinement of two partitions: all nonempty
    /// pairwise intersections.
    pub fn refine(&self, other: &Partition) -> Partition {
        let mut out = Vec::with_capacity(self.0.len() * other.0.len());
        for a in &self.0 {
            for b in &other.0 {
                let i = a.intersect(b);
                if !i.is_empty() {
                    out.push(i);
                }
            }
        }
        Partition(out)
    }

    /// The classes of the partition.
    pub fn classes(&self) -> &[CharClass] {
        &self.0
    }
}

/// Computes the *derivative classes* `C(r)` of a regex: a partition of the
/// alphabet such that `D_a(r) = D_b(r)` whenever `a` and `b` fall in the same
/// class (Owens et al. 2009, Definition 4.1). This is what makes DFA
/// construction over a Unicode-sized alphabet feasible.
pub fn derivative_classes(r: &Regex) -> Partition {
    match &**r {
        Re::Empty | Re::Eps => Partition::trivial(),
        Re::Class(c) => Partition::of_class(c),
        Re::Cat(a, b) => {
            if nullable(a) {
                derivative_classes(a).refine(&derivative_classes(b))
            } else {
                derivative_classes(a)
            }
        }
        Re::Alt(a, b) | Re::And(a, b) => derivative_classes(a).refine(&derivative_classes(b)),
        Re::Star(a) | Re::Not(a) => derivative_classes(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{alts, ch, class, lit, opt, plus, star};

    #[test]
    fn derivative_of_literal() {
        let r = lit("foo");
        assert!(matches(&r, "foo"));
        assert!(!matches(&r, "fo"));
        assert!(!matches(&r, "fooo"));
    }

    #[test]
    fn paper_example_foo_frak_bar() {
        // D_f({foo, frak, bar}) = {oo, rak} — §2.1 of the paper.
        let lang = alts([lit("foo"), lit("frak"), lit("bar")]);
        let d = derive(&lang, 'f');
        assert!(matches(&d, "oo"));
        assert!(matches(&d, "rak"));
        assert!(!matches(&d, "ar"));
        assert!(!matches(&d, "foo"));
    }

    #[test]
    fn star_matches_repetitions() {
        let r = star(lit("ab"));
        for (s, want) in [("", true), ("ab", true), ("abab", true), ("aba", false)] {
            assert_eq!(matches(&r, s), want, "input {s:?}");
        }
    }

    #[test]
    fn plus_and_opt() {
        let p = plus(ch('a'));
        assert!(!matches(&p, ""));
        assert!(matches(&p, "aaa"));
        let o = opt(ch('a'));
        assert!(matches(&o, ""));
        assert!(matches(&o, "a"));
        assert!(!matches(&o, "aa"));
    }

    #[test]
    fn intersection_semantics() {
        // (a|b)* & words-containing-'a' … approximate: & with !( b* ) means
        // "has at least one a".
        let all_ab = star(alt(ch('a'), ch('b')));
        let only_b = star(ch('b'));
        let has_a = and(all_ab, not(only_b));
        assert!(matches(&has_a, "bba"));
        assert!(!matches(&has_a, "bbb"));
        assert!(!matches(&has_a, ""));
    }

    #[test]
    fn complement_semantics() {
        let r = not(lit("x"));
        assert!(matches(&r, ""));
        assert!(matches(&r, "xx"));
        assert!(!matches(&r, "x"));
    }

    #[test]
    fn nullable_cases() {
        assert!(nullable(&eps()));
        assert!(!nullable(&empty()));
        assert!(!nullable(&ch('a')));
        assert!(nullable(&alt(ch('a'), eps())));
        assert!(!nullable(&cat(ch('a'), star(ch('b')))));
        assert!(nullable(&not(ch('a'))));
    }

    #[test]
    fn derivative_classes_partition_alphabet() {
        let r = alt(cat(ch('a'), lit("x")), cat(CharClass::range('0', '9').pipe_class(), lit("y")));
        let p = derivative_classes(&r);
        // Classes must be pairwise disjoint and cover Σ.
        let mut total = CharClass::empty();
        for (i, a) in p.classes().iter().enumerate() {
            for b in &p.classes()[i + 1..] {
                assert!(a.is_disjoint(b), "classes overlap: {a:?} {b:?}");
            }
            total = total.union(a);
        }
        assert!(total.is_any(), "classes must cover the alphabet");
    }

    #[test]
    fn derivative_constant_on_classes() {
        let r = alts([lit("if"), lit("in"), plus(CharClass::range('a', 'z').pipe_class())]);
        let p = derivative_classes(&r);
        for cls in p.classes() {
            if let Some(rep) = cls.representative() {
                let d = derive(&r, rep);
                // Sample a few members of the class and check equal derivatives.
                for (lo, hi) in cls.ranges().take(3) {
                    for v in [lo, (lo + hi) / 2, hi] {
                        if let Some(c) = char::from_u32(v) {
                            assert_eq!(
                                derive(&r, c),
                                d,
                                "derivative differs within class at {c:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Helper to turn a CharClass into a Regex tersely in tests.
    trait PipeClass {
        fn pipe_class(self) -> Regex;
    }
    impl PipeClass for CharClass {
        fn pipe_class(self) -> Regex {
            class(self)
        }
    }
}
