//! Character classes represented as sorted, disjoint, non-adjacent ranges of
//! Unicode scalar values.
//!
//! Classes are the alphabet-partitioning currency of derivative-based DFA
//! construction (Owens et al. 2009): instead of deriving by every character,
//! we derive once per *derivative class*, each of which is a [`CharClass`].

use std::fmt;

/// Maximum Unicode scalar value.
const MAX_CP: u32 = 0x10FFFF;

/// A set of characters, stored as sorted, disjoint, non-adjacent inclusive
/// ranges of code points.
///
/// The representation is canonical: two classes denote the same set if and
/// only if they compare equal.
///
/// # Examples
///
/// ```
/// use pwd_regex::CharClass;
/// let digits = CharClass::range('0', '9');
/// assert!(digits.contains('7'));
/// assert!(!digits.contains('a'));
/// let not_digits = digits.complement();
/// assert!(not_digits.contains('a'));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CharClass {
    /// Sorted, disjoint, non-adjacent inclusive ranges.
    ranges: Vec<(u32, u32)>,
}

impl CharClass {
    /// The empty class (matches no character).
    pub fn empty() -> Self {
        CharClass { ranges: Vec::new() }
    }

    /// The class of every Unicode scalar value (`Σ`).
    ///
    /// Surrogate code points are included in the internal representation for
    /// simplicity of range arithmetic; they can never be produced by a `char`
    /// so this is unobservable through the public API.
    pub fn any() -> Self {
        CharClass { ranges: vec![(0, MAX_CP)] }
    }

    /// The class containing exactly one character.
    pub fn singleton(c: char) -> Self {
        let v = c as u32;
        CharClass { ranges: vec![(v, v)] }
    }

    /// The class containing the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: char, hi: char) -> Self {
        assert!(lo <= hi, "invalid character range {lo:?}..={hi:?}");
        CharClass { ranges: vec![(lo as u32, hi as u32)] }
    }

    /// Builds a class from arbitrary (possibly overlapping, unsorted) ranges.
    pub fn from_ranges<I: IntoIterator<Item = (char, char)>>(iter: I) -> Self {
        let mut c = CharClass::empty();
        for (lo, hi) in iter {
            c = c.union(&CharClass::range(lo, hi));
        }
        c
    }

    /// Builds a class containing exactly the given characters.
    pub fn from_chars<I: IntoIterator<Item = char>>(iter: I) -> Self {
        let mut c = CharClass::empty();
        for ch in iter {
            c = c.union(&CharClass::singleton(ch));
        }
        c
    }

    /// Returns `true` if the class contains no characters.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Returns `true` if the class contains every scalar value.
    pub fn is_any(&self) -> bool {
        self.ranges == [(0, MAX_CP)]
    }

    /// Membership test.
    pub fn contains(&self, c: char) -> bool {
        let v = c as u32;
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of code points in the class.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).sum()
    }

    /// The underlying sorted, disjoint ranges.
    pub fn ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().copied()
    }

    /// Some character in the class, if nonempty.
    ///
    /// Skips the surrogate gap so the result is always a valid `char`.
    pub fn representative(&self) -> Option<char> {
        for &(lo, hi) in &self.ranges {
            let mut v = lo;
            while v <= hi {
                if let Some(c) = char::from_u32(v) {
                    return Some(c);
                }
                // Jump over the surrogate block.
                v = 0xE000;
                if v < lo {
                    break;
                }
            }
        }
        None
    }

    /// Set union.
    pub fn union(&self, other: &CharClass) -> CharClass {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        all.extend_from_slice(&self.ranges);
        all.extend_from_slice(&other.ranges);
        all.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(all.len());
        for (lo, hi) in all {
            match out.last_mut() {
                // Merge overlapping or adjacent ranges to keep canonicity.
                Some(last) if lo <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(hi);
                }
                _ => out.push((lo, hi)),
            }
        }
        CharClass { ranges: out }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharClass) -> CharClass {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        CharClass { ranges: out }
    }

    /// Set complement with respect to `Σ`.
    pub fn complement(&self) -> CharClass {
        let mut out = Vec::new();
        let mut next = 0u32;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            next = hi.saturating_add(1);
            if next > MAX_CP {
                return CharClass { ranges: out };
            }
        }
        if next <= MAX_CP {
            out.push((next, MAX_CP));
        }
        CharClass { ranges: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &CharClass) -> CharClass {
        self.intersect(&other.complement())
    }

    /// Returns `true` if the two classes share no characters.
    pub fn is_disjoint(&self, other: &CharClass) -> bool {
        self.intersect(other).is_empty()
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "[∅]");
        }
        if self.is_any() {
            return write!(f, "[Σ]");
        }
        write!(f, "[")?;
        for &(lo, hi) in &self.ranges {
            let show = |v: u32| -> String {
                match char::from_u32(v) {
                    Some(c) if !c.is_control() && (c as u32) < 0xD800 => format!("{c}"),
                    _ => format!("\\u{{{v:x}}}"),
                }
            };
            if lo == hi {
                write!(f, "{}", show(lo))?;
            } else {
                write!(f, "{}-{}", show(lo), show(hi))?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<char> for CharClass {
    fn from(c: char) -> Self {
        CharClass::singleton(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_any() {
        assert!(CharClass::empty().is_empty());
        assert!(!CharClass::any().is_empty());
        assert!(CharClass::any().is_any());
        assert!(CharClass::any().contains('x'));
        assert!(!CharClass::empty().contains('x'));
    }

    #[test]
    fn union_merges_adjacent() {
        let ab = CharClass::range('a', 'b').union(&CharClass::range('c', 'd'));
        assert_eq!(ab.ranges.len(), 1, "adjacent ranges must merge: {ab:?}");
        assert!(ab.contains('b') && ab.contains('c'));
    }

    #[test]
    fn union_is_commutative_on_samples() {
        let a = CharClass::from_chars("axz09".chars());
        let b = CharClass::range('0', 'z');
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn intersect_basic() {
        let a = CharClass::range('a', 'm');
        let b = CharClass::range('g', 'z');
        let i = a.intersect(&b);
        assert!(i.contains('g') && i.contains('m'));
        assert!(!i.contains('f') && !i.contains('n'));
    }

    #[test]
    fn complement_roundtrip() {
        let a = CharClass::from_ranges([('a', 'f'), ('0', '4')]);
        assert_eq!(a.complement().complement(), a);
        assert!(a.complement().contains('z'));
        assert!(!a.complement().contains('c'));
    }

    #[test]
    fn complement_of_any_is_empty() {
        assert!(CharClass::any().complement().is_empty());
        assert!(CharClass::empty().complement().is_any());
    }

    #[test]
    fn difference_and_disjoint() {
        let letters = CharClass::range('a', 'z');
        let vowels = CharClass::from_chars("aeiou".chars());
        let consonants = letters.difference(&vowels);
        assert!(consonants.contains('b'));
        assert!(!consonants.contains('e'));
        assert!(consonants.is_disjoint(&vowels));
    }

    #[test]
    fn representative_skips_surrogates() {
        // A class that (internally) covers the surrogate block still yields a
        // valid char.
        let c = CharClass::any();
        assert!(c.representative().is_some());
        let tail = CharClass { ranges: vec![(0xD800, 0xE001)] };
        assert_eq!(tail.representative(), Some('\u{E000}'));
    }

    #[test]
    fn len_counts_codepoints() {
        assert_eq!(CharClass::range('a', 'c').len(), 3);
        assert_eq!(CharClass::empty().len(), 0);
    }
}
