//! DFA construction by derivatives.
//!
//! States are canonicalized regexes; transitions are computed once per
//! *derivative class* rather than once per character (Owens et al. 2009).
//! The resulting automata drive the longest-match lexers in `pwd-lex`.

use crate::class::CharClass;
use crate::deriv::{derivative_classes, derive, nullable};
use crate::syntax::{Re, Regex};
use std::collections::HashMap;
use std::fmt;

/// A deterministic finite automaton over Unicode scalar values.
///
/// Transitions are stored per state as `(CharClass, target)` pairs whose
/// classes partition the alphabet, so lookup is a linear scan over a small
/// number of classes (amortized by the class structure of practical lexers).
///
/// # Examples
///
/// ```
/// use pwd_regex::{Dfa, lit, star};
/// let dfa = Dfa::build(&star(lit("ab")));
/// assert!(dfa.accepts("abab"));
/// assert!(!dfa.accepts("aba"));
/// ```
#[derive(Debug, Clone)]
pub struct Dfa {
    states: Vec<State>,
    start: StateId,
}

/// Index of a DFA state.
pub type StateId = u32;

#[derive(Debug, Clone)]
struct State {
    /// Outgoing transitions; classes partition Σ.
    trans: Vec<(CharClass, StateId)>,
    accepting: bool,
    /// True iff this state's language is empty (no path to acceptance).
    dead: bool,
}

impl Dfa {
    /// Builds the DFA recognizing `L(r)` via derivative classes.
    ///
    /// The construction is guaranteed to terminate because the smart
    /// constructors in this crate keep regexes canonical modulo the
    /// ACI laws, giving finitely many distinct derivatives.
    pub fn build(r: &Regex) -> Dfa {
        let mut ids: HashMap<Regex, StateId> = HashMap::new();
        let mut states: Vec<State> = Vec::new();
        let mut exprs: Vec<Regex> = Vec::new();
        let mut work: Vec<StateId> = Vec::new();

        let mut intern = |re: Regex,
                          states: &mut Vec<State>,
                          exprs: &mut Vec<Regex>,
                          work: &mut Vec<StateId>|
         -> StateId {
            if let Some(&id) = ids.get(&re) {
                return id;
            }
            let id = states.len() as StateId;
            states.push(State {
                trans: Vec::new(),
                accepting: nullable(&re),
                dead: matches!(&*re, Re::Empty),
            });
            ids.insert(re.clone(), id);
            exprs.push(re);
            work.push(id);
            id
        };

        let start = intern(r.clone(), &mut states, &mut exprs, &mut work);
        while let Some(id) = work.pop() {
            let re = exprs[id as usize].clone();
            let classes = derivative_classes(&re);
            let mut trans = Vec::with_capacity(classes.classes().len());
            for cls in classes.classes() {
                let Some(rep) = cls.representative() else { continue };
                let d = derive(&re, rep);
                let target = intern(d, &mut states, &mut exprs, &mut work);
                trans.push((cls.clone(), target));
            }
            states[id as usize].trans = trans;
        }

        let mut dfa = Dfa { states, start };
        dfa.mark_dead();
        dfa
    }

    /// Marks states from which no accepting state is reachable, enabling the
    /// lexers' early-bailout on hopeless prefixes.
    fn mark_dead(&mut self) {
        // Reverse reachability from accepting states.
        let n = self.states.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut live = vec![false; n];
        let mut work = Vec::new();
        for (i, s) in self.states.iter().enumerate() {
            for (_, t) in &s.trans {
                rev[*t as usize].push(i);
            }
            if s.accepting {
                live[i] = true;
                work.push(i);
            }
        }
        while let Some(i) = work.pop() {
            for &p in &rev[i] {
                if !live[p] {
                    live[p] = true;
                    work.push(p);
                }
            }
        }
        for (i, s) in self.states.iter_mut().enumerate() {
            s.dead = !live[i];
        }
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the automaton has no states (never true for built
    /// automata, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Steps the automaton from `state` on input `c`.
    ///
    /// Returns `None` only if `state` is out of range; the transition
    /// function itself is total because derivative classes partition Σ.
    pub fn step(&self, state: StateId, c: char) -> Option<StateId> {
        let s = self.states.get(state as usize)?;
        for (cls, t) in &s.trans {
            if cls.contains(c) {
                return Some(*t);
            }
        }
        None
    }

    /// Is `state` accepting?
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.states.get(state as usize).map(|s| s.accepting).unwrap_or(false)
    }

    /// Is `state` dead (no suffix can lead to acceptance)?
    pub fn is_dead(&self, state: StateId) -> bool {
        self.states.get(state as usize).map(|s| s.dead).unwrap_or(true)
    }

    /// Runs the automaton over `input` and reports acceptance.
    pub fn accepts(&self, input: &str) -> bool {
        let mut st = self.start;
        for c in input.chars() {
            match self.step(st, c) {
                Some(next) => st = next,
                None => return false,
            }
            if self.is_dead(st) {
                return false;
            }
        }
        self.is_accepting(st)
    }

    /// Minimizes the automaton by Moore partition refinement.
    ///
    /// Brzozowski derivatives with ACI canonicalization already come close
    /// to minimal, but similarity is weaker than language equivalence, so a
    /// residue can remain; this pass removes it. The result accepts exactly
    /// the same language.
    ///
    /// # Examples
    ///
    /// ```
    /// use pwd_regex::{parse, Dfa};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dfa = Dfa::build(&parse("(a|b)*abb")?);
    /// let min = dfa.minimize();
    /// assert!(min.len() <= dfa.len());
    /// assert!(min.accepts("aababb"));
    /// assert!(!min.accepts("abab"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn minimize(&self) -> Dfa {
        let n = self.states.len();
        // block[i] = current equivalence block of state i.
        let mut block: Vec<usize> = self.states.iter().map(|s| usize::from(s.accepting)).collect();
        loop {
            // Signature of a state: its block plus, per transition cell of
            // the *overlay* of all states' class partitions, the target
            // block. Using each state's own class list is sound because
            // classes partition Σ: we compare by probing each boundary.
            let mut sig: Vec<Vec<(u32, usize)>> = Vec::with_capacity(n);
            for s in &self.states {
                let mut v: Vec<(u32, usize)> = s
                    .trans
                    .iter()
                    .flat_map(|(cls, t)| {
                        let tb = block[*t as usize];
                        cls.ranges().map(move |(lo, _)| (lo, tb))
                    })
                    .collect();
                v.sort_unstable();
                // Merge adjacent cells with equal target blocks so states
                // with differently-split but equivalent partitions compare
                // equal.
                v.dedup_by(|a, b| a.1 == b.1);
                sig.push(v);
            }
            let mut index: HashMap<(usize, Vec<(u32, usize)>), usize> = HashMap::new();
            let mut next: Vec<usize> = Vec::with_capacity(n);
            for i in 0..n {
                let key = (block[i], sig[i].clone());
                let len = index.len();
                let b = *index.entry(key).or_insert(len);
                next.push(b);
            }
            if next == block {
                break;
            }
            block = next;
        }
        // Build the quotient automaton.
        let n_blocks = block.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut states: Vec<State> = (0..n_blocks)
            .map(|_| State { trans: Vec::new(), accepting: false, dead: false })
            .collect();
        let mut done = vec![false; n_blocks];
        for (i, s) in self.states.iter().enumerate() {
            let b = block[i];
            if done[b] {
                continue;
            }
            done[b] = true;
            states[b].accepting = s.accepting;
            states[b].trans = s
                .trans
                .iter()
                .map(|(cls, t)| (cls.clone(), block[*t as usize] as StateId))
                .collect();
        }
        let mut dfa = Dfa { states, start: block[self.start as usize] as StateId };
        dfa.mark_dead();
        dfa
    }

    /// Length (in chars) of the longest prefix of `input` accepted by the
    /// automaton, if any prefix (including the empty one) is accepted.
    pub fn longest_match(&self, input: &str) -> Option<usize> {
        self.longest_match_scanned(input).0
    }

    /// Like [`longest_match`](Dfa::longest_match), but also reports how far
    /// the scan *looked*: the byte length of the prefix examined before the
    /// automaton stopped (missing transition, dead state, or end of input —
    /// the stopping character itself counts as examined). The match decision
    /// is a pure function of exactly those bytes, which is what an
    /// incremental relexer needs to bound the damage of an edit.
    pub fn longest_match_scanned(&self, input: &str) -> (Option<usize>, usize) {
        let mut st = self.start;
        let mut best = if self.is_accepting(st) { Some(0) } else { None };
        let mut scanned = 0;
        for (i, c) in input.char_indices() {
            scanned = i + c.len_utf8();
            match self.step(st, c) {
                Some(next) => st = next,
                None => break,
            }
            if self.is_dead(st) {
                break;
            }
            if self.is_accepting(st) {
                best = Some(i + c.len_utf8());
            }
        }
        (best, scanned)
    }
}

impl fmt::Display for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DFA with {} states, start {}", self.states.len(), self.start)?;
        for (i, s) in self.states.iter().enumerate() {
            let mark = if s.accepting { "*" } else { " " };
            let dead = if s.dead { " (dead)" } else { "" };
            writeln!(f, " {mark}{i}{dead}:")?;
            for (cls, t) in &s.trans {
                writeln!(f, "    {cls:?} -> {t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{alt, alts, cat, ch, class, lit, plus, star};
    use crate::CharClass;

    #[test]
    fn dfa_matches_simple_literal() {
        let dfa = Dfa::build(&lit("abc"));
        assert!(dfa.accepts("abc"));
        assert!(!dfa.accepts("ab"));
        assert!(!dfa.accepts("abcd"));
        assert!(!dfa.accepts(""));
    }

    #[test]
    fn dfa_star_loop() {
        let dfa = Dfa::build(&star(alt(lit("ab"), lit("ba"))));
        assert!(dfa.accepts(""));
        assert!(dfa.accepts("abba"));
        assert!(dfa.accepts("baab"));
        assert!(!dfa.accepts("aab"));
    }

    #[test]
    fn dfa_identifier_like() {
        let letter = class(CharClass::from_ranges([('a', 'z'), ('A', 'Z'), ('_', '_')]));
        let digit = class(CharClass::range('0', '9'));
        let ident = cat(letter.clone(), star(alt(letter, digit)));
        let dfa = Dfa::build(&ident);
        assert!(dfa.accepts("x"));
        assert!(dfa.accepts("snake_case_42"));
        assert!(!dfa.accepts("9lives"));
        assert!(!dfa.accepts(""));
    }

    #[test]
    fn dfa_state_count_is_small_for_keywords() {
        let kw = alts([lit("if"), lit("else"), lit("while"), lit("return")]);
        let dfa = Dfa::build(&kw);
        assert!(dfa.len() < 32, "expected compact DFA, got {} states", dfa.len());
    }

    #[test]
    fn longest_match_prefers_longest() {
        let dfa = Dfa::build(&alt(lit("a"), lit("aaa")));
        assert_eq!(dfa.longest_match("aaaa"), Some(3));
        assert_eq!(dfa.longest_match("ab"), Some(1));
        assert_eq!(dfa.longest_match("b"), None);
    }

    #[test]
    fn longest_match_empty_prefix() {
        let dfa = Dfa::build(&star(ch('a')));
        assert_eq!(dfa.longest_match("bbb"), Some(0));
        assert_eq!(dfa.longest_match("aab"), Some(2));
    }

    #[test]
    fn dead_state_detection() {
        let dfa = Dfa::build(&lit("ab"));
        // After 'x' from start we are in the dead (∅) state.
        let st = dfa.step(dfa.start(), 'x').expect("total transitions");
        assert!(dfa.is_dead(st));
    }

    #[test]
    fn minimize_classic_example() {
        // (a|b)*abb has a 4-state minimal DFA (plus possibly a dead state).
        let re = crate::parse("(a|b)*abb").unwrap();
        let dfa = Dfa::build(&re);
        let min = dfa.minimize();
        assert!(min.len() <= dfa.len());
        assert!(min.len() <= 5, "minimal DFA is 4 live states, got {}", min.len());
        for (s, want) in [
            ("abb", true),
            ("aabb", true),
            ("bbabb", true),
            ("ab", false),
            ("abba", false),
            ("", false),
        ] {
            assert_eq!(min.accepts(s), want, "{s:?}");
        }
    }

    #[test]
    fn minimize_preserves_language_on_samples() {
        let patterns = [r"[0-9]+(\.[0-9]+)?", "(ab|ba)*", "a?b?c?", "x(yz)*x"];
        let inputs =
            ["", "a", "ab", "abc", "ba", "abba", "3.14", "42", "x", "xx", "xyzx", "xyzyzx", "c"];
        for p in patterns {
            let dfa = Dfa::build(&crate::parse(p).unwrap());
            let min = dfa.minimize();
            assert!(min.len() <= dfa.len(), "{p}");
            for s in inputs {
                assert_eq!(dfa.accepts(s), min.accepts(s), "{p} on {s:?}");
            }
        }
    }

    #[test]
    fn minimize_merges_similar_states() {
        // a(x|y) vs (ax|ay): canonicalization may or may not merge; the
        // minimized automata must have equal state counts (same language).
        let r1 = crate::parse("a(x|y)").unwrap();
        let r2 = crate::parse("(ax|ay)").unwrap();
        let m1 = Dfa::build(&r1).minimize();
        let m2 = Dfa::build(&r2).minimize();
        assert_eq!(m1.len(), m2.len());
    }

    #[test]
    fn agreement_with_derivative_matcher() {
        let res = [
            lit("while"),
            plus(class(CharClass::range('0', '9'))),
            star(alt(lit("ab"), ch('c'))),
            cat(star(ch('a')), lit("b")),
        ];
        let inputs = ["", "a", "ab", "abc", "aab", "42", "while", "whilee", "ccabab"];
        for r in &res {
            let dfa = Dfa::build(r);
            for inp in inputs {
                assert_eq!(
                    dfa.accepts(inp),
                    crate::deriv::matches(r, inp),
                    "dfa/derivative disagreement on {r} with {inp:?}"
                );
            }
        }
    }
}
