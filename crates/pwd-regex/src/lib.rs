//! Brzozowski regular-expression derivatives, re-examined — in Rust.
//!
//! This crate implements the §2.1 background machinery of
//! *On the Complexity and Performance of Parsing with Derivatives*
//! (Adams, Hollenbeck & Might, PLDI 2016): Brzozowski (1964) derivatives of
//! regular expressions, in the modern character-class formulation of
//! Owens, Reppy & Turon (2009), including derivative-class DFA construction.
//!
//! Within the `derp` reproduction it serves two roles:
//!
//! 1. **Lexing substrate** — `pwd-lex` compiles token rules written in this
//!    crate's syntax to DFAs and scans with maximal munch, mirroring how the
//!    paper's evaluation pre-tokenizes its Python corpus.
//! 2. **Test oracle** — on regular fragments, the context-free engine in
//!    `pwd-core` must agree with this crate; the integration suite exploits
//!    that for differential property testing.
//!
//! # Quick start
//!
//! ```
//! use pwd_regex::{parse, Dfa};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ident = parse(r"[a-zA-Z_][a-zA-Z0-9_]*")?;
//! let dfa = Dfa::build(&ident);
//! assert!(dfa.accepts("parse_with_derivatives"));
//! assert_eq!(dfa.longest_match("abc+def"), Some(3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod deriv;
mod dfa;
mod equiv;
mod parse;
mod syntax;

pub use class::CharClass;
pub use deriv::{derivative_classes, derive, derive_str, matches, nullable, Partition};
pub use dfa::{Dfa, StateId};
pub use equiv::{equivalent, includes, is_empty_lang};
pub use parse::{parse, ParseRegexError};
pub use syntax::{
    alt, alts, and, any_char, cat, ch, class, empty, eps, lit, not, opt, plus, repeat, seq, star,
    Re, Regex,
};
