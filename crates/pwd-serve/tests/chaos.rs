//! Chaos test: injected faults cost exactly what they cost.
//!
//! A [`FaultPlan`] scatters worker panics, budget exhaustion, and lex
//! errors across a large batch. The contract under fire:
//!
//! * every request completes — N planned faults mean exactly N failed
//!   requests, each with the structured [`ServeError`] its fault maps to,
//!   and every other input parses normally;
//! * zero lost workers — the full batch is drained and a follow-up clean
//!   batch succeeds end to end on the same (post-quarantine) service;
//! * the damage is accounted for — panic/quarantine/budget counters in
//!   [`ParseService::metrics_text`] match the plan exactly.

use pwd_grammar::CfgBuilder;
use pwd_serve::{Fault, FaultPlan, Input, ParseService, ServeError, ServiceConfig};

/// Silences the default panic hook: injected panics are expected traffic
/// here, and 5000-request logs full of backtraces help nobody.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn catalan() -> pwd_grammar::Cfg {
    let mut g = CfgBuilder::new("S");
    g.terminal("a");
    g.rule("S", &["S", "S"]);
    g.rule("S", &["a"]);
    g.build().unwrap()
}

fn expect_fault_error(err: &ServeError, fault: Fault, input: usize) {
    match fault {
        Fault::Panic => {
            assert!(matches!(err, ServeError::WorkerPanicked { .. }), "input {input}: {err:?}")
        }
        Fault::BudgetExhaustion => {
            assert!(matches!(err, ServeError::BudgetExceeded { .. }), "input {input}: {err:?}")
        }
        Fault::LexError => {
            assert!(matches!(err, ServeError::Backend(_)), "input {input}: {err:?}")
        }
    }
}

#[test]
fn fifty_faults_over_five_thousand_requests_cost_exactly_fifty() {
    quiet_panics();
    const N: usize = 5000;
    const FAULTS: usize = 50;
    let cfg = catalan();
    let inputs: Vec<Input> = (0..N).map(|i| Input::from_kinds(&vec!["a"; i % 5 + 1])).collect();
    let plan = FaultPlan::scatter(0xC0FFEE, N, FAULTS);
    assert_eq!(plan.len(), FAULTS, "the plan is exact");

    let service = ParseService::new(ServiceConfig { workers: 8, ..Default::default() });
    let report = service.submit_batch_with_faults(&cfg, &inputs, &plan).unwrap();

    // Every request completed, in order, across all workers.
    assert_eq!(report.outcomes.len(), N);
    assert_eq!(report.metrics.inputs, N);
    assert_eq!(
        report.metrics.per_worker_inputs.iter().sum::<usize>(),
        N,
        "zero lost workers: the whole batch was drained"
    );

    // Exactly the planned inputs failed, each with its mapped error shape.
    let mut failed = 0;
    for (i, out) in report.outcomes.iter().enumerate() {
        match plan.fault_for(i) {
            None => assert!(
                out.as_ref().unwrap().accepted,
                "clean input {i} must parse despite surrounding faults"
            ),
            Some(fault) => {
                failed += 1;
                expect_fault_error(out.as_ref().unwrap_err(), fault, i);
            }
        }
    }
    assert_eq!(failed, FAULTS);
    assert_eq!(report.metrics.errors, FAULTS);

    // The damage is fully accounted for in service metrics.
    let panics = plan.iter().filter(|&(_, f)| f == Fault::Panic).count() as u64;
    let budget = plan.iter().filter(|&(_, f)| f == Fault::BudgetExhaustion).count() as u64;
    let m = service.metrics();
    assert_eq!(m.panics_caught, panics);
    assert_eq!(m.sessions_quarantined, panics, "one quarantine per caught panic");
    assert_eq!(m.budget_cancelled, budget);

    // The service survives the storm: a clean batch fully succeeds and no
    // new panics or quarantines appear.
    let clean = service.submit_batch(&cfg, &inputs[..200]).unwrap();
    assert!(clean.outcomes.iter().all(|o| o.as_ref().unwrap().accepted));
    let after = service.metrics();
    assert_eq!(after.panics_caught, panics);
    assert_eq!(after.sessions_quarantined, panics);

    // Exposition carries the fault-tolerance counters.
    let text = service.metrics_text();
    assert!(
        text.contains(&format!(
            "pwd_serve_worker_panics_total{{backend=\"pwd-improved\"}} {panics}"
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "pwd_serve_sessions_quarantined_total{{backend=\"pwd-improved\"}} {panics}"
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "pwd_serve_budget_cancelled_total{{backend=\"pwd-improved\"}} {budget}"
        )),
        "{text}"
    );
    assert!(text.contains("pwd_serve_inputs_recovered_total"), "{text}");
}

#[test]
fn faults_and_recovery_coexist() {
    quiet_panics();
    const N: usize = 500;
    const FAULTS: usize = 10;
    // a b | a b S — so a doubled "a" needs a repair.
    let mut g = CfgBuilder::new("S");
    g.terminal("a");
    g.terminal("b");
    g.rule("S", &["a", "b"]);
    g.rule("S", &["a", "b", "S"]);
    let cfg = g.build().unwrap();
    let inputs: Vec<Input> = (0..N)
        .map(|i| {
            if i % 7 == 0 {
                Input::from_kinds(&["a", "a", "b"]) // malformed: recovery inserts/skips
            } else {
                Input::from_kinds(&["a", "b", "a", "b"])
            }
        })
        .collect();
    let plan = FaultPlan::scatter(7, N, FAULTS);
    let service = ParseService::new(ServiceConfig {
        workers: 4,
        recovery: Some(derp::RecoveryBudget::default()),
        observability: true,
        ..Default::default()
    });
    let report = service.submit_batch_with_faults(&cfg, &inputs, &plan).unwrap();
    assert_eq!(report.metrics.errors, FAULTS, "faults fail; malformed inputs are repaired");
    for (i, out) in report.outcomes.iter().enumerate() {
        match plan.fault_for(i) {
            Some(fault) => expect_fault_error(out.as_ref().unwrap_err(), fault, i),
            None => {
                let out = out.as_ref().unwrap();
                assert!(out.accepted, "input {i}");
                let diags = out.diagnostics.as_deref().expect("recovery is on");
                assert_eq!(!diags.is_empty(), i % 7 == 0, "input {i}: {diags:?}");
            }
        }
    }
    let m = service.metrics();
    let expected_recovered =
        (0..N).filter(|i| i % 7 == 0 && plan.fault_for(*i).is_none()).count() as u64;
    assert_eq!(m.inputs_recovered, expected_recovered);
    assert!(m.diagnostics_emitted >= expected_recovered);
}
