//! Cross-thread determinism: concurrency must be invisible in results.
//!
//! The serving subsystem shares one compiled grammar across threads and
//! recycles sessions through epoch resets; none of that may change what a
//! parse *returns*. These tests drive randomized grammars and inputs through
//! (a) the batch service at several worker counts and (b) hand-rolled
//! threads hammering one shared `CachedGrammar`, and require byte-identical
//! accept/parse-count results against a fresh single-threaded baseline.

use derp::api::{backend_by_name, ParseCount};
use pwd_grammar::{random_cfg, random_input, remove_useless, Cfg, RandomCfgConfig};
use pwd_serve::{GrammarCache, Input, ParseService, ServiceConfig, SessionPool};
use std::sync::Arc;

/// One input's observable result, rendered to a comparable string: accept
/// verdict and parse count on success, the backend error message otherwise.
/// String form keeps the comparison strictly byte-for-byte.
fn render(res: &Result<(bool, ParseCount), String>) -> String {
    match res {
        Ok((accepted, count)) => format!("ok accepted={accepted} count={count:?}"),
        Err(e) => format!("err {e}"),
    }
}

/// The ground truth: a fresh single-threaded engine per input — no cache, no
/// pool, no reset reuse, no threads.
fn fresh_baseline(cfg: &Cfg, inputs: &[Vec<String>]) -> Vec<String> {
    inputs
        .iter()
        .map(|kinds| {
            let kinds: Vec<&str> = kinds.iter().map(String::as_str).collect();
            let mut backend = backend_by_name("pwd-improved", cfg).expect("roster name");
            let res = backend
                .recognize(&kinds)
                .and_then(|accepted| Ok((accepted, backend.parse_count(&kinds)?)))
                .map_err(|e| e.to_string());
            render(&res)
        })
        .collect()
}

fn random_case(seed: u64) -> (Cfg, Vec<Vec<String>>) {
    let shape = RandomCfgConfig::default();
    let raw = random_cfg(&shape, seed);
    // Useless-symbol removal keeps the engine off degenerate empty languages
    // (those are covered by the rejected-input cases anyway).
    let cfg = remove_useless(&raw).unwrap_or(raw);
    let inputs: Vec<Vec<String>> =
        (0..12).map(|i| random_input(&cfg, 8, seed.wrapping_mul(1000).wrapping_add(i))).collect();
    (cfg, inputs)
}

/// Property: for random grammars and inputs, the batch service at 1, 2, and
/// 4 workers returns byte-identical results to the fresh single-threaded
/// baseline — on a cold cache, and again on a warm cache with pooled
/// (epoch-reset) sessions.
#[test]
fn service_results_match_single_threaded_baseline() {
    for seed in 0..24u64 {
        let (cfg, inputs) = random_case(seed);
        let baseline = fresh_baseline(&cfg, &inputs);
        let batch: Vec<Input> = inputs.iter().map(|k| Input::Kinds(k.clone())).collect();

        for workers in [1, 2, 4] {
            let service = ParseService::new(ServiceConfig {
                workers,
                count_parses: true,
                ..Default::default()
            });
            for round in 0..2 {
                let report = service.submit_batch(&cfg, &batch).expect("service accepts batch");
                let got: Vec<String> = report
                    .outcomes
                    .iter()
                    .map(|o| {
                        let res = o
                            .as_ref()
                            .map(|out| (out.accepted, out.parse_count.expect("count_parses is on")))
                            // Unwrap the service's `Backend` wrapper so error
                            // strings stay byte-comparable with the baseline's
                            // bare backend errors.
                            .map_err(|e| match e {
                                pwd_serve::ServeError::Backend(b) => b.to_string(),
                                other => other.to_string(),
                            });
                        render(&res)
                    })
                    .collect();
                assert_eq!(
                    got, baseline,
                    "seed {seed}, {workers} workers, round {round}: \
                     concurrent results diverged from the fresh baseline"
                );
            }
        }
    }
}

/// Directed stress: N threads share one cached compiled grammar and their
/// own session pools, interleaving inputs (including holding two sessions at
/// once); every thread must observe exactly the baseline results.
#[test]
fn threads_sharing_one_compiled_grammar_agree() {
    for seed in [3u64, 11, 19] {
        let (cfg, inputs) = random_case(seed);
        let baseline = fresh_baseline(&cfg, &inputs);

        let cache = GrammarCache::new(4, "pwd-improved");
        let (entry, _) = cache.get_or_compile(&cfg).expect("compiles");
        let entry: &Arc<_> = &entry;

        let per_thread: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t: u64| {
                    let (entry, inputs) = (Arc::clone(entry), &inputs);
                    scope.spawn(move || {
                        let mut pool = SessionPool::new();
                        let mut out = Vec::new();
                        // Each thread walks the inputs from a different
                        // offset so sessions are reused under different
                        // histories on every thread.
                        for i in 0..inputs.len() {
                            let idx = (i + t as usize) % inputs.len();
                            let kinds: Vec<&str> = inputs[idx].iter().map(String::as_str).collect();
                            let mut session = pool.checkout(&entry);
                            // Hold a second session across the run on odd
                            // steps: pools must not alias state.
                            let extra = (i % 2 == 1).then(|| pool.checkout(&entry));
                            let backend = session.backend();
                            let res = backend
                                .recognize(&kinds)
                                .and_then(|acc| Ok((acc, backend.parse_count(&kinds)?)))
                                .map_err(|e| e.to_string());
                            out.push((idx, render(&res)));
                            pool.checkin(session);
                            if let Some(extra) = extra {
                                pool.checkin(extra);
                            }
                        }
                        out.sort();
                        out.into_iter().map(|(_, r)| r).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("thread panicked")).collect()
        });

        for (t, got) in per_thread.iter().enumerate() {
            assert_eq!(
                got, &baseline,
                "seed {seed}, thread {t}: shared-compile results diverged from baseline"
            );
        }
    }
}
