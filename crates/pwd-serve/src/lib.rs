//! `pwd-serve` — a thread-safe, batched parse service over the unified
//! parser backends.
//!
//! PR 1 made `Language::reset()` an O(1) epoch bump, so one compiled PWD
//! engine can serve an unbounded stream of inputs with zero rebuild cost.
//! This crate is the subsystem that actually drives that at scale: it
//! multiplexes many grammars and many concurrent inputs over pooled engine
//! sessions, hosting any backend of `derp::api` (PWD improved/original,
//! Earley, GLR) behind one service API.
//!
//! Two front ends share the infrastructure: the batch API
//! ([`ParseService::submit_batch`]) for parse-these-inputs traffic, and the
//! **live-session** API ([`ParseService::open_session`] →
//! [`feed_chunk`](ParseService::feed_chunk) →
//! [`checkpoint_session`](ParseService::checkpoint_session) /
//! [`rollback_session`](ParseService::rollback_session) →
//! [`finish_session`](ParseService::finish_session)) for streaming clients
//! — REPLs, LSP servers, network parse protocols — that feed input in
//! chunks, keep parser state alive across calls, and retract speculative
//! prefixes by rolling back to a saved derivative.
//!
//! The service is **fault-hardened**: every per-input run executes inside
//! a `catch_unwind` boundary, so a panicking backend costs exactly one
//! failed request ([`ServeError::WorkerPanicked`]) — the pooled session it
//! was using is quarantined rather than reused, the worker keeps draining
//! the batch, and quarantine/panic counters surface in
//! [`ParseService::metrics_text`]. Per-request token and wall-clock
//! budgets ([`ServiceConfig::max_tokens_per_input`],
//! [`ServiceConfig::time_budget`]) cancel runaway parses with structured
//! errors, and [`ServiceConfig::recovery`] runs inputs through `derp`'s
//! bounded-budget error recovery, attaching spanned diagnostics to each
//! outcome. The [`fault`] module's deterministic [`FaultPlan`] injects
//! panics, budget exhaustion, and lex errors by input index so chaos tests
//! can prove N faults cost exactly N failed requests and zero lost
//! workers.
//!
//! # Architecture
//!
//! Five layers, one per module:
//!
//! * [`cache`] — a **sharded compiled-grammar cache**. Grammars are keyed by
//!   the stable 64-bit [`Cfg::fingerprint`](pwd_grammar::Cfg::fingerprint);
//!   each shard is an independently locked map, so compiles of distinct
//!   grammars do not serialize. A hit hands back an `Arc<CachedGrammar>`
//!   whose compiled prototype is shared, immutably, by every thread.
//! * [`pool`] — a **per-worker session pool**. Parsing mutates engine state,
//!   so each run needs an exclusive session; the pool turns the one shared
//!   compile into per-thread sessions via [`Parser::fork`] (an arena memcpy,
//!   not a recompile) and recycles them with
//!   [`Recognizer::reset`] — for PWD the O(1) epoch bump — instead of
//!   reallocating arenas between inputs.
//! * [`service`] — the **batch front end**. [`ParseService::submit_batch`]
//!   fans a slice of inputs across a fixed worker pool (work-stealing over
//!   an atomic cursor, so stragglers do not idle the other workers) and
//!   collects per-input results *in input order* plus batch metrics.
//! * [`live`] — the **streaming front end**. Sessions checked out of the
//!   same pools, kept alive across calls in a registry, fed chunk by chunk
//!   with per-chunk outcomes, checkpointed/rolled back for speculative
//!   prefixes, and released back to a pool at finish.
//! * [`fault`] — **deterministic fault injection**: a [`FaultPlan`] keyed
//!   by batch input index drives real panics, budget exhaustion, and lex
//!   errors through the production failure paths for chaos testing.
//!
//! # Request lifecycle
//!
//! ```text
//!   Cfg ── fingerprint() ──► shard = fp mod S ──► GrammarCache[shard]
//!                                │ hit  ──────────────► Arc<CachedGrammar>
//!                                │ miss ── compile ───► insert, then share
//!                                ▼
//!   worker w ──► SessionPool[w].checkout(entry)
//!                  │ idle session for fp?  reuse it            (epoch-clean)
//!                  │ none?                 prototype.fork()    (memcpy only)
//!                  ▼
//!               session.recognize / parse_count  ──► ParseOutcome
//!                  ▼
//!               SessionPool[w].checkin ──► Recognizer::reset()  (O(1) epoch
//!                                          bump: arena kept, state cleared)
//! ```
//!
//! # Example
//!
//! ```
//! use pwd_serve::{Input, ParseService, ServiceConfig};
//! use pwd_grammar::CfgBuilder;
//!
//! # fn main() -> Result<(), pwd_serve::ServeError> {
//! let mut g = CfgBuilder::new("S");
//! g.terminal("a");
//! g.rule("S", &["S", "S"]);
//! g.rule("S", &["a"]);
//! let cfg = g.build().expect("valid grammar");
//!
//! let service = ParseService::new(ServiceConfig { workers: 2, ..Default::default() });
//! let inputs: Vec<Input> = (1..5).map(|n| Input::from_kinds(&vec!["a"; n])).collect();
//! let report = service.submit_batch(&cfg, &inputs)?;
//! assert!(report.outcomes.iter().all(|o| o.as_ref().unwrap().accepted));
//! assert_eq!(report.metrics.inputs, 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod live;
mod obs;
pub mod pool;
pub mod service;

pub use cache::{CacheMetrics, CachedGrammar, GrammarCache};
pub use fault::{Fault, FaultPlan};
pub use live::{
    CheckpointId, FeedReport, FinishForestReport, FinishReport, SessionId, SessionStats,
    SessionStatus, SpliceReport,
};
pub use pool::{PoolMetrics, PooledSession, SessionPool};
pub use service::{
    BatchMetrics, BatchReport, BudgetKind, Input, MemoEffectiveness, ParseOutcome, ParseService,
    ServeError, ServiceConfig, ServiceMetrics,
};

// Everything the service shares across threads must be Send + Sync; checked
// here so a regression in any layer below (core arena, backend traits,
// cache entries) breaks the build instead of a stress test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CachedGrammar>();
    assert_send_sync::<GrammarCache>();
    assert_send_sync::<ParseService>();
};
