//! Live incremental sessions: the streaming front end of the service.
//!
//! The batch API ([`ParseService::submit_batch`]) answers "parse these
//! inputs"; this module answers the shape a REPL, LSP server, or network
//! parse protocol actually has — input arrives in chunks, the caller wants
//! a verdict-so-far after each one, and speculative prefixes (editor
//! lookahead, a line being typed) must be retractable without re-parsing
//! the committed prefix:
//!
//! ```text
//!   open_session(cfg)            ─► SessionId        (backend from a pool)
//!   feed_chunk(id, input)        ─► FeedReport       (per-chunk outcome)
//!   checkpoint_session(id)       ─► CheckpointId     (saved derivative)
//!   rollback_session(id, cp)     ─► SessionStatus    (speculation undone)
//!   finish_session(id)           ─► FinishReport     (backend → pool)
//! ```
//!
//! Sessions ride the same infrastructure as batches: the backend is checked
//! out of a slot pool (fork of the cached compiled prototype, or an idle
//! epoch-reset session) and returned to a pool at finish, so a service
//! serving a mix of batch and live traffic shares one set of warm arenas.
//!
//! Concurrency: a live session is **single-caller**. While one call is
//! feeding a session, the session is temporarily out of the registry and
//! concurrent calls for the same id get [`ServeError::UnknownSession`]; the
//! registry lock itself is never held across engine work, so sessions never
//! serialize against each other.

use derp::api::{BackendMetrics, Checkpoint, EnumLimits, FeedOutcome, ForestSummary, Session};
use pwd_grammar::Cfg;
use pwd_obs::{Phase, PhaseStats};
use std::time::Instant;

use crate::obs::ObsSamples;
use crate::service::{Input, ParseService, ServeError};

/// Handle to a live session on a [`ParseService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// Handle to a checkpoint of one live session (dense indices; a rollback
/// discards all later checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckpointId(pub usize);

/// A live session's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Tokens fed so far.
    pub tokens_fed: usize,
    /// Can some continuation still be accepted?
    pub viable: bool,
    /// Is the prefix fed so far a complete sentence?
    pub prefix_is_sentence: bool,
    /// Checkpoints currently restorable.
    pub checkpoints: usize,
    /// Cumulative resource stats for the session.
    pub stats: SessionStats,
}

/// Cumulative per-session resource stats: how much input a session
/// consumed, how it used the incremental API, and how large the engine
/// state behind it grew. Tracked for every session (the counters are
/// cheap); the batch path surfaces the same shape per input via
/// [`ParseOutcome::stats`](crate::ParseOutcome::stats) when
/// [`ServiceConfig::observability`](crate::ServiceConfig::observability)
/// is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Tokens fed over the session's lifetime (rollbacks reduce this — it
    /// tracks the session's current position, like
    /// [`SessionStatus::tokens_fed`]).
    pub tokens_fed: usize,
    /// Chunks successfully fed (a batch input counts as one chunk).
    pub chunks: u64,
    /// Checkpoints taken over the lifetime (rollback-discarded ones
    /// included).
    pub checkpoints_taken: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Peak live engine state observed at a chunk or finish boundary
    /// (PWD: live graph nodes after the last token).
    pub peak_live_nodes: u64,
    /// Peak resident arena bytes observed at a chunk or finish boundary
    /// (zero for backends without an arena).
    pub peak_arena_bytes: u64,
    /// Edit splices applied ([`ParseService::splice_session`]).
    pub splices: u64,
    /// Tokens splices did **not** refeed (reused prefix plus
    /// convergence-skipped suffix), cumulative.
    pub tokens_reused: u64,
    /// Tokens splices refed through the engine, cumulative.
    pub tokens_refed: u64,
    /// Total distance between each splice's damage start and the
    /// checkpoint-ladder rung it restored, cumulative.
    pub ladder_rollback_distance: u64,
}

impl SessionStats {
    /// Stats for one batch input, read off the engine metrics after its
    /// run.
    pub(crate) fn for_input(tokens: usize, m: &BackendMetrics) -> SessionStats {
        let mut stats = SessionStats { tokens_fed: tokens, chunks: 1, ..SessionStats::default() };
        stats.note_peaks(m);
        stats
    }

    /// Folds an engine-metrics snapshot into the peak gauges.
    pub(crate) fn note_peaks(&mut self, m: &BackendMetrics) {
        self.peak_live_nodes = self.peak_live_nodes.max(m.live_state);
        self.peak_arena_bytes = self.peak_arena_bytes.max(m.arena_bytes);
    }
}

/// The result of feeding one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedReport {
    /// Outcome after the chunk's last token.
    pub outcome: FeedOutcome,
    /// Tokens fed so far (chunks accumulate).
    pub tokens_fed: usize,
}

/// The result of splicing an edit into a live session
/// ([`ParseService::splice_session`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceReport {
    /// Outcome after the splice (over the whole post-edit stream).
    pub outcome: FeedOutcome,
    /// Tokens fed after the splice (the post-edit stream length).
    pub tokens_fed: usize,
    /// Position of the checkpoint-ladder rung the engine restored —
    /// everything at or below it was reused outright.
    pub rung: usize,
    /// Tokens actually refed through the engine for this splice.
    pub refed: usize,
    /// Tokens *not* refed: the reused prefix plus any convergence-skipped
    /// suffix.
    pub reused: usize,
    /// Post-edit position where the engine state converged with the
    /// memoized pre-edit state and refeeding stopped early, if it did.
    pub converged_at: Option<usize>,
    /// Stored checkpoints still restorable after the splice (ones above
    /// the restored rung were discarded, as with a rollback).
    pub checkpoints: usize,
}

/// The result of finishing a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishReport {
    /// Was the full fed input accepted?
    pub accepted: bool,
    /// Total tokens the session consumed.
    pub tokens_fed: usize,
    /// Cumulative session resource stats.
    pub stats: SessionStats,
}

/// The result of finishing a session with forest reporting
/// ([`ParseService::finish_session_forest`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishForestReport {
    /// Was the full fed input accepted (≥ 1 parse tree)?
    pub accepted: bool,
    /// Total tokens the session consumed.
    pub tokens_fed: usize,
    /// The shared-forest summary: exact count, depth, packed node count,
    /// canonical fingerprint.
    pub forest: ForestSummary,
    /// Up to `top_k` rendered parse trees.
    pub trees: Vec<String>,
    /// Cumulative session resource stats.
    pub stats: SessionStats,
}

/// A session held across calls: the owned backend session plus its saved
/// checkpoints, keyed into the service registry.
pub(crate) struct LiveSession {
    fingerprint: u64,
    session: Session<'static>,
    checkpoints: Vec<Checkpoint>,
    stats: SessionStats,
}

impl LiveSession {
    fn status(&mut self) -> Result<SessionStatus, ServeError> {
        self.stats.tokens_fed = self.session.tokens_fed();
        Ok(SessionStatus {
            tokens_fed: self.session.tokens_fed(),
            viable: self.session.is_viable(),
            prefix_is_sentence: self.session.prefix_is_sentence()?,
            checkpoints: self.checkpoints.len(),
            stats: self.stats,
        })
    }
}

impl ParseService {
    /// Opens a live incremental session for a grammar. The backend comes
    /// from the same compiled-grammar cache and session pools as batch
    /// traffic (compile at most once per service; warm opens are an epoch
    /// reset away).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownBackend`] for a misconfigured service,
    /// [`ServeError::Backend`] if the session cannot start.
    pub fn open_session(&self, cfg: &Cfg) -> Result<SessionId, ServeError> {
        let limit = self.config().max_live_sessions;
        // Reserve a slot atomically (compare-and-swap): concurrent opens
        // cannot race past the cap, and sessions checked out of the
        // registry by an in-flight call still count.
        if self
            .live_count
            .fetch_update(
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
                |n| (n < limit).then_some(n + 1),
            )
            .is_err()
        {
            return Err(ServeError::SessionLimit { limit });
        }
        let opened = (|| {
            let (fingerprint, mut backend) = self.checkout_backend(cfg)?;
            if self.obs.enabled() {
                // Arm the engine's phase histograms for the session's whole
                // lifetime; they are absorbed (and the hooks disarmed) when
                // the backend returns to a pool.
                backend.set_obs(true);
            }
            let mut session = Session::owned(backend)?;
            // Live sessions are incremental by construction: edits can be
            // spliced in via `splice_session` with damage-region reuse, and
            // the per-feed bookkeeping is cheap next to chunked traffic.
            session.enable_incremental()?;
            Ok(LiveSession {
                fingerprint,
                session,
                checkpoints: Vec::new(),
                stats: SessionStats::default(),
            })
        })();
        let live = match opened {
            Ok(live) => live,
            Err(e) => {
                self.live_count.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
                return Err(e);
            }
        };
        let id = self.next_session.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.live.lock().expect("live registry poisoned").insert(id, live);
        Ok(SessionId(id))
    }

    /// Takes a session out of the registry for exclusive use.
    fn take(&self, id: SessionId) -> Result<LiveSession, ServeError> {
        self.live
            .lock()
            .expect("live registry poisoned")
            .remove(&id.0)
            .ok_or(ServeError::UnknownSession { id: id.0 })
    }

    /// Puts a session back after exclusive use.
    fn put(&self, id: SessionId, live: LiveSession) {
        self.live.lock().expect("live registry poisoned").insert(id.0, live);
    }

    /// Feeds one chunk of input to a live session and reports the outcome
    /// after its last token. Chunk boundaries are invisible to the parse —
    /// any chunking of an input yields the same final state as feeding it
    /// whole (the streaming/batch agreement property).
    ///
    /// Chunks are **atomic**: on a retryable error (an unknown terminal
    /// kind) the session is rolled back to where it was before the chunk,
    /// so no prefix of a failed chunk is consumed and a corrected resend
    /// starts from a known position. If the session cannot be restored —
    /// an engine resource limit tripped, leaving the arena full — it is
    /// **closed** (the backend is recycled, and later calls for the id get
    /// [`ServeError::UnknownSession`]) rather than left poisoned for the
    /// client to retry forever. A chunk whose token kills the language is
    /// not an error: the report says [`FeedOutcome::Dead`] and the session
    /// stays open (for status, rollback, or finish).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`] from the
    /// engine.
    pub fn feed_chunk(&self, id: SessionId, chunk: &Input) -> Result<FeedReport, ServeError> {
        let t0 = self.obs.enabled().then(Instant::now);
        let mut live = self.take(id)?;
        let fed = (|| {
            // All-or-nothing: retract the partial prefix if any token fails.
            let undo = live.session.checkpoint().map_err(|e| (e, false))?;
            let outcome = match chunk {
                Input::Kinds(kinds) => {
                    let refs: Vec<&str> = kinds.iter().map(String::as_str).collect();
                    live.session.feed_all(&refs)
                }
                Input::Lexemes(lexemes) => live.session.feed_lexemes(lexemes),
            };
            match outcome {
                Ok(outcome) => Ok(outcome),
                Err(e) => match live.session.rollback(&undo) {
                    // Session intact, chunk fully retracted.
                    Ok(()) => Err((e, false)),
                    // Unrecoverable (e.g. node budget exhausted): close it.
                    Err(_) => Err((e, true)),
                },
            }
        })();
        match fed {
            Ok(outcome) => {
                live.stats.chunks += 1;
                live.stats.tokens_fed = live.session.tokens_fed();
                live.stats.note_peaks(&live.session.metrics());
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    let mut samples = ObsSamples::new();
                    samples.request_ns.push(ns);
                    // Chunk latency also lands in the phase family, so the
                    // exposition shows it next to the engine's own phases.
                    let mut phases = PhaseStats::new();
                    phases.record(Phase::Chunk, ns);
                    samples.phases = Some(phases);
                    self.obs.fold(&self.config().backend, live.fingerprint, samples);
                }
                let report = FeedReport { outcome, tokens_fed: live.session.tokens_fed() };
                self.put(id, live);
                Ok(report)
            }
            Err((e, close)) => {
                if close {
                    self.close(live);
                } else {
                    self.put(id, live);
                }
                Err(ServeError::Backend(e))
            }
        }
    }

    /// Permanently removes a session: recycles its backend (the pool reset
    /// clears even budget-exhausted arenas) and releases its cap slot.
    fn close(&self, live: LiveSession) {
        let (_verdict, backend) = live.session.finish_and_release();
        if let Some(mut backend) = backend {
            let m = backend.metrics();
            self.absorb_memo(&m);
            self.fold_session_obs(live.fingerprint, &m, None);
            backend.set_obs(false);
            self.release_backend(live.fingerprint, backend);
        }
        self.live_count.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Folds a closing live session's accumulated engine phase histograms —
    /// plus the finish-call latency, when timed — into the observability
    /// store. A no-op with observability off.
    fn fold_session_obs(&self, fingerprint: u64, m: &BackendMetrics, t0: Option<Instant>) {
        if !self.obs.enabled() {
            return;
        }
        let mut samples = ObsSamples::new();
        if let Some(t0) = t0 {
            samples.request_ns.push(t0.elapsed().as_nanos() as u64);
        }
        if let Some(p) = &m.phases {
            samples.absorb_phases(p);
        }
        self.obs.fold(&self.config().backend, fingerprint, samples);
    }

    /// Saves the session's current position — for the PWD backend, the
    /// derivative `D_{t1…tk}(L)` itself (one node id; nothing is copied).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`].
    pub fn checkpoint_session(&self, id: SessionId) -> Result<CheckpointId, ServeError> {
        let mut live = self.take(id)?;
        let cp = live.session.checkpoint();
        let out = cp.map(|cp| {
            live.checkpoints.push(cp);
            live.stats.checkpoints_taken += 1;
            CheckpointId(live.checkpoints.len() - 1)
        });
        self.put(id, live);
        Ok(out?)
    }

    /// Rolls a live session back to a saved checkpoint, undoing every token
    /// fed since (the speculative-prefix retraction path). Checkpoints
    /// taken *after* the restored one are discarded — their positions no
    /// longer exist.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], [`ServeError::UnknownCheckpoint`],
    /// or [`ServeError::Backend`].
    pub fn rollback_session(
        &self,
        id: SessionId,
        cp: CheckpointId,
    ) -> Result<SessionStatus, ServeError> {
        let mut live = self.take(id)?;
        let out = (|| {
            let saved = live
                .checkpoints
                .get(cp.0)
                .ok_or(ServeError::UnknownCheckpoint { session: id.0, checkpoint: cp.0 })?;
            live.session.rollback(saved)?;
            live.checkpoints.truncate(cp.0 + 1);
            live.stats.rollbacks += 1;
            live.status()
        })();
        self.put(id, live);
        out
    }

    /// Splices an edit into a live session's already-fed token stream:
    /// replaces `remove` tokens starting at position `at` with `insert`,
    /// re-deriving only what the damage invalidates. The engine rolls back
    /// to the nearest checkpoint-ladder rung at or below `at` and refeeds
    /// from there; in PWD recognize mode the refeed additionally stops
    /// early once the post-edit derivative state converges with the
    /// memoized pre-edit state. Compared to rollback-and-refeed by hand,
    /// the caller sends only the edit, not the suffix.
    ///
    /// Stored checkpoints follow the same timeline semantics as
    /// [`rollback_session`](ParseService::rollback_session): checkpoints at
    /// positions above the restored rung are discarded — those positions
    /// were re-derived and no longer exist on the session's timeline.
    ///
    /// An out-of-range edit (`at + remove` beyond the fed stream) fails
    /// with the session untouched. A mid-refeed engine error **closes**
    /// the session: the edit would otherwise be half-applied, leaving a
    /// stream the client cannot reconstruct.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`] from the
    /// engine.
    pub fn splice_session(
        &self,
        id: SessionId,
        at: usize,
        remove: usize,
        insert: &Input,
    ) -> Result<SpliceReport, ServeError> {
        let t0 = self.obs.enabled().then(Instant::now);
        let mut live = self.take(id)?;
        // The engine validates the range before touching anything; compute
        // the same predicate here so the error path knows whether the
        // session is still pristine (put back) or mid-splice (close).
        let in_range = at.checked_add(remove).is_some_and(|end| end <= live.session.tokens_fed());
        let pairs: Vec<(&str, &str)> = match insert {
            Input::Kinds(kinds) => kinds.iter().map(|k| (k.as_str(), k.as_str())).collect(),
            Input::Lexemes(lexemes) => {
                lexemes.iter().map(|l| (l.kind.as_str(), l.text.as_str())).collect()
            }
        };
        match live.session.splice_tokens(at, remove, &pairs) {
            Ok(out) => {
                // Checkpoints are position-sorted (each new one is at or
                // beyond the last), so "above the rung" is a suffix.
                let keep = live.checkpoints.partition_point(|c| c.tokens_fed() <= out.rung);
                live.checkpoints.truncate(keep);
                live.stats.splices += 1;
                live.stats.tokens_fed = live.session.tokens_fed();
                let m = live.session.metrics();
                live.stats.tokens_reused = m.tokens_reused;
                live.stats.tokens_refed = m.tokens_refed;
                live.stats.ladder_rollback_distance = m.ladder_rollback_distance;
                live.stats.note_peaks(&m);
                self.splices.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.splice_tokens_reused
                    .fetch_add(out.reused as u64, std::sync::atomic::Ordering::Relaxed);
                self.splice_tokens_refed
                    .fetch_add(out.refed as u64, std::sync::atomic::Ordering::Relaxed);
                self.splice_ladder_distance
                    .fetch_add((at - out.rung) as u64, std::sync::atomic::Ordering::Relaxed);
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    let mut samples = ObsSamples::new();
                    samples.request_ns.push(ns);
                    // Splice latency lands in the chunk phase family: it is
                    // the incremental analogue of feeding a chunk.
                    let mut phases = PhaseStats::new();
                    phases.record(Phase::Chunk, ns);
                    samples.phases = Some(phases);
                    self.obs.fold(&self.config().backend, live.fingerprint, samples);
                }
                let report = SpliceReport {
                    outcome: out.outcome,
                    tokens_fed: live.session.tokens_fed(),
                    rung: out.rung,
                    refed: out.refed,
                    reused: out.reused,
                    converged_at: out.converged_at,
                    checkpoints: live.checkpoints.len(),
                };
                self.put(id, live);
                Ok(report)
            }
            Err(e) => {
                if in_range {
                    self.close(live);
                } else {
                    self.put(id, live);
                }
                Err(ServeError::Backend(e))
            }
        }
    }

    /// The session's current status (tokens fed, viability, sentence-hood,
    /// live checkpoints).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`].
    pub fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServeError> {
        let mut live = self.take(id)?;
        let out = live.status();
        self.put(id, live);
        out
    }

    /// Finishes a live session: reports the verdict over everything fed and
    /// returns the backend to a session pool, where the next open (or batch
    /// worker) reuses its warm arena via the O(1) epoch reset.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`] (the
    /// backend is still recycled).
    pub fn finish_session(&self, id: SessionId) -> Result<FinishReport, ServeError> {
        let t0 = self.obs.enabled().then(Instant::now);
        let live = self.take(id)?;
        let tokens_fed = live.session.tokens_fed();
        let mut stats = live.stats;
        stats.tokens_fed = tokens_fed;
        let (verdict, backend) = live.session.finish_and_release();
        if let Some(mut backend) = backend {
            // Fold the session's engine counters into the lifetime memo
            // totals before reset wipes them.
            let m = backend.metrics();
            self.absorb_memo(&m);
            stats.note_peaks(&m);
            self.fold_session_obs(live.fingerprint, &m, t0);
            backend.set_obs(false);
            self.release_backend(live.fingerprint, backend);
        }
        self.live_count.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
        self.count_input();
        Ok(FinishReport { accepted: verdict?, tokens_fed, stats })
    }

    /// Finishes a live session with a **parse result**, not just a verdict:
    /// the canonical shared forest of everything fed is extracted and
    /// summarized (exact ambiguity count, depth, packed size, fingerprint)
    /// along with up to `top_k` rendered parse trees, and the backend
    /// returns to a session pool. This is what lets a parse client receive
    /// real ambiguity information — "this program has 42 readings, here are
    /// the first three" — from one streaming session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::Backend`] (the
    /// backend is still recycled).
    pub fn finish_session_forest(
        &self,
        id: SessionId,
        top_k: usize,
    ) -> Result<FinishForestReport, ServeError> {
        let t0 = self.obs.enabled().then(Instant::now);
        let live = self.take(id)?;
        let tokens_fed = live.session.tokens_fed();
        let mut stats = live.stats;
        stats.tokens_fed = tokens_fed;
        let (forest, backend) = live.session.finish_forest_and_release();
        if let Some(mut backend) = backend {
            let m = backend.metrics();
            self.absorb_memo(&m);
            stats.note_peaks(&m);
            self.fold_session_obs(live.fingerprint, &m, t0);
            backend.set_obs(false);
            self.release_backend(live.fingerprint, backend);
        }
        self.live_count.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
        self.count_input();
        let forest = forest?;
        let summary = forest.summary();
        let limits =
            EnumLimits { max_trees: top_k, max_depth: forest.depth().saturating_mul(2) + 64 };
        let trees = forest.trees(limits).iter().map(|t| t.to_string()).collect();
        Ok(FinishForestReport {
            accepted: !summary.count.is_zero(),
            tokens_fed,
            forest: summary,
            trees,
            stats,
        })
    }

    /// Abandons a live session without a verdict: everything fed is
    /// discarded and the backend is recycled into a pool. The escape hatch
    /// for disconnected clients — without it, abandoned opens would pin
    /// pooled backends forever.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn abort_session(&self, id: SessionId) -> Result<(), ServeError> {
        let live = self.take(id)?;
        self.close(live);
        Ok(())
    }

    /// Number of live sessions currently open, including any momentarily
    /// checked out by a call in flight.
    pub fn live_sessions(&self) -> usize {
        self.live_count.load(std::sync::atomic::Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use pwd_grammar::CfgBuilder;
    use pwd_lex::Lexeme;

    fn pairs() -> Cfg {
        let mut g = CfgBuilder::new("S");
        g.terminals(&["a", "b"]);
        g.rule("S", &["a", "S", "b"]);
        g.rule("S", &["a", "b"]);
        g.build().unwrap()
    }

    fn service() -> ParseService {
        ParseService::new(ServiceConfig { workers: 2, ..Default::default() })
    }

    #[test]
    fn chunked_live_session_end_to_end() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        assert_eq!(service.live_sessions(), 1);

        let r = service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        assert_eq!(r.tokens_fed, 2);
        assert_eq!(r.outcome, FeedOutcome::Viable { prefix_is_sentence: false });
        let r = service.feed_chunk(id, &Input::from_kinds(&["b"])).unwrap();
        assert_eq!(r.outcome, FeedOutcome::Viable { prefix_is_sentence: false });
        let r = service.feed_chunk(id, &Input::from_kinds(&["b"])).unwrap();
        assert_eq!(r.outcome, FeedOutcome::Viable { prefix_is_sentence: true });

        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted);
        assert_eq!(fin.tokens_fed, 4);
        assert_eq!(service.live_sessions(), 0);
        assert!(matches!(service.session_status(id), Err(ServeError::UnknownSession { .. })));
    }

    #[test]
    fn checkpoint_rollback_retracts_speculation() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        let cp = service.checkpoint_session(id).unwrap();

        // Speculate into a dead end…
        let r = service.feed_chunk(id, &Input::from_kinds(&["b", "b", "b"])).unwrap();
        assert_eq!(r.outcome, FeedOutcome::Dead);
        let status = service.session_status(id).unwrap();
        assert!(!status.viable);

        // …retract, and resume down the real input.
        let status = service.rollback_session(id, cp).unwrap();
        assert!(status.viable);
        assert_eq!(status.tokens_fed, 2);
        service.feed_chunk(id, &Input::from_kinds(&["b", "b"])).unwrap();
        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted, "aabb after rollback");
    }

    #[test]
    fn rollback_discards_later_checkpoints() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let cp1 = service.checkpoint_session(id).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let cp2 = service.checkpoint_session(id).unwrap();
        let status = service.rollback_session(id, cp1).unwrap();
        assert_eq!(status.checkpoints, 1, "cp2 must die with the rollback");
        assert!(matches!(
            service.rollback_session(id, cp2),
            Err(ServeError::UnknownCheckpoint { .. })
        ));
        service.finish_session(id).unwrap();
    }

    #[test]
    fn lexeme_chunks_reach_the_engine_with_text() {
        let mut g = CfgBuilder::new("S");
        g.terminal("ID");
        g.rule("S", &["ID", "S"]);
        g.rule("S", &["ID"]);
        let cfg = g.build().unwrap();
        let service = service();
        let id = service.open_session(&cfg).unwrap();
        let lex = |texts: &[&str], base: usize| {
            Input::from_lexemes(
                texts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Lexeme {
                        kind: "ID".into(),
                        text: t.to_string(),
                        offset: base + i,
                    })
                    .collect(),
            )
        };
        service.feed_chunk(id, &lex(&["x", "y"], 0)).unwrap();
        service.feed_chunk(id, &lex(&["z"], 2)).unwrap();
        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted);
        assert_eq!(fin.tokens_fed, 3);
    }

    #[test]
    fn live_sessions_finish_with_forests() {
        let service = service();
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["S", "S"]);
        g.rule("S", &["a"]);
        let cfg = g.build().unwrap();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "a"])).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        let report = service.finish_session_forest(id, 2).unwrap();
        assert!(report.accepted);
        assert_eq!(report.tokens_fed, 5);
        assert_eq!(report.forest.count, derp::api::ParseCount::Finite(14), "C4 = 14");
        assert_eq!(report.trees.len(), 2);
        assert_eq!(service.live_sessions(), 0);
        // The backend was recycled like a plain finish.
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let report = service.finish_session_forest(id, 0).unwrap();
        assert_eq!(report.forest.count, derp::api::ParseCount::Finite(1));
        assert!(report.trees.is_empty());
        assert_eq!(service.metrics().sessions.forked, 1, "second open reused the pool");
    }

    #[test]
    fn rejected_live_sessions_report_empty_forests() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let report = service.finish_session_forest(id, 4).unwrap();
        assert!(!report.accepted);
        assert_eq!(report.forest.count, derp::api::ParseCount::Finite(0));
        assert!(report.trees.is_empty());
    }

    #[test]
    fn finished_sessions_return_their_backend_to_a_pool() {
        let service = service();
        let cfg = pairs();
        // Open/finish twice: the second open must reuse the first session's
        // backend (pool reuse), not fork a fresh one.
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
        let id = service.open_session(&cfg).unwrap();
        assert!(service.finish_session(id).unwrap().tokens_fed == 0);
        let m = service.metrics();
        assert_eq!(m.sessions.forked, 1, "{:?}", m.sessions);
        assert!(m.sessions.reused >= 1, "{:?}", m.sessions);
        assert_eq!(m.inputs, 2);
    }

    #[test]
    fn per_chunk_errors_keep_the_session_alive() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let err = service.feed_chunk(id, &Input::from_kinds(&["NOPE"])).unwrap_err();
        assert!(matches!(err, ServeError::Backend(_)), "{err}");
        // The session survived the bad chunk; the good prefix is intact.
        let status = service.session_status(id).unwrap();
        assert_eq!(status.tokens_fed, 1);
        service.feed_chunk(id, &Input::from_kinds(&["b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
    }

    #[test]
    fn failed_chunks_are_atomic() {
        // A chunk that errors mid-way must consume none of its tokens, so a
        // corrected resend does not double-feed the good prefix.
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        let err = service.feed_chunk(id, &Input::from_kinds(&["a", "NOPE", "b"])).unwrap_err();
        assert!(matches!(err, ServeError::Backend(_)), "{err}");
        assert_eq!(service.session_status(id).unwrap().tokens_fed, 1, "chunk rolled back whole");
        // Resend the corrected chunk: exactly one extra "a" lands.
        service.feed_chunk(id, &Input::from_kinds(&["a", "b", "b"])).unwrap();
        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted, "aabb");
        assert_eq!(fin.tokens_fed, 4);
    }

    #[test]
    fn abort_discards_the_session_and_recycles_the_backend() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        service.abort_session(id).unwrap();
        assert_eq!(service.live_sessions(), 0);
        assert!(matches!(service.abort_session(id), Err(ServeError::UnknownSession { .. })));
        // The aborted session's backend is back in a pool: the next open
        // reuses it instead of forking.
        let id = service.open_session(&cfg).unwrap();
        service.finish_session(id).unwrap();
        assert_eq!(service.metrics().sessions.forked, 1);
    }

    #[test]
    fn session_limit_bounds_the_registry() {
        let service = ParseService::new(ServiceConfig {
            workers: 1,
            max_live_sessions: 2,
            ..Default::default()
        });
        let cfg = pairs();
        let a = service.open_session(&cfg).unwrap();
        let _b = service.open_session(&cfg).unwrap();
        assert!(matches!(service.open_session(&cfg), Err(ServeError::SessionLimit { limit: 2 })));
        // Finishing one frees a slot.
        service.finish_session(a).unwrap();
        assert!(service.open_session(&cfg).is_ok());
    }

    #[test]
    fn live_sessions_contribute_to_lifetime_memo_metrics() {
        let service = service();
        let mut g = CfgBuilder::new("S");
        g.terminal("x");
        g.rule("S", &["x", "S"]);
        g.rule("S", &["x"]);
        let cfg = g.build().unwrap();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["x"; 12])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
        let memo = service.metrics().memo;
        assert!(
            memo.memo_hits + memo.memo_misses > 0,
            "live traffic must show up in lifetime memo totals: {memo:?}"
        );
    }

    #[test]
    fn dfa_live_sessions_fold_table_hits_into_lifetime_totals() {
        let service = ParseService::new(ServiceConfig {
            workers: 1,
            backend: "pwd-dfa".to_string(),
            ..Default::default()
        });
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "b", "b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
        let cold = service.metrics().memo;
        assert!(cold.auto_rows_built > 0, "cold session interns states: {cold:?}");
        // A second identical session reuses the pooled backend, whose
        // compiled transition rows survive the epoch reset: all table hits,
        // zero new rows.
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "b", "b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
        let warm = service.metrics().memo;
        assert_eq!(warm.auto_rows_built, cold.auto_rows_built, "warm session builds no rows");
        assert!(warm.auto_table_hits > cold.auto_table_hits, "warm session walks the table");
        assert!(warm.table_hit_ratio().unwrap() > 0.0, "{warm:?}");
    }

    #[test]
    fn session_stats_track_chunks_checkpoints_and_rollbacks() {
        let service = ParseService::new(ServiceConfig {
            workers: 2,
            observability: true,
            ..Default::default()
        });
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        let cp = service.checkpoint_session(id).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["b"])).unwrap();
        service.rollback_session(id, cp).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["b", "b"])).unwrap();
        let status = service.session_status(id).unwrap();
        assert_eq!(status.stats.chunks, 3);
        assert_eq!(status.stats.checkpoints_taken, 1);
        assert_eq!(status.stats.rollbacks, 1);
        assert!(status.stats.peak_live_nodes > 0, "{:?}", status.stats);
        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted);
        assert_eq!(fin.stats.tokens_fed, 4);
        assert_eq!(fin.stats.chunks, 3);
        assert!(fin.stats.peak_arena_bytes > 0, "{:?}", fin.stats);
        // Live traffic shows up in the exposition: chunk latency rides the
        // phase family, finish latency the request histogram.
        let text = service.metrics_text();
        assert!(text.contains("phase=\"chunk\""), "{text}");
        assert!(text.contains("pwd_serve_request_duration_ns_count"), "{text}");
    }

    #[test]
    fn live_and_batch_traffic_share_the_service() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
        // A batch lands while the session is live.
        let report = service
            .submit_batch(&cfg, &[Input::from_kinds(&["a", "b"]), Input::from_kinds(&["a"])])
            .unwrap();
        assert!(report.outcomes[0].as_ref().unwrap().accepted);
        assert!(!report.outcomes[1].as_ref().unwrap().accepted);
        // The live session is unaffected.
        service.feed_chunk(id, &Input::from_kinds(&["b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
    }

    #[test]
    fn every_roster_backend_serves_live_sessions() {
        let cfg = pairs();
        for &name in derp::api::BACKEND_NAMES {
            let service = ParseService::new(ServiceConfig {
                workers: 2,
                backend: name.to_string(),
                ..Default::default()
            });
            let id = service.open_session(&cfg).unwrap();
            service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
            let cp = service.checkpoint_session(id).unwrap();
            service.feed_chunk(id, &Input::from_kinds(&["a"])).unwrap();
            service.rollback_session(id, cp).unwrap();
            service.feed_chunk(id, &Input::from_kinds(&["b", "b"])).unwrap();
            assert!(service.finish_session(id).unwrap().accepted, "{name}");
        }
    }

    #[test]
    fn splice_edits_a_live_session_in_place() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        // aabb is a sentence; splice the middle to grow it to aaabbb.
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "b", "b"])).unwrap();
        let r = service.splice_session(id, 2, 0, &Input::from_kinds(&["a", "b"])).unwrap();
        assert_eq!(r.tokens_fed, 6);
        assert_eq!(r.outcome, FeedOutcome::Viable { prefix_is_sentence: true });
        assert!(r.refed <= 6 - r.rung, "{r:?}");
        assert_eq!(r.reused + r.refed, 6, "{r:?}");
        let status = service.session_status(id).unwrap();
        assert_eq!(status.stats.splices, 1);
        assert_eq!(status.stats.tokens_reused + status.stats.tokens_refed, 6);
        let fin = service.finish_session(id).unwrap();
        assert!(fin.accepted, "aaabbb after splice");
        assert_eq!(fin.tokens_fed, 6);
    }

    #[test]
    fn splice_deletes_and_replaces_tokens() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "a", "b", "b", "b"])).unwrap();
        // Delete one nesting level: aaabbb -> aabb.
        let r = service.splice_session(id, 2, 2, &Input::from_kinds(&[])).unwrap();
        assert_eq!(r.tokens_fed, 4);
        assert_eq!(r.outcome, FeedOutcome::Viable { prefix_is_sentence: true });
        assert!(service.finish_session(id).unwrap().accepted, "aabb after deletion");
    }

    #[test]
    fn splice_discards_checkpoints_above_the_restored_rung() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        let cp0 = service.checkpoint_session(id).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        let cp2 = service.checkpoint_session(id).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["b", "b"])).unwrap();
        let cp4 = service.checkpoint_session(id).unwrap();

        // Damage starts at 3: the engine restores a rung at or below 3, so
        // cp4 dies; cp0 (position 0, always at or below any rung) survives.
        let r = service.splice_session(id, 3, 1, &Input::from_kinds(&["b"])).unwrap();
        assert!(r.rung <= 3, "{r:?}");
        assert!(r.checkpoints <= 2, "cp4 must die with the splice: {r:?}");
        assert!(matches!(
            service.rollback_session(id, cp4),
            Err(ServeError::UnknownCheckpoint { .. })
        ));
        let status = service.rollback_session(id, cp0).unwrap();
        assert_eq!(status.tokens_fed, 0);
        let _ = cp2; // validity depends on the rung position; not asserted
        service.abort_session(id).unwrap();
    }

    #[test]
    fn out_of_range_splice_leaves_the_session_untouched() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a"])).unwrap();
        let err = service.splice_session(id, 1, 5, &Input::from_kinds(&["b"]));
        assert!(matches!(err, Err(ServeError::Backend(_))), "{err:?}");
        // Still open and still at position 2.
        let status = service.session_status(id).unwrap();
        assert_eq!(status.tokens_fed, 2);
        assert_eq!(status.stats.splices, 0);
        service.feed_chunk(id, &Input::from_kinds(&["b", "b"])).unwrap();
        assert!(service.finish_session(id).unwrap().accepted);
    }

    #[test]
    fn every_roster_backend_splices_live_sessions() {
        let cfg = pairs();
        for &name in derp::api::BACKEND_NAMES {
            let service = ParseService::new(ServiceConfig {
                workers: 2,
                backend: name.to_string(),
                ..Default::default()
            });
            let id = service.open_session(&cfg).unwrap();
            service.feed_chunk(id, &Input::from_kinds(&["a", "b"])).unwrap();
            let r = service.splice_session(id, 1, 0, &Input::from_kinds(&["a", "b"])).unwrap();
            assert_eq!(r.tokens_fed, 4, "{name}");
            assert!(service.finish_session(id).unwrap().accepted, "aabb via splice on {name}");
        }
    }

    #[test]
    fn splice_counters_reach_the_metrics_exposition() {
        let service = service();
        let cfg = pairs();
        let id = service.open_session(&cfg).unwrap();
        service.feed_chunk(id, &Input::from_kinds(&["a", "a", "b", "b"])).unwrap();
        service.splice_session(id, 2, 0, &Input::from_kinds(&["a", "b"])).unwrap();
        service.finish_session(id).unwrap();
        let m = service.metrics();
        assert_eq!(m.splices, 1);
        assert_eq!(m.splice_tokens_reused + m.splice_tokens_refed, 6, "{m:?}");
        let text = service.metrics_text();
        assert!(text.contains("pwd_serve_splices_total"), "{text}");
        assert!(text.contains("pwd_serve_splice_tokens_reused_total"), "{text}");
        assert!(text.contains("pwd_serve_splice_tokens_refed_total"), "{text}");
        assert!(text.contains("pwd_serve_splice_ladder_distance_total"), "{text}");
    }
}
