//! Service-side observability: request/queue-wait/execute latency
//! histograms keyed by `(backend, grammar fingerprint)`, merged engine
//! phase histograms, and the Prometheus-style text exposition behind
//! [`ParseService::metrics_text`](crate::ParseService::metrics_text).
//!
//! Recording is runtime-gated on [`ServiceConfig::observability`]
//! (`crate::ServiceConfig`): while off (the default) no clock is read on
//! the request path and the store stays empty. Workers batch their samples
//! — one lock acquisition per request or batch, never per token.

use pwd_obs::{Phase, PhaseStats, PromText};
use std::collections::HashMap;
use std::sync::Mutex;

pub(crate) use pwd_obs::Histogram;

/// Latency histograms plus merged engine phases for one
/// `(backend, grammar)` key.
#[derive(Debug, Clone)]
pub(crate) struct KeyObs {
    /// Whole-request wall time: one sample per `submit_batch` call, per
    /// live-session chunk, and per live-session finish.
    pub(crate) request: Histogram,
    /// Per-input delay between batch arrival and a worker starting it
    /// (pool-lock wait included).
    pub(crate) queue_wait: Histogram,
    /// Per-input engine execution time, once a worker picked it up.
    pub(crate) execute: Histogram,
    /// Engine-side phase histograms (derive/compact/nullable/auto-row/
    /// forest) merged over every instrumented run for this key.
    pub(crate) phases: PhaseStats,
}

impl KeyObs {
    fn new() -> KeyObs {
        KeyObs {
            request: Histogram::new(),
            queue_wait: Histogram::new(),
            execute: Histogram::new(),
            phases: PhaseStats::new(),
        }
    }
}

/// One worker's (or one live call's) locally-accumulated samples, folded
/// into the shared store in a single lock acquisition.
#[derive(Debug)]
pub(crate) struct ObsSamples {
    pub(crate) request_ns: Vec<u64>,
    pub(crate) queue_wait_ns: Vec<u64>,
    pub(crate) execute_ns: Vec<u64>,
    pub(crate) phases: Option<PhaseStats>,
}

impl ObsSamples {
    pub(crate) fn new() -> ObsSamples {
        ObsSamples {
            request_ns: Vec::new(),
            queue_wait_ns: Vec::new(),
            execute_ns: Vec::new(),
            phases: None,
        }
    }

    pub(crate) fn absorb_phases(&mut self, p: &PhaseStats) {
        match &mut self.phases {
            Some(mine) => mine.merge(p),
            None => self.phases = Some(p.clone()),
        }
    }

    fn is_empty(&self) -> bool {
        self.request_ns.is_empty()
            && self.queue_wait_ns.is_empty()
            && self.execute_ns.is_empty()
            && self.phases.is_none()
    }
}

/// The service-lifetime observability store.
pub(crate) struct ServeObs {
    enabled: bool,
    keys: Mutex<HashMap<(String, u64), KeyObs>>,
}

impl ServeObs {
    pub(crate) fn new(enabled: bool) -> ServeObs {
        ServeObs { enabled, keys: Mutex::new(HashMap::new()) }
    }

    /// Is recording on? Callers must check before reading any clock.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds one batch of locally-accumulated samples into the store.
    pub(crate) fn fold(&self, backend: &str, fingerprint: u64, samples: ObsSamples) {
        if !self.enabled || samples.is_empty() {
            return;
        }
        let mut keys = self.keys.lock().expect("obs store poisoned");
        let key = keys.entry((backend.to_string(), fingerprint)).or_insert_with(KeyObs::new);
        for ns in samples.request_ns {
            key.request.record(ns);
        }
        for ns in samples.queue_wait_ns {
            key.queue_wait.record(ns);
        }
        for ns in samples.execute_ns {
            key.execute.record(ns);
        }
        if let Some(p) = samples.phases {
            key.phases.merge(&p);
        }
    }

    /// Renders the per-key histogram families into an exposition document.
    pub(crate) fn render(&self, prom: &mut PromText) {
        let keys = self.keys.lock().expect("obs store poisoned");
        // Deterministic output: sort keys so two snapshots of the same
        // state are textually identical.
        let mut entries: Vec<(&(String, u64), &KeyObs)> = keys.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for ((backend, fingerprint), key) in entries {
            let grammar = format!("{fingerprint:016x}");
            let labels = [("backend", backend.as_str()), ("grammar", grammar.as_str())];
            prom.histogram(
                "pwd_serve_request_duration_ns",
                "Whole-request wall time (batch submit, live chunk, or finish), nanoseconds.",
                &labels,
                &key.request,
            );
            prom.histogram(
                "pwd_serve_queue_wait_ns",
                "Per-input delay from batch arrival to worker pickup, nanoseconds.",
                &labels,
                &key.queue_wait,
            );
            prom.histogram(
                "pwd_serve_execute_ns",
                "Per-input engine execution time, nanoseconds.",
                &labels,
                &key.execute,
            );
            for phase in Phase::ALL {
                let h = key.phases.get(phase);
                if h.is_empty() {
                    continue;
                }
                let labels = [
                    ("backend", backend.as_str()),
                    ("grammar", grammar.as_str()),
                    ("phase", phase.as_str()),
                ];
                prom.histogram(
                    "pwd_engine_phase_ns",
                    "Engine-side per-phase durations, nanoseconds.",
                    &labels,
                    h,
                );
            }
        }
    }
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("enabled", &self.enabled)
            .field("keys", &self.keys.lock().expect("obs store poisoned").len())
            .finish()
    }
}
