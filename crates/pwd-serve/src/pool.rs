//! Per-worker session pools.
//!
//! A compiled grammar is shared immutably ([`CachedGrammar`]), but *running*
//! an input mutates engine state (the PWD derivative arena, the Earley
//! chart, the GLR stack), so each concurrent parse needs an exclusive
//! session. The pool is the bridge: the first checkout for a grammar forks
//! the shared prototype (arena memcpy, no recompile); every later checkout
//! on the same worker reuses an idle session whose state was cleared by the
//! O(1) epoch reset at checkin. A warm worker therefore parses with **zero
//! per-request compilation and zero per-request arena allocation**.
//!
//! Pools are per-worker by design — each worker owns its pool exclusively
//! while running a batch, so checkout/checkin are plain `Vec` operations
//! with no atomics on the per-input hot path.

use derp::api::Parser;
use std::collections::HashMap;

use crate::cache::CachedGrammar;

/// An exclusively-owned parser session checked out of a [`SessionPool`].
pub struct PooledSession {
    fingerprint: u64,
    backend: Box<dyn Parser>,
}

impl PooledSession {
    /// The fingerprint of the grammar this session is compiled for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The underlying backend, ready to run inputs.
    pub fn backend(&mut self) -> &mut dyn Parser {
        &mut *self.backend
    }

    /// Dissolves the checkout into its fingerprint and owned backend — the
    /// escape hatch for holders that keep a session alive across calls
    /// (the live-session API) and [`release`](SessionPool::release) it
    /// back later.
    pub fn into_parts(self) -> (u64, Box<dyn Parser>) {
        (self.fingerprint, self.backend)
    }
}

impl std::fmt::Debug for PooledSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledSession")
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("backend", &self.backend.name())
            .finish()
    }
}

/// Fork/reuse counters for one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Sessions created by forking a cached prototype.
    pub forked: u64,
    /// Checkouts served by an idle pooled session (epoch-reset reuse).
    pub reused: u64,
}

/// An idle-session pool for one worker, keyed by grammar fingerprint.
#[derive(Default)]
pub struct SessionPool {
    idle: HashMap<u64, Vec<Box<dyn Parser>>>,
    metrics: PoolMetrics,
}

impl SessionPool {
    /// Creates an empty pool.
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// Checks out a session for the cached grammar: an idle one if
    /// available, otherwise a fresh fork of the shared prototype.
    pub fn checkout(&mut self, entry: &CachedGrammar) -> PooledSession {
        let fingerprint = entry.fingerprint();
        let backend = match self.try_reuse(fingerprint) {
            Some(b) => b,
            None => {
                self.metrics.forked += 1;
                entry.fork_session()
            }
        };
        PooledSession { fingerprint, backend }
    }

    /// Pops an idle session for the fingerprint, if any — the cheap half of
    /// [`checkout`](SessionPool::checkout), used by callers that scan
    /// several pools before paying for a fork.
    pub fn try_reuse(&mut self, fingerprint: u64) -> Option<Box<dyn Parser>> {
        let backend = self.idle.get_mut(&fingerprint).and_then(Vec::pop)?;
        self.metrics.reused += 1;
        Some(backend)
    }

    /// Returns a session to the pool, clearing its per-parse state via the
    /// backend's `reset` (for PWD, the O(1) epoch bump — the arena is kept
    /// for the next checkout instead of being reallocated).
    pub fn checkin(&mut self, session: PooledSession) {
        self.release(session.fingerprint, session.backend);
    }

    /// Returns a bare backend (e.g. recovered from a finished live session
    /// via [`PooledSession::into_parts`]) to the pool under its grammar
    /// fingerprint, reset for the next checkout.
    pub fn release(&mut self, fingerprint: u64, mut backend: Box<dyn Parser>) {
        backend.reset();
        self.idle.entry(fingerprint).or_default().push(backend);
    }

    /// Number of idle sessions currently pooled (across all grammars).
    pub fn idle_count(&self) -> usize {
        self.idle.values().map(Vec::len).sum()
    }

    /// Fork/reuse totals for this pool.
    pub fn metrics(&self) -> PoolMetrics {
        self.metrics
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("idle", &self.idle_count())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::GrammarCache;
    use pwd_grammar::CfgBuilder;

    fn entry(cache: &GrammarCache) -> std::sync::Arc<CachedGrammar> {
        let mut g = CfgBuilder::new("S");
        g.terminal("a");
        g.rule("S", &["a", "S"]);
        g.rule("S", &[]);
        cache.get_or_compile(&g.build().unwrap()).unwrap().0
    }

    #[test]
    fn checkin_then_checkout_reuses_the_session() {
        let cache = GrammarCache::new(1, "pwd-improved");
        let entry = entry(&cache);
        let mut pool = SessionPool::new();

        let mut s = pool.checkout(&entry);
        assert!(s.backend().recognize(&["a", "a"]).unwrap());
        pool.checkin(s);
        assert_eq!(pool.idle_count(), 1);

        let mut s = pool.checkout(&entry);
        assert!(s.backend().recognize(&["a"]).unwrap());
        pool.checkin(s);
        assert_eq!(
            pool.metrics(),
            PoolMetrics { forked: 1, reused: 1 },
            "second checkout must reuse, not fork"
        );
    }

    #[test]
    fn concurrent_checkouts_fork_independent_sessions() {
        let cache = GrammarCache::new(1, "pwd-improved");
        let entry = entry(&cache);
        let mut pool = SessionPool::new();
        let mut a = pool.checkout(&entry);
        let mut b = pool.checkout(&entry); // first still out: must fork again
        assert!(a.backend().recognize(&["a"]).unwrap());
        assert!(b.backend().recognize(&["a", "b-is-not-a-terminal"]).is_err());
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.metrics().forked, 2);
        assert_eq!(pool.idle_count(), 2);
    }

    #[test]
    fn reused_session_starts_clean() {
        let cache = GrammarCache::new(1, "pwd-improved");
        let entry = entry(&cache);
        let mut pool = SessionPool::new();
        let mut s = pool.checkout(&entry);
        assert!(s.backend().recognize(&["a", "a", "a"]).unwrap());
        pool.checkin(s);
        let mut s = pool.checkout(&entry);
        // A stale (un-reset) session would start from the old derivative.
        assert!(s.backend().recognize(&[]).unwrap(), "ε is in the language from a clean start");
        pool.checkin(s);
    }
}
