//! The sharded compiled-grammar cache.
//!
//! Compiling a grammar (graph construction, hash-consing, nullability
//! analysis — or SLR table construction for GLR) is the expensive,
//! once-per-grammar step; running an input is the cheap, per-request step.
//! This cache makes the expensive step happen once per grammar *per
//! process*: entries are keyed by [`Cfg::fingerprint`] and shared as
//! `Arc<CachedGrammar>`, so every worker thread sees the same compiled
//! prototype. Sharding bounds lock contention — two requests for different
//! grammars only serialize when their fingerprints land in the same shard.

use derp::api::{backend_by_name, Parser};
use pwd_grammar::Cfg;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::service::ServeError;

/// One compiled grammar, shared immutably across threads.
///
/// The prototype backend is compiled once and never runs an input itself;
/// worker sessions are created from it with [`Parser::fork`], which
/// duplicates the compiled arena (a flat memcpy) without repeating
/// compilation.
pub struct CachedGrammar {
    fingerprint: u64,
    backend: String,
    prototype: Box<dyn Parser>,
}

impl CachedGrammar {
    /// The grammar fingerprint this entry is keyed by.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The backend name this grammar was compiled for.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Creates an independent, freshly-reset session from the shared
    /// prototype without recompiling.
    pub fn fork_session(&self) -> Box<dyn Parser> {
        self.prototype.fork()
    }
}

impl std::fmt::Debug for CachedGrammar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedGrammar")
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

/// Cache hit/miss counters (process-lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups answered from a shard without compiling.
    pub hits: u64,
    /// Lookups that compiled a new entry.
    pub misses: u64,
}

/// One independently locked slice of the cache.
type Shard = Mutex<HashMap<u64, Arc<CachedGrammar>>>;

/// A sharded `fingerprint → Arc<CachedGrammar>` map.
///
/// All entries of one cache are compiled for a single backend (the owning
/// service's); the fingerprint alone is therefore a complete key.
pub struct GrammarCache {
    shards: Box<[Shard]>,
    backend: String,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GrammarCache {
    /// Creates a cache with `shards` independently locked shards for the
    /// named backend (shard counts are clamped to ≥ 1).
    pub fn new(shards: usize, backend: &str) -> GrammarCache {
        let shards = shards.max(1);
        GrammarCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            backend: backend.to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up the compiled entry for `cfg`, compiling and inserting it on
    /// a miss. The boolean is `true` on a hit — reported per call, not
    /// derived from the global counters, so concurrent callers each learn
    /// what *their* lookup did.
    ///
    /// Compilation happens *outside* the shard lock so a slow compile of one
    /// grammar never blocks hits on other grammars in the same shard; if two
    /// threads race to compile the same grammar, one compile is dropped and
    /// both get the inserted entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownBackend`] if the cache's backend name is not in
    /// the [`derp::api`] roster.
    pub fn get_or_compile(&self, cfg: &Cfg) -> Result<(Arc<CachedGrammar>, bool), ServeError> {
        let fingerprint = cfg.fingerprint();
        let shard = &self.shards[(fingerprint % self.shards.len() as u64) as usize];
        if let Some(entry) = shard.lock().expect("cache shard poisoned").get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(entry), true));
        }

        let prototype = backend_by_name(&self.backend, cfg)
            .ok_or_else(|| ServeError::UnknownBackend { name: self.backend.clone() })?;
        let compiled =
            Arc::new(CachedGrammar { fingerprint, backend: self.backend.clone(), prototype });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("cache shard poisoned");
        Ok((Arc::clone(map.entry(fingerprint).or_insert(compiled)), false))
    }

    /// Hit/miss totals so far.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total number of cached grammars across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for GrammarCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrammarCache")
            .field("shards", &self.shards.len())
            .field("backend", &self.backend)
            .field("entries", &self.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwd_grammar::CfgBuilder;

    fn catalan(start: &str) -> Cfg {
        let mut g = CfgBuilder::new(start);
        g.terminal("a");
        g.rule(start, &[start, start]);
        g.rule(start, &["a"]);
        g.build().unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = GrammarCache::new(4, "pwd-improved");
        let cfg = catalan("S");
        let (a, first_hit) = cache.get_or_compile(&cfg).unwrap();
        let (b, second_hit) = cache.get_or_compile(&cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both lookups must share one compile");
        assert!(!first_hit && second_hit, "per-call hit flags must match reality");
        assert_eq!(cache.metrics(), CacheMetrics { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn renamed_grammar_shares_the_entry() {
        // fingerprint() is nonterminal-renaming-invariant, so a renamed
        // grammar is the same language and reuses the compile.
        let cache = GrammarCache::new(4, "pwd-improved");
        let (a, _) = cache.get_or_compile(&catalan("S")).unwrap();
        let (b, hit) = cache.get_or_compile(&catalan("Expr")).unwrap();
        assert!(Arc::ptr_eq(&a, &b) && hit);
        assert_eq!(cache.metrics(), CacheMetrics { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_grammars_get_distinct_entries() {
        let cache = GrammarCache::new(1, "pwd-improved"); // force one shard
        let _ = cache.get_or_compile(&catalan("S")).unwrap();
        let mut g = CfgBuilder::new("S");
        g.terminal("b");
        g.rule("S", &["b"]);
        let _ = cache.get_or_compile(&g.build().unwrap()).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.metrics(), CacheMetrics { hits: 0, misses: 2 });
    }

    #[test]
    fn unknown_backend_is_reported() {
        let cache = GrammarCache::new(2, "yacc");
        let err = cache.get_or_compile(&catalan("S")).unwrap_err();
        assert!(matches!(err, ServeError::UnknownBackend { ref name } if name == "yacc"));
    }

    #[test]
    fn forked_sessions_are_independent() {
        let cache = GrammarCache::new(2, "pwd-improved");
        let (entry, _) = cache.get_or_compile(&catalan("S")).unwrap();
        let mut s1 = entry.fork_session();
        let mut s2 = entry.fork_session();
        assert!(s1.recognize(&["a", "a"]).unwrap());
        assert!(!s2.recognize(&[]).unwrap());
        assert_eq!(s1.metrics().runs, 1);
        assert_eq!(s2.metrics().runs, 1, "forks must not share run state");
    }
}
