//! Deterministic fault injection for chaos-testing the service.
//!
//! A [`FaultPlan`] maps *batch input indices* to [`Fault`]s. When a plan is
//! passed to [`submit_batch_with_faults`], the worker that picks up a
//! planned index fails it in the planned way — a real `panic!` through the
//! `catch_unwind` boundary, a budget-exhaustion error, or a genuine
//! unknown-kind backend rejection standing in for a lex error — instead of
//! parsing it. Everything downstream (quarantine, structured
//! [`ServeError`]s, metrics counters) is the *production* machinery; the
//! plan only decides where the lightning strikes.
//!
//! Keying by input index makes plans deterministic and replayable: the same
//! plan over the same batch fails the same requests, regardless of worker
//! count, work-stealing order, or timing. [`FaultPlan::scatter`] derives a
//! pseudo-random (but seed-stable) spread for large batches.
//!
//! [`submit_batch_with_faults`]: crate::ParseService::submit_batch_with_faults
//! [`ServeError`]: crate::ServeError

use std::collections::BTreeMap;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics while running the input. Exercises the
    /// `catch_unwind` boundary and session quarantine; surfaces as
    /// [`ServeError::WorkerPanicked`](crate::ServeError::WorkerPanicked).
    Panic,
    /// The request's budget is reported exhausted before any engine work.
    /// Surfaces as
    /// [`ServeError::BudgetExceeded`](crate::ServeError::BudgetExceeded).
    BudgetExhaustion,
    /// The input is replaced by a token whose kind no grammar contains,
    /// driving the backend's real unknown-kind rejection path. Surfaces as
    /// [`ServeError::Backend`](crate::ServeError::Backend).
    LexError,
}

/// A deterministic fault schedule for one batch, keyed by input index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, the batch runs normally.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` for the input at `index` (replacing any fault
    /// already planned there). Chainable.
    pub fn inject(mut self, index: usize, fault: Fault) -> FaultPlan {
        self.faults.insert(index, fault);
        self
    }

    /// A seed-stable spread of `count` faults over a batch of `inputs`,
    /// cycling through all three fault kinds. Indices come from a
    /// splitmix64 walk, so the same `(seed, inputs, count)` always plans
    /// the same faults; at most one fault lands per input, so the planned
    /// count is exact (`count` is clamped to `inputs`).
    pub fn scatter(seed: u64, inputs: usize, count: usize) -> FaultPlan {
        const KINDS: [Fault; 3] = [Fault::Panic, Fault::BudgetExhaustion, Fault::LexError];
        let mut plan = FaultPlan::none();
        if inputs == 0 {
            return plan;
        }
        let mut state = seed;
        let mut next = move || {
            // splitmix64: a full-period mixer, so the index walk cannot
            // short-cycle no matter the seed.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let target = count.min(inputs);
        let mut kind = 0;
        while plan.faults.len() < target {
            let index = (next() % inputs as u64) as usize;
            if plan.faults.contains_key(&index) {
                continue;
            }
            plan.faults.insert(index, KINDS[kind % KINDS.len()]);
            kind += 1;
        }
        plan
    }

    /// The fault planned for input `index`, if any.
    pub fn fault_for(&self, index: usize) -> Option<Fault> {
        self.faults.get(&index).copied()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Is the plan empty (a normal batch)?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates the planned `(index, fault)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Fault)> + '_ {
        self.faults.iter().map(|(&i, &f)| (i, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_is_deterministic_and_exact() {
        let a = FaultPlan::scatter(42, 1000, 50);
        let b = FaultPlan::scatter(42, 1000, 50);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|(i, _)| i < 1000));
        let c = FaultPlan::scatter(43, 1000, 50);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn scatter_clamps_to_the_batch() {
        let plan = FaultPlan::scatter(7, 3, 50);
        assert_eq!(plan.len(), 3, "one fault per input at most");
        assert_eq!(FaultPlan::scatter(7, 0, 50).len(), 0);
    }

    #[test]
    fn inject_chains_and_replaces() {
        let plan = FaultPlan::none()
            .inject(2, Fault::Panic)
            .inject(5, Fault::LexError)
            .inject(2, Fault::BudgetExhaustion);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_for(2), Some(Fault::BudgetExhaustion));
        assert_eq!(plan.fault_for(5), Some(Fault::LexError));
        assert_eq!(plan.fault_for(0), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
